"""Setup script.

Packaging metadata lives here (rather than in ``pyproject.toml``'s
``[project]`` table) so that ``pip install -e .`` works in fully offline
environments: the legacy ``setup.py develop`` path needs neither network
access nor the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'When Can We Trust Progress Estimators for SQL "
        "Queries?' (SIGMOD 2005): a pure-Python iterator-model query engine "
        "with instrumented progress estimators (dne, pmax, safe)."
    ),
    author="repro contributors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
