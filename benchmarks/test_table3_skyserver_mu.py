"""Table 3 — μ values for the long-running SkyServer queries.

Paper values (real SDSS data): q3=1.008, q6=1.428, q14=1.078, q18=1.79,
q22=1.246, q28=1.044, q32=1.253 — all small, because these queries scan a
lot and emit little.  Our synthetic sky catalog reproduces the band.
"""

PAPER_TABLE3 = {3: 1.008, 6: 1.428, 14: 1.078, 18: 1.79, 22: 1.246,
                28: 1.044, 32: 1.253}

from repro.bench import render_table, save_artifact, table3


def test_table3(benchmark, scale_factor):
    values = benchmark.pedantic(
        lambda: table3(scale=int(8000 * scale_factor)), rounds=1, iterations=1
    )
    artifact = render_table(
        ["query", "mu (ours)", "mu (paper)"],
        [[q, "%.3f" % (values[q],), "%.3f" % (PAPER_TABLE3[q],)]
         for q in sorted(values)],
        title="Table 3: mu values for the synthetic SkyServer workload",
    )
    print("\n" + artifact)
    save_artifact("table3.txt", artifact)

    assert set(values) == set(PAPER_TABLE3)
    # the reproduced shape: every long-running query has small μ
    assert all(1.0 <= value <= 2.2 for value in values.values())
    assert sum(values.values()) / len(values) < 1.5
