"""Ablation A2 — Theorem 4: at least half of all orders are 2-predictive.

Random permutations of a heavily skewed per-tuple work vector: the fraction
whose first-half average work lands within a factor 2 of the overall mean
must be at least 1/2 (empirically it is far higher).
"""

from repro.bench import ablation_predictive_orders, render_table, save_artifact


def test_predictive_orders(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: ablation_predictive_orders(
            trials=int(600 * scale_factor), n=500
        ),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["trials", "2-predictive", "fraction"],
        [[result["trials"], result["predictive"],
          "%.3f" % (result["fraction"],)]],
        title="Ablation A2: fraction of random orders that are 2-predictive "
              "(Theorem 4 bound: >= 0.5)",
    )
    print("\n" + artifact)
    save_artifact("ablation_predictive_orders.txt", artifact)

    assert result["fraction"] >= 0.5
