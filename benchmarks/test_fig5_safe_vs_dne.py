"""Figure 5 — safe vs dne under the worst-case (high-skew tuples last) order.

Paper: when the offending tuples arrive at the very end, dne forecasts the
query as nearly finished while a flood of getnext calls is still to come —
it *over*-estimates massively; safe accounts for the possibility and yields
substantially lower error.
"""

from repro.bench import figure5, render_series, save_artifact


def test_figure5(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: figure5(n=int(10000 * scale_factor)), rounds=1, iterations=1
    )
    artifact = render_series(
        result["series"],
        title=(
            "Figure 5: safe vs dne, worst-case order (dne max err=%.3f, "
            "safe max err=%.3f)"
            % (result["dne_max_abs_error"], result["safe_max_abs_error"])
        ),
    )
    print("\n" + artifact)
    save_artifact("figure5.txt", artifact)

    assert result["dne_max_abs_error"] > 0.3       # paper: ~49.5%
    assert result["safe_max_abs_error"] < result["dne_max_abs_error"] * 0.6
    mid = [est - actual for actual, est in result["series"]["dne"]
           if 0.2 < actual < 0.5]
    assert all(diff > 0 for diff in mid)  # over-estimation
