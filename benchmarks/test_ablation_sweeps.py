"""Ablation A7 — sensitivity sweeps over skew (z) and scale (n).

Two claims behind the whole reproduction:

* the estimator tradeoff is *created by skew*: at z=0 every estimator is
  fine, and dne/pmax's worst-case error climbs toward Figure 5's ~49% as z
  grows, while safe's grows far more slowly;
* the error fractions are *scale-free*: the paper ran at 10^7 rows and this
  repo at 10^3-10^4, which is only valid because max-abs-error is flat in n.
"""

from repro.bench import (
    ablation_scale_sweep,
    ablation_skew_sweep,
    render_table,
    save_artifact,
)


def test_skew_sweep(benchmark, scale_factor):
    rows = benchmark.pedantic(
        lambda: ablation_skew_sweep(n=int(4000 * scale_factor)),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["z", "mu", "dne max err", "pmax max err", "safe max err"],
        [[r["z"], r["mu"], r["dne"], r["pmax"], r["safe"]] for r in rows],
        title="Ablation A7a: worst-case error vs zipf skew (n fixed)",
    )
    print("\n" + artifact)
    save_artifact("ablation_skew_sweep.txt", artifact)

    by_z = {r["z"]: r for r in rows}
    # uniform fan-out: dne near-exact
    assert by_z[0.0]["dne"] < 0.02
    # error grows monotonically-ish with skew for dne
    assert by_z[2.5]["dne"] > by_z[1.0]["dne"] > by_z[0.0]["dne"]
    # safe degrades much more slowly than dne at high skew
    assert by_z[2.5]["safe"] < by_z[2.5]["dne"] * 0.6
    # mu stays 2 throughout: the tradeoff is about variance, not mu
    assert all(abs(r["mu"] - 2.0) < 0.01 for r in rows)


def test_scale_sweep(benchmark, scale_factor):
    rows = benchmark.pedantic(
        lambda: ablation_scale_sweep(
            sizes=tuple(int(s * scale_factor) for s in (1000, 2000, 4000, 8000))
        ),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["n", "mu", "dne max err", "pmax max err", "safe max err"],
        [[r["n"], r["mu"], r["dne"], r["pmax"], r["safe"]] for r in rows],
        title="Ablation A7b: worst-case error vs relation size (z=2)",
    )
    print("\n" + artifact)
    save_artifact("ablation_scale_sweep.txt", artifact)

    # scale-freeness: error fractions vary by < 5 points across 8x sizes
    for name in ("dne", "pmax", "safe"):
        values = [r[name] for r in rows]
        assert max(values) - min(values) < 0.05
