"""Ablation A3 — Property 6: scan-based plans are worst-case tractable.

For linear scan-based plans with m internal nodes: μ ≤ m+1, safe's ratio
error ≤ √(m+1), pmax's ≤ m+1 — measured over FK-join chains of increasing
width.
"""

from repro.bench import ablation_scan_based, render_table, save_artifact


def test_scan_based_bounds(benchmark, scale_factor):
    results = benchmark.pedantic(
        lambda: ablation_scan_based(
            table_counts=(2, 3, 4, 5),
            rows_per_table=int(2000 * scale_factor),
        ),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["tables", "m", "mu", "mu bound", "safe max ratio", "safe bound",
         "pmax max ratio"],
        [[r["tables"], r["m"], "%.3f" % r["mu"], r["mu_bound"],
          "%.3f" % r["safe_max_ratio_error"], "%.3f" % r["safe_bound"],
          "%.3f" % r["pmax_max_ratio_error"]] for r in results],
        title="Ablation A3: Property 6 bounds on scan-based FK-join chains",
    )
    print("\n" + artifact)
    save_artifact("ablation_scan_based.txt", artifact)

    for row in results:
        assert row["mu"] <= row["mu_bound"]
        assert row["safe_max_ratio_error"] <= row["safe_bound"] * 1.01
        assert row["pmax_max_ratio_error"] <= row["mu_bound"] * 1.01
