"""Robust combination vs. the single-estimator pool on a randomized sweep.

The König et al. (2012) sequel's claim, transplanted to this repo: no single
estimator wins everywhere, but a combiner that tracks per-segment error
statistics and re-weights the pool can approach the per-query best while
never doing worse than the worst-case-optimal ``safe``.

Protocol — for every sweep case (zipfian joins × skew × predictive order ×
plan shape, plus jittered mini TPC-H):

1. **cold run**: the robust estimator has no statistics, so by construction
   it answers bit-identically to safe (asserted).  Its pool log is labelled
   against the sealed total and folded into the case's history.
2. **warm run**: a fresh robust instance over the learned history competes
   with fresh dne / pmax / safe / hybrid-mu / hybrid-var instances on a
   fresh plan over the same data.

The whole sweep shares **one** ``RobustHistory``, as a real session or
service would: history entries are keyed on ``(plan signature, catalog
fingerprint)``, so two zipf cases that differ only in data (n, z, seed) no
longer collide — the per-case-history workaround this file used to carry
(and the cross-case interference it papered over) is gone.

Enforced gates (warm run, ratio errors at the paper's 0.01 truth cutoff):

* **soundness**: robust's max ratio error ≤ safe's on EVERY sweep case;
* **usefulness**: robust's mean avg ratio error over the sweep is strictly
  below the best single candidate's mean.

Results land in ``benchmarks/results/BENCH_robust_estimator.json``.
"""

import json

from repro.bench.harness import save_artifact
from repro.core import (
    DneEstimator,
    HybridMuEstimator,
    HybridVarianceEstimator,
    PmaxEstimator,
    RobustEstimator,
    RobustHistory,
    SafeEstimator,
    run_with_estimators,
)
from repro.workloads import generate_sweep

SWEEP_COUNT = 160
SWEEP_SEED = 2012  # the sequel's publication year
MIN_CASES = 24
MIN_ACTUAL = 0.01
#: single-estimator candidates robust must beat on aggregate
GATE_CANDIDATES = ("dne", "pmax", "safe", "hybrid-mu", "hybrid-var")
#: tolerance on the per-case max-ratio gate (pure float noise, not slack)
MAX_RATIO_TOLERANCE = 1e-9


def _singles():
    return [
        DneEstimator(),
        PmaxEstimator(),
        SafeEstimator(),
        HybridMuEstimator(),
        HybridVarianceEstimator(),
    ]


def _run_case(case, history):
    """Cold-learn-warm on one sweep case; returns the per-case result row.

    ``history`` is the sweep-wide shared store; per-case isolation comes
    from keying on the case catalog's data fingerprint, not from separate
    history objects.
    """
    cold_robust = RobustEstimator(history, catalog=case.catalog)
    cold_plan = case.plan()
    cold = run_with_estimators(
        cold_plan, [*_singles(), cold_robust], case.catalog
    )
    cold_equals_safe = all(
        sample.estimates["robust"] == sample.estimates["safe"]
        for sample in cold.trace.samples
    )
    cold_robust.observe_result(cold_plan, cold.total)

    warm = run_with_estimators(
        case.plan(),
        [*_singles(), RobustEstimator(history, catalog=case.catalog)],
        case.catalog,
    )
    errors = {
        name: {
            "max_ratio": warm.trace.max_ratio_error(name, MIN_ACTUAL),
            "avg_ratio": warm.trace.avg_ratio_error(name, MIN_ACTUAL),
        }
        for name in (*GATE_CANDIDATES, "robust")
    }
    return {
        "case": case.name,
        "family": case.family,
        "params": case.params,
        "total": warm.total,
        "samples": len(warm.trace.samples),
        "cold_equals_safe": cold_equals_safe,
        "warm": errors,
    }


def test_robust_sweep(scale_factor):
    count = max(MIN_CASES, int(SWEEP_COUNT * scale_factor))
    cases = generate_sweep(count, seed=SWEEP_SEED)
    history = RobustHistory()
    rows = [_run_case(case, history) for case in cases]

    aggregates = {
        name: sum(row["warm"][name]["avg_ratio"] for row in rows) / len(rows)
        for name in (*GATE_CANDIDATES, "robust")
    }
    best_single = min(aggregates[name] for name in GATE_CANDIDATES)
    soundness_violations = [
        row["case"]
        for row in rows
        if row["warm"]["robust"]["max_ratio"]
        > row["warm"]["safe"]["max_ratio"] * (1 + MAX_RATIO_TOLERANCE)
    ]

    artifact = {
        "benchmark": "robust_estimator_sweep",
        "sweep": {
            "count": count,
            "seed": SWEEP_SEED,
            "min_actual": MIN_ACTUAL,
            "scale_factor": scale_factor,
            "shared_history": True,
        },
        "gates": {
            "per_case_max_ratio_not_worse_than_safe": not soundness_violations,
            "aggregate_avg_ratio_beats_best_single": (
                aggregates["robust"] < best_single
            ),
        },
        "aggregates": {
            "mean_avg_ratio_error": aggregates,
            "best_single": best_single,
        },
        "cases": rows,
    }
    save_artifact(
        "BENCH_robust_estimator.json", json.dumps(artifact, indent=2)
    )

    assert all(row["cold_equals_safe"] for row in rows)
    assert not soundness_violations, (
        "robust exceeded safe's max ratio error on: %s" % soundness_violations
    )
    assert aggregates["robust"] < best_single, (
        "robust mean avg ratio %.4f not below best single %.4f"
        % (aggregates["robust"], best_single)
    )
