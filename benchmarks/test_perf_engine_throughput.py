"""Engine-throughput benchmark: fused pipeline compiler vs. interpreter.

Every plan in the suite — all 22 TPC-H queries plus the adversarial join
workloads (Zipfian ⋈INL / ⋈hash / ⋈merge and the paper's Example 2) — is
executed under full progress instrumentation (dne/pmax/safe sampled on the
runner's default cadence) twice: once through the reference Volcano
interpreter and once through the fused generator compiler
(``repro.engine.compiled``).  Both runs use the identical monitor protocol,
so the comparison is end-to-end: engine + tick accounting + estimator
sampling.

Measurement protocol:

* fresh plan per repetition (no warm operator state), three repetitions per
  engine, minimum taken — the minimum is the standard noise-robust statistic
  for a deterministic workload;
* the garbage collector is collected then disabled around each timed region
  so allocation spikes from earlier runs cannot land inside a measurement;
* per-plan speedup = interpreted seconds / fused seconds, which equals the
  rows/sec (ticks/sec) ratio since both engines execute exactly the same
  tick sequence (asserted: identical tick totals).

The headline geomean is taken over plans with at least ``MIN_TICKS`` total
ticks at benchmark scale.  Below that the run is dominated by the fixed
per-sample estimator cost (the runner always takes ~200 samples regardless
of query size), which is identical for both engines and therefore measures
sampling, not engine throughput.  Every plan's numbers — included or not —
are recorded in the artifact.

The numbers land in ``benchmarks/results/BENCH_engine_throughput.json`` as
the committed baseline.  The acceptance bar is a ≥3× geomean speedup.
"""

import gc
import json
import math
import time

from repro.bench.harness import save_artifact
from repro.core import standard_toolkit
from repro.core.runner import run_with_estimators
from repro.workloads import build_query, generate_tpch
from repro.workloads.adversarial import make_example2, make_zipfian_join

TPCH_SCALE = 0.005
REPS = 3
#: plans below this tick count are sampling-dominated, not engine-dominated
MIN_TICKS = 20_000


def _cases(scale_factor):
    db = generate_tpch(scale=TPCH_SCALE * scale_factor, skew=2.0, seed=42)
    zipf = make_zipfian_join(
        n=int(20_000 * scale_factor), z=2.0, order="skew_last", seed=7
    )
    ex2 = make_example2(
        n=int(20_000 * scale_factor), matches=int(1_000 * scale_factor)
    )
    cases = [
        ("q%d" % number, (lambda number=number: build_query(db, number)))
        for number in range(1, 23)
    ]
    cases += [
        ("zipf-inl", zipf.inl_plan),
        ("zipf-hash", zipf.hash_plan),
        ("zipf-merge", zipf.merge_plan),
        ("example2-inl", ex2.inl_plan),
    ]
    return cases


def _timed_run(build_plan, engine):
    """One instrumented run; returns (wall seconds, total ticks)."""
    plan = build_plan()
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        report = run_with_estimators(plan, standard_toolkit(), engine=engine)
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, int(report.total)


def measure_throughput(scale_factor=1.0):
    per_plan = {}
    for name, build_plan in _cases(scale_factor):
        seconds = {}
        ticks = {}
        for engine in ("interpreted", "fused"):
            best = float("inf")
            for _ in range(REPS):
                elapsed, total = _timed_run(build_plan, engine)
                best = min(best, elapsed)
                ticks[engine] = total
            seconds[engine] = best
        # Same plan, same tick protocol: totals must agree exactly, or the
        # "same work, less time" framing of the speedup is void.
        assert ticks["interpreted"] == ticks["fused"], (
            "%s: engines disagree on total ticks (%d vs %d)"
            % (name, ticks["interpreted"], ticks["fused"])
        )
        total = ticks["fused"]
        per_plan[name] = {
            "ticks": total,
            "interpreted_seconds": seconds["interpreted"],
            "fused_seconds": seconds["fused"],
            "interpreted_ticks_per_second": total / seconds["interpreted"],
            "fused_ticks_per_second": total / seconds["fused"],
            "speedup": seconds["interpreted"] / seconds["fused"],
            "in_geomean": total >= MIN_TICKS * scale_factor,
        }
    included = [e["speedup"] for e in per_plan.values() if e["in_geomean"]]
    geomean = (
        math.exp(sum(math.log(s) for s in included) / len(included))
        if included else None
    )
    return {
        "tpch_scale": TPCH_SCALE * scale_factor,
        "reps": REPS,
        "min_ticks_for_geomean": int(MIN_TICKS * scale_factor),
        "plans": per_plan,
        "plans_in_geomean": len(included),
        "speedup_geomean": geomean,
    }


def test_engine_throughput(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: measure_throughput(scale_factor=scale_factor),
        rounds=1, iterations=1,
    )
    save_artifact(
        "BENCH_engine_throughput.json",
        json.dumps(result, indent=2, sort_keys=True),
    )
    for name, entry in sorted(result["plans"].items()):
        print("%-13s %8d ticks  %.3fs -> %.3fs  %.2fx%s" % (
            name, entry["ticks"],
            entry["interpreted_seconds"], entry["fused_seconds"],
            entry["speedup"],
            "" if entry["in_geomean"] else "  (below tick floor)",
        ))
    print("geomean over %d plans: %.2fx" % (
        result["plans_in_geomean"], result["speedup_geomean"],
    ))
    assert result["plans_in_geomean"] >= 15
    # Acceptance bar: the fused engine is ≥3× faster end to end, with the
    # full dne/pmax/safe toolkit sampling throughout.
    assert result["speedup_geomean"] >= 3.0
