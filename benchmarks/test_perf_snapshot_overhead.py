"""Sampling-overhead benchmark: what does progress instrumentation cost?

Three measurements on TPC-H plans:

1. **Execution overhead** — ticks/sec of a bare run (plain monitor, no
   observers) vs. a fully instrumented run (bounds tracker attached,
   dne/pmax/safe sampled on the runner's default cadence).
2. **Per-sample snapshot cost** — wall time of an incremental
   ``BoundsTracker.snapshot()`` vs. a full-recompute
   ``ReferenceBoundsTracker.snapshot()`` at the *same* paused instants of
   the same run, averaged over hot back-to-back repetitions (see
   ``_snapshot_costs``).  The incremental tracker answers from its static
   caches, compiled per-node visitors and dirty-set memo; the acceptance
   bar is a ≥5× geomean speedup.
3. **Bit-identity** — at every timed instant the two snapshots are asserted
   equal, so the speedup claim and the correctness claim come from the same
   instants.

The numbers land in ``benchmarks/results/BENCH_progress_overhead.json`` as
the committed baseline.
"""

import gc
import json
import math
import time

from repro.bench.harness import save_artifact
from repro.core import (
    BoundsTracker,
    ProgressRunner,
    ReferenceBoundsTracker,
    standard_toolkit,
)
from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.workloads import build_query, generate_tpch

QUERIES = [1, 3, 6, 10]
SAMPLES_PER_RUN = 100
SNAPSHOT_REPS = 30


def _bare_run_seconds(plan):
    monitor = ExecutionMonitor()
    started = time.perf_counter()
    for _ in plan.root.iterate(ExecutionContext(monitor)):
        pass
    return time.perf_counter() - started, monitor.total_ticks


def _instrumented_run(plan, catalog):
    runner = ProgressRunner(plan, standard_toolkit(), catalog,
                            target_samples=SAMPLES_PER_RUN)
    report = runner.run()
    return report.profile


def _snapshot_costs(plan, catalog, reps=SNAPSHOT_REPS):
    """Time incremental vs. reference snapshots at identical instants.

    At each sampled instant execution is paused and each tracker's snapshot
    runs ``reps`` times back to back; the per-instant cost is the mean over
    the repetitions (after one untimed warm-up pair).  Snapshots are
    microsecond-scale, so a one-shot timing would mostly measure the CPU
    cache state left behind by the thousands of engine ticks since the
    previous sample, swamping the algorithmic difference under test.  The
    incremental tracker's dirty set is restored before every repetition
    (:meth:`BoundsTracker.restore_dirty`), so each repetition re-does the
    instant's true per-sample recompute rather than answering from the
    memo — the restore itself is timed as part of the incremental cost.
    """
    incremental = BoundsTracker(plan, catalog)
    reference = ReferenceBoundsTracker(plan, catalog)
    monitor = ExecutionMonitor()
    incremental.attach(monitor)
    timings = {"incremental": 0.0, "reference": 0.0, "samples": 0}

    def observe(m):
        saved = incremental.dirty_flags()
        fast = incremental.snapshot()
        slow = reference.snapshot()
        assert fast == slow, "incremental snapshot diverged from reference"
        started = time.perf_counter()
        for _ in range(reps):
            incremental.restore_dirty(saved)
            incremental.snapshot()
        mid = time.perf_counter()
        for _ in range(reps):
            reference.snapshot()
        done = time.perf_counter()
        timings["incremental"] += (mid - started) / reps
        timings["reference"] += (done - mid) / reps
        timings["samples"] += 1

    probe = ExecutionMonitor()
    for _ in plan.root.iterate(ExecutionContext(probe)):
        pass
    total = probe.total_ticks
    monitor.add_observer(observe, every=max(1, total // SAMPLES_PER_RUN))
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in plan.root.iterate(ExecutionContext(monitor)):
            pass
    finally:
        if gc_was_enabled:
            gc.enable()
    incremental.detach()
    return timings


def measure_overhead(scale=0.002):
    db = generate_tpch(scale=scale, seed=42)
    per_query = {}
    for number in QUERIES:
        plan = build_query(db, number)
        bare_seconds, ticks = _bare_run_seconds(plan)
        profile = _instrumented_run(plan, db.catalog)
        snapshot = _snapshot_costs(plan, db.catalog)
        samples = max(1, snapshot["samples"])
        incremental_per_sample = snapshot["incremental"] / samples
        reference_per_sample = snapshot["reference"] / samples
        per_query["q%d" % (number,)] = {
            "ticks": ticks,
            "bare_seconds": bare_seconds,
            "bare_ticks_per_second": ticks / bare_seconds if bare_seconds else None,
            "instrumented_seconds": profile.elapsed_seconds,
            "instrumented_ticks_per_second": profile.ticks_per_second,
            "sampling_overhead_fraction": profile.overhead_fraction,
            "samples": snapshot["samples"],
            "incremental_snapshot_seconds": incremental_per_sample,
            "reference_snapshot_seconds": reference_per_sample,
            "snapshot_speedup": (
                reference_per_sample / incremental_per_sample
                if incremental_per_sample > 0 else float("inf")
            ),
        }
    speedups = [entry["snapshot_speedup"] for entry in per_query.values()]
    finite = [s for s in speedups if not math.isinf(s)]
    geomean = (
        math.exp(sum(math.log(s) for s in finite) / len(finite))
        if finite else float("inf")
    )
    return {
        "scale": scale,
        "queries": per_query,
        "snapshot_speedup_geomean": geomean if finite else None,
    }


def test_snapshot_overhead(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: measure_overhead(scale=0.002 * scale_factor),
        rounds=1, iterations=1,
    )
    save_artifact(
        "BENCH_progress_overhead.json",
        json.dumps(result, indent=2, sort_keys=True),
    )
    for name, entry in result["queries"].items():
        print("%s: %d ticks, incremental %.1fus vs reference %.1fus "
              "per snapshot (%.1fx), sampling overhead %.1f%%" % (
                  name, entry["ticks"],
                  entry["incremental_snapshot_seconds"] * 1e6,
                  entry["reference_snapshot_seconds"] * 1e6,
                  entry["snapshot_speedup"],
                  entry["sampling_overhead_fraction"] * 100,
              ))
    assert all(entry["samples"] > 0 for entry in result["queries"].values())
    # Acceptance bar: the incremental tracker is ≥5× cheaper per sample.
    assert result["snapshot_speedup_geomean"] >= 5.0
