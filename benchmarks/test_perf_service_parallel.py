"""Service-throughput benchmark: process backend vs. thread backend.

The thread backend gives the query service concurrency but — the engine
being pure Python — no parallelism: the GIL serializes every tick, so
aggregate throughput is flat in worker count.  ``backend="process"`` runs
each query in a worker process; on a multi-core machine the same eight
concurrent TPC-H queries should finish in a fraction of the wall time.

Measurement protocol:

* the workload is eight concurrent TPC-H queries (the service test suite's
  stress set) admitted back-to-back onto a 4-worker service, full
  dne/pmax/safe instrumentation throughout;
* a fresh plan per submission (operators hold runtime state), fresh
  service per repetition, three repetitions per backend, minimum wall
  time taken; the garbage collector is collected then disabled around each
  timed region;
* throughput = total ticks / wall seconds; the speedup is the ratio of
  aggregate throughputs, which equals the wall-time ratio since the tick
  totals are asserted identical across backends;
* correctness is asserted *inside* the benchmark: every query's trace
  under the process backend must be bit-identical to a solo
  single-threaded run of the same plan — parallelism changes scheduling,
  never measurements.

The numbers land in ``benchmarks/results/BENCH_service_parallel.json``.
The acceptance bar — ≥2× aggregate throughput — *is* multi-core
parallelism, and a 1-2 core runner cannot exhibit it.  On such a machine
the benchmark hard-skips with an explicit reason **before measuring or
writing anything**: a baseline whose gate cannot be enforced is not a
baseline, and recording one with ``gate_enforced: false`` silently
de-fangs the acceptance criterion (that happened once; never again).
Every artifact this benchmark writes has its speedup assertion applied.
"""

import gc
import json
import os
import time

import pytest

from repro.bench.harness import save_artifact
from repro.core import ProgressRunner, standard_toolkit
from repro.service import QueryService
from repro.stats import StatisticsManager
from repro.workloads import build_query, generate_tpch

#: big enough that per-query execution dominates the fixed per-query IPC
#: cost (dispatch, event forwarding, report pickle) by an order of magnitude
TPCH_SCALE = 0.01
QUERIES = [1, 3, 5, 6, 10, 12, 14, 19]
WORKERS = 4
TARGET_SAMPLES = 40
REPS = 3
#: the ≥2× gate needs real cores to stand on
MIN_CORES_FOR_GATE = 4
SPEEDUP_GATE = 2.0


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_db(scale_factor):
    db = generate_tpch(scale=TPCH_SCALE * scale_factor, skew=2.0, seed=42)
    StatisticsManager(db.catalog).analyze_all()
    return db


def _solo_traces(db):
    """Reference single-threaded traces, one per workload query."""
    traces = {}
    for number in QUERIES:
        report = ProgressRunner(
            build_query(db, number),
            standard_toolkit(),
            db.catalog,
            target_samples=TARGET_SAMPLES,
        ).run()
        traces[number] = report.trace.samples
    return traces


def _timed_round(db, backend):
    """One full workload through a fresh service; returns (seconds, reports)."""
    service = QueryService(
        db.catalog,
        backend=backend,
        max_workers=WORKERS,
        queue_depth=len(QUERIES),
        target_samples=TARGET_SAMPLES,
    )
    try:
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            handles = [
                service.submit(build_query(db, number), name="Q%d" % number)
                for number in QUERIES
            ]
            reports = {
                number: handle.result(timeout=600)
                for number, handle in zip(QUERIES, handles)
            }
            elapsed = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        service.shutdown()
    return elapsed, reports


def measure_parallelism(scale_factor=1.0):
    db = _make_db(scale_factor)
    solo = _solo_traces(db)
    results = {}
    for backend in ("thread", "process"):
        best_seconds = float("inf")
        ticks = None
        for _ in range(REPS):
            elapsed, reports = _timed_round(db, backend)
            best_seconds = min(best_seconds, elapsed)
            round_ticks = sum(
                int(report.total) for report in reports.values()
            )
            assert ticks is None or ticks == round_ticks
            ticks = round_ticks
            # The core guarantee, re-checked under timing conditions:
            # concurrent traces are bit-identical to solo traces.
            for number, report in reports.items():
                assert report.trace.samples == solo[number], (
                    "Q%d: %s-backend trace differs from solo run"
                    % (number, backend)
                )
        results[backend] = {
            "wall_seconds": best_seconds,
            "total_ticks": ticks,
            "ticks_per_second": ticks / best_seconds,
        }
    assert results["thread"]["total_ticks"] == results["process"]["total_ticks"]
    speedup = (
        results["process"]["ticks_per_second"]
        / results["thread"]["ticks_per_second"]
    )
    return {
        "tpch_scale": TPCH_SCALE * scale_factor,
        "queries": QUERIES,
        "workers": WORKERS,
        "target_samples": TARGET_SAMPLES,
        "reps": REPS,
        "usable_cores": usable_cores(),
        "backends": results,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": True,
    }


def test_service_parallel_throughput(benchmark, scale_factor):
    cores = usable_cores()
    if cores < MIN_CORES_FOR_GATE:
        pytest.skip(
            "service-parallel baseline needs >= %d usable cores to enforce "
            "the %.0fx process-backend gate (found %d); refusing to record "
            "an un-enforced baseline" % (MIN_CORES_FOR_GATE, SPEEDUP_GATE, cores)
        )
    result = benchmark.pedantic(
        lambda: measure_parallelism(scale_factor=scale_factor),
        rounds=1, iterations=1,
    )
    save_artifact(
        "BENCH_service_parallel.json",
        json.dumps(result, indent=2, sort_keys=True),
    )
    for backend in ("thread", "process"):
        entry = result["backends"][backend]
        print("%-8s %9d ticks  %7.3fs  %12.0f ticks/s" % (
            backend, entry["total_ticks"], entry["wall_seconds"],
            entry["ticks_per_second"],
        ))
    print("speedup: %.2fx on %d cores (gate enforced)" % (
        result["speedup"], result["usable_cores"],
    ))
    # Acceptance bar: ≥2× aggregate throughput from real parallelism.
    # Unconditional — a machine that cannot enforce it skipped above,
    # before any artifact was written.
    assert result["speedup"] >= SPEEDUP_GATE
