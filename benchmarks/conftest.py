"""Benchmark suite configuration.

Each benchmark regenerates one table or figure of the paper, saves the
rendered artifact under ``benchmarks/results/`` and asserts the paper's
qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="1.0",
        help="multiplier on workload sizes (1.0 = default paper-shaped runs)",
    )


@pytest.fixture(scope="session")
def scale_factor(request) -> float:
    return float(request.config.getoption("--repro-scale"))
