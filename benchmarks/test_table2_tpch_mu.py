"""Table 2 — μ values for TPC-H queries 1-21 on skewed (z=2) data.

Paper values range from 1.001 (Q12/Q14) to 2.782 (Q21), with Q1 at 1.989
and most queries very close to 1 — the regime where pmax's guarantee is
tight.  Absolute values depend on plan details; the band and the ranking
extremes are the reproduced shape.
"""

PAPER_TABLE2 = {
    1: 1.989, 2: 1.213, 3: 1.886, 4: 1.003, 5: 1.007, 6: 1.008, 7: 1.538,
    8: 1.432, 9: 1.021, 10: 1.004, 11: 1.014, 12: 1.001, 13: 2.019,
    14: 1.001, 15: 1.149, 16: 1.157, 17: 1.020, 18: 2.771, 19: 1.025,
    20: 1.159, 21: 2.782,
}

from repro.bench import render_table, save_artifact, table2


def test_table2(benchmark, scale_factor):
    values = benchmark.pedantic(
        lambda: table2(scale=0.002 * scale_factor), rounds=1, iterations=1
    )
    artifact = render_table(
        ["query", "mu (ours)", "mu (paper)"],
        [[q, "%.3f" % (values[q],), "%.3f" % (PAPER_TABLE2[q],)]
         for q in sorted(values)],
        title="Table 2: mu values for TPC-H (skew z=2)",
    )
    print("\n" + artifact)
    save_artifact("table2.txt", artifact)

    # band: μ ∈ [1, ~3.5] for every query
    assert all(1.0 <= value <= 3.5 for value in values.values())
    # Q1 matches the paper closely (it is structurally pinned: scan + ~97%
    # filter + tiny aggregate)
    assert abs(values[1] - PAPER_TABLE2[1]) < 0.1
    # Q21 is the most expensive per input tuple, as in the paper
    assert values[21] == max(values.values())
    # most queries sit near 1 (the pmax-friendly regime)
    near_one = [v for v in values.values() if v < 1.5]
    assert len(near_one) >= 12
