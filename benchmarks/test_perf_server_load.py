"""Server load benchmark: 100 concurrent WebSocket clients, both backends.

The network tier exists so many clients can share one multi-core worker
pool.  This benchmark drives the whole stack at once — HTTP admission,
per-tenant fair scheduling, the worker pool, and one live WebSocket per
query — with at least :data:`CLIENTS` concurrent clients, on the thread
backend and then the process backend.

Measurement protocol:

* :data:`CLIENTS` client threads each POST one SQL query and then hold a
  WebSocket open until the terminal frame arrives; clients are spread
  over :data:`TENANTS` tenants so the deficit-round-robin scheduler has
  real interleaving to do;
* a fresh server per round, :data:`REPS` rounds per backend, minimum
  wall time taken; the garbage collector is collected then disabled
  around each timed region;
* aggregate throughput = total GetNext ticks (from ``/metrics``) / wall
  seconds; the speedup is the ratio of aggregate throughputs, tick
  totals asserted identical across backends;
* correctness is asserted *inside* the benchmark: every terminal frame's
  sealed trace must be bit-identical to a solo single-threaded
  :class:`ProgressRunner` run of the same SQL — one hundred concurrent
  streams change scheduling and transport, never measurements;
* ``p50``/``p99`` admission-to-completion latency comes straight from the
  server's own ``/metrics`` endpoint, exercising the reservoir under
  real load.

The numbers land in ``benchmarks/results/BENCH_server_load.json``.  The
acceptance bar — ≥2× aggregate throughput on the process backend — *is*
multi-core parallelism, and a 1-2 core runner cannot exhibit it.  On
such a machine the benchmark hard-skips with an explicit reason **before
measuring or writing anything**: recording a baseline with
``gate_enforced: false`` would silently de-fang the acceptance
criterion.  Every artifact this benchmark writes has the speedup
assertion applied.
"""

import gc
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.harness import save_artifact
from repro.core import ProgressRunner, standard_toolkit
from repro.options import ExecutionOptions
from repro.server import ReproServer, ServerClient, ServerConfig, TenantQuota
from repro.server.bridge import sample_to_dict
from repro.sql import plan_query
from repro.stats import StatisticsManager
from repro.workloads import generate_tpch

TPCH_SCALE = 0.002
CLIENTS = 100
TENANTS = 4
WORKERS = 4
TARGET_SAMPLES = 20
REPS = 2
#: the ≥2× gate needs real cores to stand on
MIN_CORES_FOR_GATE = 4
SPEEDUP_GATE = 2.0

#: the per-client workload, cycled across clients — plain SQL so every
#: submission travels the full POST /queries path
WORKLOAD_SQL = [
    "SELECT COUNT(*) FROM lineitem",
    "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem "
    "GROUP BY l_returnflag",
    "SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders "
    "GROUP BY o_orderstatus",
    "SELECT COUNT(*) FROM orders",
]


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_db(scale_factor):
    db = generate_tpch(scale=TPCH_SCALE * scale_factor, skew=2.0, seed=42)
    StatisticsManager(db.catalog).analyze_all()
    return db


def _solo_traces(db):
    """Reference single-threaded traces, one per workload statement."""
    traces = {}
    for sql in WORKLOAD_SQL:
        report = ProgressRunner(
            plan_query(sql, db.catalog, name="service-sql"),
            standard_toolkit(),
            db.catalog,
            target_samples=TARGET_SAMPLES,
        ).run()
        traces[sql] = [
            sample_to_dict(sample) for sample in report.trace.samples
        ]
    return traces


def _one_client(host, port, sql, tenant):
    """Submit one query and hold its WebSocket until the terminal frame."""
    client = ServerClient(host, port, timeout=600)
    record = client.submit(sql, tenant=tenant,
                           target_samples=TARGET_SAMPLES)
    frames = client.stream_events(record["id"])
    end = frames[-1]
    assert end["event"] == "end"
    assert end["state"] == "done", end.get("error")
    return sql, end


def _timed_round(db, backend, solo):
    """One full client fleet through a fresh server.

    Returns ``(wall_seconds, total_ticks, metrics_snapshot)``.
    """
    config = ServerConfig(
        options=ExecutionOptions(
            backend=backend, max_workers=WORKERS, queue_depth=WORKERS * 2,
            target_samples=TARGET_SAMPLES,
        ),
        default_quota=TenantQuota(max_pending=CLIENTS,
                                  max_inflight=WORKERS),
    )
    server = ReproServer(db.catalog, config=config)
    with server.running():
        host, port = server.config.host, server.port
        jobs = [
            (WORKLOAD_SQL[i % len(WORKLOAD_SQL)], "load-%d" % (i % TENANTS))
            for i in range(CLIENTS)
        ]
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                futures = [
                    pool.submit(_one_client, host, port, sql, tenant)
                    for sql, tenant in jobs
                ]
                outcomes = [future.result(timeout=600)
                            for future in futures]
            elapsed = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
        metrics = ServerClient(host, port).metrics()
    # The core guarantee, re-checked under full load: every streamed
    # sealed trace is bit-identical to a solo run of the same SQL.
    for sql, end in outcomes:
        assert end["trace"] == solo[sql], (
            "%s-backend trace for %r differs from solo run"
            % (backend, sql)
        )
    ticks = metrics["ticks"]
    assert ticks == sum(int(end["total"]) for _sql, end in outcomes)
    return elapsed, ticks, metrics


def measure_server_load(scale_factor=1.0):
    db = _make_db(scale_factor)
    solo = _solo_traces(db)
    results = {}
    for backend in ("thread", "process"):
        best_seconds = float("inf")
        ticks = None
        latency = None
        for _ in range(REPS):
            elapsed, round_ticks, metrics = _timed_round(db, backend, solo)
            if elapsed < best_seconds:
                best_seconds = elapsed
                latency = metrics["latency"]
            assert ticks is None or ticks == round_ticks
            ticks = round_ticks
        results[backend] = {
            "wall_seconds": best_seconds,
            "total_ticks": ticks,
            "ticks_per_second": ticks / best_seconds,
            "latency_p50_seconds": latency["p50_seconds"],
            "latency_p99_seconds": latency["p99_seconds"],
        }
    assert results["thread"]["total_ticks"] == results["process"]["total_ticks"]
    speedup = (
        results["process"]["ticks_per_second"]
        / results["thread"]["ticks_per_second"]
    )
    return {
        "tpch_scale": TPCH_SCALE * scale_factor,
        "clients": CLIENTS,
        "tenants": TENANTS,
        "workers": WORKERS,
        "target_samples": TARGET_SAMPLES,
        "workload_sql": WORKLOAD_SQL,
        "reps": REPS,
        "usable_cores": usable_cores(),
        "backends": results,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": True,
    }


def test_server_load_throughput(benchmark, scale_factor):
    cores = usable_cores()
    if cores < MIN_CORES_FOR_GATE:
        pytest.skip(
            "server-load baseline needs >= %d usable cores to enforce the "
            "%.0fx process-backend gate (found %d); refusing to record an "
            "un-enforced baseline" % (MIN_CORES_FOR_GATE, SPEEDUP_GATE, cores)
        )
    result = benchmark.pedantic(
        lambda: measure_server_load(scale_factor=scale_factor),
        rounds=1, iterations=1,
    )
    save_artifact(
        "BENCH_server_load.json",
        json.dumps(result, indent=2, sort_keys=True),
    )
    for backend in ("thread", "process"):
        entry = result["backends"][backend]
        print("%-8s %9d ticks  %7.3fs  %12.0f ticks/s  "
              "p50=%.3fs p99=%.3fs" % (
                  backend, entry["total_ticks"], entry["wall_seconds"],
                  entry["ticks_per_second"], entry["latency_p50_seconds"],
                  entry["latency_p99_seconds"],
              ))
    print("speedup: %.2fx with %d clients on %d cores (gate enforced)" % (
        result["speedup"], result["clients"], result["usable_cores"],
    ))
    # Acceptance bar: ≥2× aggregate throughput from real parallelism.
    # Unconditional — a machine that cannot enforce it skipped above,
    # before any artifact was written.
    assert result["speedup"] >= SPEEDUP_GATE
