"""Columnar-engine throughput: batch kernels vs. the fused compiler.

Same plan set as ``test_perf_engine_throughput`` — all 22 TPC-H queries
plus the adversarial join workloads — and the same end-to-end protocol:
every plan runs under full progress instrumentation (dne/pmax/safe on the
runner's default cadence), once through the fused generator compiler and
once through the columnar batch engine (``repro.engine.columnar``).  The
tick protocol is identical by construction (asserted per plan), so the
speedup is a pure throughput ratio.

The TPC-H scale is 10× the fused-vs-interpreted benchmark's: batch
execution exists for exactly the regime where tables hold hundreds of
thousands of rows, and at toy scales its fixed per-pipeline costs (layout,
argsorts, replay bookkeeping) would measure overhead, not throughput.

Honest ceiling note: the ROADMAP's aspiration for this engine is ≥10×
over fused.  On a single core with NumPy-only kernels that is not
reachable on this plan set: the fused engine already costs only a few
hundred nanoseconds per tick, while the columnar floor is the O(n log n)
NumPy sort/searchsorted work inside hash-join probes and grouping plus the
exact (left-fold) float aggregation the bit-identical contract requires.
Compute-dense plans (q1, q6, q19) reach 5–8×; join-plumbing-dense plans
settle near 3×; plans dominated by operators without vectorized kernels
(merge join, ⋈NL rescans) fall back to the fused adapters and sit near 1×
by design.  Measured geomean on the committed runner: ≈3.3×.  Raising the
ceiling further needs native (C/multicore) kernels — tracked in ROADMAP.

The numbers land in ``benchmarks/results/BENCH_columnar_throughput.json``.
The enforced acceptance bar is a ≥2.5× geomean with bit-identical tick
totals; the 10× design target is recorded in the artifact so the gap
stays visible instead of silently forgotten.
"""

import gc
import json
import math
import time

from repro.bench.harness import save_artifact
from repro.core import standard_toolkit
from repro.core.runner import run_with_estimators
from repro.workloads import build_query, generate_tpch
from repro.workloads.adversarial import make_example2, make_zipfian_join

TPCH_SCALE = 0.05
ADVERSARIAL_N = 200_000
REPS = 3
#: plans below this tick count are sampling-dominated, not engine-dominated
MIN_TICKS = 20_000
#: enforced bar (geomean, full plan set) — see the module docstring for why
#: the 10× design target is recorded but not asserted
SPEEDUP_GATE = 2.5
DESIGN_TARGET = 10.0


def _cases(scale_factor):
    db = generate_tpch(scale=TPCH_SCALE * scale_factor, skew=2.0, seed=42)
    zipf = make_zipfian_join(
        n=int(ADVERSARIAL_N * scale_factor), z=2.0, order="skew_last", seed=7
    )
    ex2 = make_example2(
        n=int(ADVERSARIAL_N * scale_factor),
        matches=int(ADVERSARIAL_N * scale_factor) // 20,
    )
    cases = [
        ("q%d" % number, (lambda number=number: build_query(db, number)))
        for number in range(1, 23)
    ]
    cases += [
        ("zipf-inl", zipf.inl_plan),
        ("zipf-hash", zipf.hash_plan),
        ("zipf-merge", zipf.merge_plan),
        ("example2-inl", ex2.inl_plan),
    ]
    return cases


def _timed_run(build_plan, engine):
    """One instrumented run; returns (wall seconds, total ticks)."""
    plan = build_plan()
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        report = run_with_estimators(plan, standard_toolkit(), engine=engine)
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, int(report.total)


def measure_throughput(scale_factor=1.0):
    per_plan = {}
    for name, build_plan in _cases(scale_factor):
        seconds = {}
        ticks = {}
        for engine in ("fused", "columnar"):
            best = float("inf")
            for _ in range(REPS):
                elapsed, total = _timed_run(build_plan, engine)
                best = min(best, elapsed)
                ticks[engine] = total
            seconds[engine] = best
        # The columnar contract: exactly the fused/interpreted tick
        # sequence, just produced from batch kernels.  Totals must agree
        # or the "same work, less time" framing of the speedup is void.
        assert ticks["fused"] == ticks["columnar"], (
            "%s: engines disagree on total ticks (%d vs %d)"
            % (name, ticks["fused"], ticks["columnar"])
        )
        total = ticks["columnar"]
        per_plan[name] = {
            "ticks": total,
            "fused_seconds": seconds["fused"],
            "columnar_seconds": seconds["columnar"],
            "fused_ticks_per_second": total / seconds["fused"],
            "columnar_ticks_per_second": total / seconds["columnar"],
            "speedup": seconds["fused"] / seconds["columnar"],
            "in_geomean": total >= MIN_TICKS * scale_factor,
        }
    included = [e["speedup"] for e in per_plan.values() if e["in_geomean"]]
    geomean = (
        math.exp(sum(math.log(s) for s in included) / len(included))
        if included else None
    )
    return {
        "tpch_scale": TPCH_SCALE * scale_factor,
        "adversarial_n": int(ADVERSARIAL_N * scale_factor),
        "reps": REPS,
        "min_ticks_for_geomean": int(MIN_TICKS * scale_factor),
        "plans": per_plan,
        "plans_in_geomean": len(included),
        "speedup_geomean": geomean,
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": True,
        "design_target": DESIGN_TARGET,
        "design_target_met": bool(geomean and geomean >= DESIGN_TARGET),
    }


def test_columnar_throughput(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: measure_throughput(scale_factor=scale_factor),
        rounds=1, iterations=1,
    )
    save_artifact(
        "BENCH_columnar_throughput.json",
        json.dumps(result, indent=2, sort_keys=True),
    )
    for name, entry in sorted(result["plans"].items()):
        print("%-13s %8d ticks  %.3fs -> %.3fs  %.2fx%s" % (
            name, entry["ticks"],
            entry["fused_seconds"], entry["columnar_seconds"],
            entry["speedup"],
            "" if entry["in_geomean"] else "  (below tick floor)",
        ))
    print("geomean over %d plans: %.2fx (gate %.1fx, design target %.0fx)" % (
        result["plans_in_geomean"], result["speedup_geomean"],
        result["speedup_gate"], result["design_target"],
    ))
    assert result["plans_in_geomean"] >= 15
    # Enforced bar: ≥2.5× end to end with the full dne/pmax/safe toolkit
    # sampling throughout, and identical tick totals (asserted per plan).
    assert result["speedup_geomean"] >= SPEEDUP_GATE
