"""Figure 6 — ratio error of pmax over the execution of TPC-H Q21.

Paper: Q21 has the suite's largest μ (2.782), so pmax starts with a loose
guarantee — but the continuous refinement of the cardinality bounds makes
its ratio error drop as execution proceeds ("to a small value after a
reasonable fraction of the query is done, soon converging to 1").
"""

from repro.bench import figure6, render_series, save_artifact


def test_figure6(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: figure6(scale=0.002 * scale_factor), rounds=1, iterations=1
    )
    artifact = render_series(
        result["series"],
        x_label="actual progress",
        title=(
            "Figure 6: pmax ratio error over TPC-H Q21 (mu=%.3f; "
            "err@30%%=%.3f, err@70%%=%.3f)"
            % (result["mu"], result["error_after_30pct"],
               result["error_after_70pct"])
        ),
    )
    print("\n" + artifact)
    save_artifact("figure6.txt", artifact)

    series = result["series"]["pmax ratio error"]
    # decays: the worst error late in the run is far below the early worst
    early = max(err for actual, err in series if actual < 0.3)
    late = max(err for actual, err in series if actual > 0.7)
    assert late < early
    assert result["error_after_70pct"] < 1.6
    # converges to 1 at completion
    assert series[-1][1] < 1.05
