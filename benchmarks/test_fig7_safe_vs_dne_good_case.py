"""Figure 7 — safe vs dne when the skew is filtered away (dne's good case).

Paper: adding a predicate that removes the high-skew tuples makes the
per-tuple work variance negligible — dne becomes almost exactly accurate
while safe, still hedging against a worst case that cannot happen, is off
by ~20%.  This is the cost of worst-case optimality.
"""

from repro.bench import figure7, render_series, save_artifact


def test_figure7(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: figure7(n=int(10000 * scale_factor)), rounds=1, iterations=1
    )
    artifact = render_series(
        result["series"],
        title=(
            "Figure 7: safe vs dne, skew filtered out (dne max err=%.4f, "
            "safe max err=%.4f)"
            % (result["dne_max_abs_error"], result["safe_max_abs_error"])
        ),
    )
    print("\n" + artifact)
    save_artifact("figure7.txt", artifact)

    assert result["dne_max_abs_error"] < 0.05   # near-exact
    assert result["safe_max_abs_error"] > 0.1   # paper: ~20% off
    assert result["safe_max_abs_error"] > result["dne_max_abs_error"] * 3
