"""Table 1 — impact of a scan-based plan on every estimator.

Paper (worst-case order, zipf z=2):

    estimator | max err INL | max err hash | avg err INL | avg err hash
    dne       |   49.50%    |    19.20%    |   24.74%    |    7.37%
    pmax      |   49.50%    |    19.20%    |   24.74%    |    9.04%
    safe      |   25.2%     |     8.2%     |   14.8%     |    4.2%

The shape to reproduce: every estimator improves markedly from ⋈INL to
⋈hash, and safe has the lowest max error in both columns.
"""

from repro.bench import render_table, save_artifact, table1


def test_table1(benchmark, scale_factor):
    rows = benchmark.pedantic(
        lambda: table1(n=int(10000 * scale_factor)), rounds=1, iterations=1
    )
    artifact = render_table(
        ["estimator", "max err (INL)", "max err (hash)",
         "avg err (INL)", "avg err (hash)"],
        [
            [row.estimator,
             "%.2f%%" % (row.max_err_inl * 100),
             "%.2f%%" % (row.max_err_hash * 100),
             "%.2f%%" % (row.avg_err_inl * 100),
             "%.2f%%" % (row.avg_err_hash * 100)]
            for row in rows
        ],
        title="Table 1: impact of scan-based plan (worst-case order, z=2)",
    )
    print("\n" + artifact)
    save_artifact("table1.txt", artifact)

    by_name = {row.estimator: row for row in rows}
    for row in rows:
        assert row.max_err_hash < row.max_err_inl
        assert row.avg_err_hash < row.avg_err_inl
    assert by_name["safe"].max_err_inl < by_name["dne"].max_err_inl
    assert by_name["safe"].max_err_inl < by_name["pmax"].max_err_inl
    assert by_name["safe"].max_err_hash <= by_name["pmax"].max_err_hash
    # paper magnitudes (ours: 48.9 / 48.9 / 20.3 vs paper 49.5 / 49.5 / 25.2)
    assert abs(by_name["dne"].max_err_inl - 0.495) < 0.1
    assert abs(by_name["pmax"].max_err_inl - 0.495) < 0.1
