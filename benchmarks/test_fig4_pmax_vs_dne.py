"""Figure 4 — pmax vs dne on the zipfian ⋈INL join, high-skew tuples first.

Paper: with R2's join column zipf(z=2) and the high-fan-out tuples at the
start of R1, dne substantially *under*-estimates progress, while pmax stays
within its μ=2 guarantee.
"""

from repro.bench import figure4, render_series, save_artifact


def test_figure4(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: figure4(n=int(10000 * scale_factor)), rounds=1, iterations=1
    )
    artifact = render_series(
        result["series"],
        title=(
            "Figure 4: pmax vs dne, skew first (dne max err=%.3f, "
            "pmax max err=%.3f, mu=%.2f)"
            % (result["dne_max_abs_error"], result["pmax_max_abs_error"],
               result["mu"])
        ),
    )
    print("\n" + artifact)
    save_artifact("figure4.txt", artifact)

    assert result["mu"] <= 2.01
    assert result["dne_max_abs_error"] > 0.3   # paper: ~49% under-estimate
    assert result["pmax_max_abs_error"] < 0.15  # pmax stays tight
    # direction: dne sits BELOW the diagonal mid-query
    mid = [est - actual for actual, est in result["series"]["dne"]
           if 0.2 < actual < 0.5]
    assert all(diff < 0 for diff in mid)
