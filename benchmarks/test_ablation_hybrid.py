"""Ablation A4 — §6.4's heuristic estimator combinations across scenarios.

Max absolute error of dne / pmax / safe / hybrid-μ / hybrid-variance on the
four canonical scenarios.  The paper's conclusion to verify: *no* estimator
(hybrids included) wins everywhere — Theorems 7/8 rule out provably correct
switching, so every combination loses some scenario.
"""

from repro.bench import ablation_hybrid, render_table, save_artifact

ESTIMATORS = ("dne", "pmax", "safe", "hybrid-mu", "hybrid-var")


def test_hybrid_grid(benchmark, scale_factor):
    results = benchmark.pedantic(
        lambda: ablation_hybrid(n=int(8000 * scale_factor)),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["scenario"] + list(ESTIMATORS),
        [
            [scenario] + ["%.3f" % (errors[name],) for name in ESTIMATORS]
            for scenario, errors in results.items()
        ],
        title="Ablation A4: max abs error per scenario (no clear winner)",
    )
    print("\n" + artifact)
    save_artifact("ablation_hybrid.txt", artifact)

    # pmax dominates dne when skew arrives early; dne dominates safe in the
    # good case; and nobody wins every scenario.
    assert results["inl-skew_first"]["pmax"] < results["inl-skew_first"]["dne"]
    assert results["inl-good-case"]["dne"] < results["inl-good-case"]["safe"]
    for name in ESTIMATORS:
        wins = sum(
            1 for errors in results.values()
            if min(errors, key=errors.get) == name
        )
        assert wins < len(results)
