"""Protocol benchmark: single-pass vs. two-pass evaluation, end to end.

The two-pass protocol pays an oracle pre-run per fresh plan: every query
executes twice so that live samples can carry eager truth labels.  The
single-pass protocol (the default) executes each plan exactly once and
back-fills the labels at completion, so on an execution-dominated workload
it should approach 2× end-to-end.

Measurement protocol:

* the workload is the service stress mix — eight TPC-H queries admitted
  back-to-back onto a 4-worker thread-backend service, full dne/pmax/safe
  instrumentation throughout;
* a **fresh plan object per submission**: the two-pass oracle cache is
  keyed by plan object, and a reused plan would let the legacy protocol
  skip the very pre-run this benchmark prices;
* fresh service per repetition, three repetitions per protocol, minimum
  wall time taken; the garbage collector is collected then disabled around
  each timed region;
* correctness is asserted *inside* the benchmark: the two protocols'
  sealed traces, totals and μ values must be bit-identical — the speedup
  is bought by dropping a redundant execution, never by changing the
  evaluation.

The numbers land in ``benchmarks/results/BENCH_single_pass.json``.  The
acceptance bar is a ≥1.7× end-to-end speedup: below 2× because fixed
per-query costs (admission, sealing, event publication) are not doubled by
the oracle pass, and comfortably above noise on any runner.
"""

import gc
import json
import time

from repro.bench.harness import save_artifact
from repro.service import QueryService
from repro.stats import StatisticsManager
from repro.workloads import build_query, generate_tpch

TPCH_SCALE = 0.004
QUERIES = [1, 3, 5, 6, 10, 12, 14, 19]
WORKERS = 4
TARGET_SAMPLES = 40
REPS = 3
SPEEDUP_GATE = 1.7


def _make_db(scale_factor):
    db = generate_tpch(scale=TPCH_SCALE * scale_factor, skew=2.0, seed=42)
    StatisticsManager(db.catalog).analyze_all()
    return db


def _timed_round(db, protocol):
    """One full workload through a fresh service; returns (seconds, reports)."""
    service = QueryService(
        db.catalog,
        protocol=protocol,
        max_workers=WORKERS,
        queue_depth=len(QUERIES),
        target_samples=TARGET_SAMPLES,
    )
    try:
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            handles = [
                # A fresh plan per submission keeps the two-pass oracle
                # cache cold: this prices the protocol, not the memo.
                service.submit(build_query(db, number), name="Q%d" % number)
                for number in QUERIES
            ]
            reports = {
                number: handle.result(timeout=600)
                for number, handle in zip(QUERIES, handles)
            }
            elapsed = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        service.shutdown()
    return elapsed, reports


def measure_protocols(scale_factor=1.0):
    db = _make_db(scale_factor)
    results = {}
    reference = None
    for protocol in ("two_pass", "single_pass"):
        best_seconds = float("inf")
        ticks = None
        for _ in range(REPS):
            elapsed, reports = _timed_round(db, protocol)
            best_seconds = min(best_seconds, elapsed)
            round_ticks = sum(int(report.total) for report in reports.values())
            assert ticks is None or ticks == round_ticks
            ticks = round_ticks
            # The differential guarantee, re-checked under timing
            # conditions: deferring truth labels changes nothing about
            # the sealed evaluation.
            if reference is None:
                reference = {
                    number: (report.trace.samples, report.total, report.mu)
                    for number, report in reports.items()
                }
            else:
                for number, report in reports.items():
                    samples, total, mu = reference[number]
                    assert report.trace.samples == samples, (
                        "Q%d: %s trace differs" % (number, protocol)
                    )
                    assert report.total == total
                    assert report.mu == mu
        results[protocol] = {
            "wall_seconds": best_seconds,
            "total_ticks": ticks,
            "ticks_per_second": ticks / best_seconds,
        }
    assert (
        results["two_pass"]["total_ticks"]
        == results["single_pass"]["total_ticks"]
    )
    speedup = (
        results["two_pass"]["wall_seconds"]
        / results["single_pass"]["wall_seconds"]
    )
    return {
        "tpch_scale": TPCH_SCALE * scale_factor,
        "queries": QUERIES,
        "workers": WORKERS,
        "target_samples": TARGET_SAMPLES,
        "reps": REPS,
        "protocols": results,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
    }


def test_single_pass_speedup(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: measure_protocols(scale_factor=scale_factor),
        rounds=1, iterations=1,
    )
    save_artifact(
        "BENCH_single_pass.json",
        json.dumps(result, indent=2, sort_keys=True),
    )
    for protocol in ("two_pass", "single_pass"):
        entry = result["protocols"][protocol]
        print("%-12s %9d ticks  %7.3fs  %12.0f ticks/s" % (
            protocol, entry["total_ticks"], entry["wall_seconds"],
            entry["ticks_per_second"],
        ))
    print("speedup: %.2fx (gate %.1fx)" % (
        result["speedup"], result["speedup_gate"],
    ))
    # Acceptance bar: dropping the oracle pre-run must buy ≥1.7× end to
    # end on an execution-dominated workload.  The bit-identity
    # assertions inside measure_protocols ran unconditionally.
    assert result["speedup"] >= SPEEDUP_GATE
