"""Ablation A1 — Theorem 1/6 live: the twin-instance impossibility.

Two statistically indistinguishable instances whose total work differs 9x.
At the decision instant every estimator answers identically on both, so it
is forced into a ratio error of at least √9 = 3 on one of them.  safe pays
exactly 3 (worst-case optimal, Theorem 6); dne and pmax pay 9.
"""

from repro.bench import ablation_lower_bound, render_table, save_artifact


def test_lower_bound(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: ablation_lower_bound(n=int(6000 * scale_factor)),
        rounds=1, iterations=1,
    )
    forced = result["forced_ratio_error"]
    artifact = render_table(
        ["estimator", "estimate on X", "estimate on Y", "forced ratio error"],
        [
            [name,
             "%.4f" % (result["at_decision_x"][name],),
             "%.4f" % (result["at_decision_y"][name],),
             "%.2f" % (forced[name],)]
            for name in ("dne", "pmax", "safe")
        ]
        + [["(actual)",
            "%.4f" % (result["at_decision_x"]["actual"],),
            "%.4f" % (result["at_decision_y"]["actual"],),
            "optimal=%.2f" % (result["optimal_bound"],)]],
        title=(
            "Ablation A1: Theorem 1 twins (totals %d vs %d)"
            % result["totals"]
        ),
    )
    print("\n" + artifact)
    save_artifact("ablation_lower_bound.txt", artifact)

    optimal = result["optimal_bound"]
    assert forced["safe"] <= optimal * 1.1
    assert forced["dne"] >= optimal * 2
    assert forced["pmax"] >= optimal * 2
    # identical answers on identical prefixes
    for name in ("dne", "pmax", "safe"):
        assert abs(
            result["at_decision_x"][name] - result["at_decision_y"][name]
        ) < 1e-9
