"""Bound tightness: the ``degree_seq`` overlay vs. the paper2005 baseline.

Safe's worst-case ratio error is exactly ``√(UB/LB)`` (Theorem 6), so a
provider that shrinks the bound interval shrinks the *guarantee*, not just
an estimate.  This benchmark runs the adversarial zipfian joins — with the
``linear=False`` plan variants, where the paper's general join rule decays
to the ``|R|·|S|`` product — once per provider stack, samples both
trackers' bounds at the same instants of the same execution, and measures:

* the per-case geometric-mean ``√(UB/LB)`` over all sampled instants,
  per stack, and its reduction factor (stacked vs. baseline);
* the realized pmax/safe max/avg ratio errors (at the paper's 0.01 truth
  cutoff) under each stack.

Enforced gates:

* **never looser**: at every sampled instant of every case — skewed or
  not — the stacked tracker's UB ≤ baseline UB and LB ≥ baseline LB;
* **tightens where it matters**: geomean over the skewed
  (``linear=False``) cases of the ``√(UB/LB)`` reduction factor ≥ 1.3×.

Results land in ``benchmarks/results/BENCH_bounds_tightness.json``.
"""

import json
import math

from repro.bench.harness import save_artifact
from repro.core import (
    BoundsTracker,
    PmaxEstimator,
    SafeEstimator,
    run_with_estimators,
)
from repro.engine.executor import execute
from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators import ExecutionContext
from repro.workloads.adversarial import ORDERS, make_zipfian_join

BASE_N = 4000
MIN_N = 500
ZIPF_Z = 2.0
MIN_ACTUAL = 0.01
SAMPLE_EVERY = 97
BASELINE = ("paper2005",)
STACKED = ("paper2005", "degree_seq")
#: the tightening gate on the skewed (linear=False) cases
MIN_GEOMEAN_SHRINK = 1.3
#: float-noise tolerance on the never-looser gate
EPS = 1e-9


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def sweep_cases(n):
    """(name, workload, plan factory, skewed?) for the full grid."""
    cases = []
    for order in ORDERS:
        workload = make_zipfian_join(n=n, z=ZIPF_Z, order=order, seed=7)
        for shape, plan_of in (
            ("hash", workload.hash_plan),
            ("merge", workload.merge_plan),
            ("inl", workload.inl_plan),
        ):
            # linear=False: the adversarial product-rule setting degree_seq
            # exists for; linear=True: the control where the paper bound is
            # already tight and the overlay must simply do no harm.
            cases.append((
                "%s-%s-nonlinear" % (shape, order), workload,
                lambda plan_of=plan_of: plan_of(linear=False), True,
            ))
            cases.append((
                "%s-%s-linear" % (shape, order), workload,
                lambda plan_of=plan_of: plan_of(linear=True), False,
            ))
    return cases


def measure_bounds(plan, catalog):
    """One execution, both stacks sampled at identical instants."""
    base = BoundsTracker(plan, catalog, bounds=BASELINE)
    stacked = BoundsTracker(plan, catalog, bounds=STACKED)
    monitor = ExecutionMonitor()
    base.attach(monitor)
    stacked.attach(monitor)
    rows = []
    looser = [0]

    def observe(m):
        b, s = base.snapshot(), stacked.snapshot()
        if s.upper > b.upper * (1 + EPS) or s.lower < b.lower - EPS:
            looser[0] += 1
        rows.append((b.lower, b.upper, s.lower, s.upper))

    monitor.add_observer(observe, every=SAMPLE_EVERY)
    execute(plan, ExecutionContext(monitor))
    observe(monitor)
    base.detach()
    stacked.detach()
    return rows, looser[0]


def measure_errors(plan, catalog, bounds):
    report = run_with_estimators(
        plan, [PmaxEstimator(), SafeEstimator()], catalog, bounds=bounds
    )
    return {
        name: {
            "max_ratio": report.trace.max_ratio_error(name, MIN_ACTUAL),
            "avg_ratio": report.trace.avg_ratio_error(name, MIN_ACTUAL),
        }
        for name in ("pmax", "safe")
    }


def run_case(name, workload, plan_of, skewed):
    rows, looser = measure_bounds(plan_of(), workload.catalog)
    base_sqrt = geomean([math.sqrt(bu / bl) for bl, bu, _, _ in rows if bl > 0])
    stacked_sqrt = geomean(
        [math.sqrt(su / sl) for _, _, sl, su in rows if sl > 0]
    )
    shrink = base_sqrt / stacked_sqrt if stacked_sqrt > 0 else 1.0
    return {
        "case": name,
        "skewed": skewed,
        "order": workload.order,
        "samples": len(rows),
        "looser_instants": looser,
        "geomean_sqrt_ratio": {
            "paper2005": base_sqrt,
            "stacked": stacked_sqrt,
            "shrink_factor": shrink,
        },
        "ratio_errors": {
            "paper2005": measure_errors(
                plan_of(), workload.catalog, BASELINE
            ),
            "stacked": measure_errors(plan_of(), workload.catalog, STACKED),
        },
    }


def test_bounds_tightness(scale_factor):
    n = max(MIN_N, int(BASE_N * scale_factor))
    results = [
        run_case(name, workload, plan_of, skewed)
        for name, workload, plan_of, skewed in sweep_cases(n)
    ]

    looser_cases = [r["case"] for r in results if r["looser_instants"]]
    skewed_shrinks = [
        r["geomean_sqrt_ratio"]["shrink_factor"]
        for r in results
        if r["skewed"]
    ]
    skewed_geomean_shrink = geomean(skewed_shrinks)

    artifact = {
        "benchmark": "bounds_tightness",
        "workload": {
            "n": n,
            "z": ZIPF_Z,
            "orders": list(ORDERS),
            "scale_factor": scale_factor,
            "min_actual": MIN_ACTUAL,
        },
        "stacks": {"baseline": list(BASELINE), "stacked": list(STACKED)},
        "gates": {
            "never_looser": not looser_cases,
            "skewed_geomean_shrink": skewed_geomean_shrink,
            "skewed_geomean_shrink_floor": MIN_GEOMEAN_SHRINK,
        },
        "cases": results,
    }
    save_artifact(
        "BENCH_bounds_tightness.json", json.dumps(artifact, indent=2)
    )

    assert not looser_cases, (
        "degree_seq loosened the bounds on: %s" % looser_cases
    )
    assert skewed_geomean_shrink >= MIN_GEOMEAN_SHRINK, (
        "geomean √(UB/LB) shrink on skewed cases is %.3f× "
        "(gate: ≥ %.1f×)" % (skewed_geomean_shrink, MIN_GEOMEAN_SHRINK)
    )
