"""Ablation A5 — §2.2's claim that results extend to the bytes model.

Runs the Table 1 experiment under both the GetNext and bytes-processed
models of work.  The reproduced claim: the qualitative conclusions are
model-independent — safe has the lowest worst-case error, and every
estimator improves when the plan becomes scan-based.
"""

from repro.bench import ablation_bytes_model, render_table, save_artifact

ESTIMATORS = ("dne", "pmax", "safe")


def test_bytes_model(benchmark, scale_factor):
    results = benchmark.pedantic(
        lambda: ablation_bytes_model(n=int(8000 * scale_factor)),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["model/plan"] + list(ESTIMATORS),
        [[key] + ["%.3f" % (errors[name],) for name in ESTIMATORS]
         for key, errors in results.items()],
        title="Ablation A5: max abs error under GetNext vs Bytes work models",
    )
    print("\n" + artifact)
    save_artifact("ablation_bytes_model.txt", artifact)

    for model in ("getnext", "bytes"):
        inl = results["%s/inl" % (model,)]
        hashed = results["%s/hash" % (model,)]
        # safe is the best worst-case estimator under either model
        assert inl["safe"] < inl["dne"]
        assert inl["safe"] < inl["pmax"]
        # the scan-based plan improves everyone under either model
        for name in ESTIMATORS:
            assert hashed[name] < inl[name]
