"""Figure 3 — the dne estimator on TPC-H Query 1.

Paper: on skewed (z=2) TPC-H data, Q1's per-tuple work has μ ≈ 1.99 and
variance ≈ 0.01, so dne tracks the true progress almost exactly (the plot
hugs the diagonal), despite the optimizer's cardinality errors.
"""

from repro.bench import figure3, render_series, save_artifact


def test_figure3(benchmark, scale_factor):
    result = benchmark.pedantic(
        lambda: figure3(scale=0.002 * scale_factor), rounds=1, iterations=1
    )
    artifact = render_series(
        result["series"],
        title=(
            "Figure 3: dne on TPC-H Q1 (mu=%.3f, max err=%.4f, avg err=%.4f)"
            % (result["mu"], result["max_abs_error"], result["avg_abs_error"])
        ),
    )
    print("\n" + artifact)
    save_artifact("figure3.txt", artifact)

    # paper shape: near-diagonal
    assert result["mu"] == 2.0 or abs(result["mu"] - 1.99) < 0.1
    assert result["max_abs_error"] < 0.03
    assert result["avg_abs_error"] < 0.01
