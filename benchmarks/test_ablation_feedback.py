"""Ablation A6 — inter-query feedback (§6.4's third heuristic).

Three phases on the worst-case zipfian ⋈INL join:

* first run — no history: feedback degenerates to safe (identical errors);
* repeat run — the remembered total makes feedback essentially exact,
  beating every static estimator on the adversarial order;
* Theorem 1 twins — history recorded on instance X, replayed on the
  indistinguishable instance Y (9x the work): the stale history misleads
  feedback badly (worse than safe) until it is exhausted — Theorem 7's
  warning that no observable signal certifies the heuristic's assumption.
"""

from repro.bench import ablation_feedback, render_table, save_artifact

ESTIMATORS = ("dne", "pmax", "safe", "feedback")


def test_feedback(benchmark, scale_factor):
    results = benchmark.pedantic(
        lambda: ablation_feedback(n=int(8000 * scale_factor)),
        rounds=1, iterations=1,
    )
    artifact = render_table(
        ["phase"] + list(ESTIMATORS),
        [[phase] + ["%.3f" % (errors[name],) for name in ESTIMATORS]
         for phase, errors in results.items()],
        title="Ablation A6: inter-query feedback across runs (max abs error)",
    )
    print("\n" + artifact)
    save_artifact("ablation_feedback.txt", artifact)

    first = results["first-run"]
    repeat = results["repeat-run"]
    twins = results["data-changed-twins"]
    # no history: identical to safe
    assert abs(first["feedback"] - first["safe"]) < 1e-9
    # repeat run: essentially exact, far better than every static estimator
    assert repeat["feedback"] < 0.01
    assert repeat["feedback"] < repeat["safe"] * 0.1
    # stale history on changed data: no better than safe (Theorem 7 bites)
    assert twins["feedback"] >= twins["safe"]
