"""Benchmark harness utilities: rendering tables and progress series.

Every experiment in :mod:`repro.bench.experiments` returns plain data; this
module turns that data into the text artifacts (tables, down-sampled series)
that the ``benchmarks/`` suite prints and stores, one per figure/table of
the paper.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "%.4f" % (value,)
    return str(value)


def downsample(series: Series, points: int = 25) -> List[Tuple[float, float]]:
    """Evenly pick ~``points`` samples of a long series (keeps first/last)."""
    if len(series) <= points:
        return list(series)
    step = (len(series) - 1) / (points - 1)
    picked = [series[round(i * step)] for i in range(points)]
    return picked


def render_series(
    named_series: Dict[str, Series],
    x_label: str = "actual progress",
    points: int = 25,
    title: str = "",
) -> str:
    """Tabulate several (x, y) series against a shared x axis.

    Series are down-sampled by their own x order; x values come from the
    first series (they are near-identical across estimators by design).
    """
    if not named_series:
        return title
    names = list(named_series)
    base = downsample(list(named_series[names[0]]), points)
    headers = [x_label] + names
    rows = []
    for i, (x, _) in enumerate(base):
        row: List[object] = [x]
        for name in names:
            sampled = downsample(list(named_series[name]), points)
            row.append(sampled[i][1] if i < len(sampled) else "")
        rows.append(row)
    return render_table(headers, rows, title)


def results_dir() -> str:
    """Directory where benchmark artifacts are written."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results"),
    )
    os.makedirs(path, exist_ok=True)
    return path


def save_artifact(name: str, text: str) -> str:
    """Write a rendered artifact under ``benchmarks/results``; returns path."""
    path = os.path.join(results_dir(), name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
