"""One function per paper artifact (figures 3-7, tables 1-3) plus ablations.

Each function builds its workload, runs the instrumented execution, and
returns plain data structures; the benchmark suite renders and checks them.
Scales default to laptop-fast sizes — every experiment takes a parameter to
run bigger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimators import (
    DneEstimator,
    HybridMuEstimator,
    HybridVarianceEstimator,
    PmaxEstimator,
    SafeEstimator,
    standard_toolkit,
)
from repro.core.metrics import ProgressTrace, ratio_error
from repro.core.model import DriverWorkProfile, mu as compute_mu, total_work
from repro.core.runner import ProgressReport, run_with_estimators
from repro.engine.expressions import col, lit
from repro.engine.operators.aggregate import HashAggregate, agg_sum, count_star
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.scan import TableScan
from repro.engine.plan import Plan
from repro.storage.catalog import Catalog
from repro.storage.schema import schema_of
from repro.storage.table import Table
from repro.workloads.adversarial import make_twin_instances, make_zipfian_join
from repro.workloads.skyserver import SKYSERVER_QUERIES, generate_skyserver
from repro.workloads.tpch import build_query, generate_tpch

# ---------------------------------------------------------------------------
# Figure 3 — dne on TPC-H Query 1 (near-diagonal because var is tiny)
# ---------------------------------------------------------------------------


def figure3(scale: float = 0.002, skew: float = 2.0, seed: int = 42) -> Dict:
    db = generate_tpch(scale=scale, skew=skew, seed=seed)
    plan = build_query(db, 1)
    report = run_with_estimators(plan, [DneEstimator()], db.catalog)
    return {
        "report": report,
        "series": {"dne": report.trace.series("dne")},
        "mu": report.mu,
        "max_abs_error": report.trace.max_abs_error("dne"),
        "avg_abs_error": report.trace.avg_abs_error("dne"),
    }


# ---------------------------------------------------------------------------
# Figure 4 — pmax vs dne, zipfian ⋈INL, high-skew tuples first
# ---------------------------------------------------------------------------


def figure4(n: int = 8000, z: float = 2.0) -> Dict:
    workload = make_zipfian_join(n=n, z=z, order="skew_first")
    plan = workload.inl_plan()
    report = run_with_estimators(
        plan, [DneEstimator(), PmaxEstimator()], workload.catalog
    )
    trace = report.trace
    return {
        "report": report,
        "series": {"dne": trace.series("dne"), "pmax": trace.series("pmax")},
        "dne_max_abs_error": trace.max_abs_error("dne"),
        "pmax_max_abs_error": trace.max_abs_error("pmax"),
        "mu": report.mu,
    }


# ---------------------------------------------------------------------------
# Figure 5 — safe vs dne, worst-case (high-skew tuples last)
# ---------------------------------------------------------------------------


def figure5(n: int = 8000, z: float = 2.0) -> Dict:
    workload = make_zipfian_join(n=n, z=z, order="skew_last")
    plan = workload.inl_plan()
    report = run_with_estimators(
        plan, [DneEstimator(), SafeEstimator()], workload.catalog
    )
    trace = report.trace
    return {
        "report": report,
        "series": {"dne": trace.series("dne"), "safe": trace.series("safe")},
        "dne_max_abs_error": trace.max_abs_error("dne"),
        "safe_max_abs_error": trace.max_abs_error("safe"),
    }


# ---------------------------------------------------------------------------
# Table 1 — Max/Avg error of dne/pmax/safe under ⋈INL vs ⋈hash
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    estimator: str
    max_err_inl: float
    max_err_hash: float
    avg_err_inl: float
    avg_err_hash: float


def table1(n: int = 8000, z: float = 2.0) -> List[Table1Row]:
    workload = make_zipfian_join(n=n, z=z, order="skew_last")
    reports = {
        "inl": run_with_estimators(
            workload.inl_plan(), standard_toolkit(), workload.catalog
        ),
        "hash": run_with_estimators(
            workload.hash_plan(), standard_toolkit(), workload.catalog
        ),
    }
    rows = []
    for name in ("dne", "pmax", "safe"):
        rows.append(
            Table1Row(
                estimator=name,
                max_err_inl=reports["inl"].trace.max_abs_error(name),
                max_err_hash=reports["hash"].trace.max_abs_error(name),
                avg_err_inl=reports["inl"].trace.avg_abs_error(name),
                avg_err_hash=reports["hash"].trace.avg_abs_error(name),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — μ values for TPC-H Q1..Q21 (skewed data, z=2)
# ---------------------------------------------------------------------------


def table2(
    scale: float = 0.001, skew: float = 2.0, seed: int = 42,
    queries: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    db = generate_tpch(scale=scale, skew=skew, seed=seed)
    numbers = list(queries) if queries is not None else list(range(1, 22))
    result: Dict[int, float] = {}
    for number in numbers:
        plan = build_query(db, number)
        result[number] = compute_mu(plan)
    return result


# ---------------------------------------------------------------------------
# Table 3 — μ values for the long-running SkyServer queries
# ---------------------------------------------------------------------------


def table3(scale: int = 6000, seed: int = 11) -> Dict[int, float]:
    db = generate_skyserver(scale=scale, seed=seed)
    return {
        number: compute_mu(builder(db))
        for number, builder in sorted(SKYSERVER_QUERIES.items())
    }


# ---------------------------------------------------------------------------
# Figure 6 — ratio error of pmax over the execution of TPC-H Q21
# ---------------------------------------------------------------------------


def figure6(scale: float = 0.002, skew: float = 2.0, seed: int = 42) -> Dict:
    db = generate_tpch(scale=scale, skew=skew, seed=seed)
    plan = build_query(db, 21)
    report = run_with_estimators(plan, [PmaxEstimator()], db.catalog)
    series = report.trace.ratio_error_series("pmax")
    return {
        "report": report,
        "series": {"pmax ratio error": series},
        "mu": report.mu,
        "error_after_30pct": report.trace.ratio_error_after("pmax", 0.3),
        "error_after_70pct": report.trace.ratio_error_after("pmax", 0.7),
    }


# ---------------------------------------------------------------------------
# Figure 7 — safe vs dne in a dne-favorable case (skew filtered out)
# ---------------------------------------------------------------------------


def figure7(n: int = 8000, z: float = 2.0, skip_top_ranks: int = 25) -> Dict:
    workload = make_zipfian_join(n=n, z=z, order="skew_last")
    plan = workload.inl_plan(skip_top_ranks=skip_top_ranks)
    report = run_with_estimators(
        plan, [DneEstimator(), SafeEstimator()], workload.catalog
    )
    trace = report.trace
    return {
        "report": report,
        "series": {"dne": trace.series("dne"), "safe": trace.series("safe")},
        "dne_max_abs_error": trace.max_abs_error("dne"),
        "safe_max_abs_error": trace.max_abs_error("safe"),
        "safe_final_error": abs(
            trace.samples[-1].estimates["safe"] - trace.samples[-1].actual
        ),
    }


# ---------------------------------------------------------------------------
# Ablation A1 — the Theorem 1 lower bound, live
# ---------------------------------------------------------------------------


def ablation_lower_bound(n: int = 4000) -> Dict:
    """Run both twin instances; compare estimates at the decision instant.

    At the tick just before the offending tuple is read, the two executions
    are byte-identical to any estimator, yet the true progress is ~0.9 on
    instance X and ~0.1 on instance Y.  Whatever an estimator answers, it
    pays at least a factor √(total_y/total_x) on one of them — and safe
    pays exactly that, which is the optimality claim of Theorem 6.
    """
    twins = make_twin_instances(n=n)
    toolkit = lambda: standard_toolkit()  # noqa: E731 - fresh instances per run
    report_x = run_with_estimators(twins.plan_x(), toolkit(), twins.catalog_x)
    report_y = run_with_estimators(twins.plan_y(), toolkit(), twins.catalog_y)

    def at_decision(report: ProgressReport) -> Dict[str, float]:
        target = twins.position
        sample = min(report.trace.samples, key=lambda s: abs(s.curr - target))
        return dict(sample.estimates, actual=sample.curr / report.total)

    x = at_decision(report_x)
    y = at_decision(report_y)
    forced = {
        name: max(ratio_error(x[name], x["actual"]), ratio_error(y[name], y["actual"]))
        for name in ("dne", "pmax", "safe")
    }
    return {
        "totals": (report_x.total, report_y.total),
        "at_decision_x": x,
        "at_decision_y": y,
        "forced_ratio_error": forced,
        "optimal_bound": (report_y.total / report_x.total) ** 0.5,
    }


# ---------------------------------------------------------------------------
# Ablation A2 — Theorem 4: at least half of all orders are 2-predictive
# ---------------------------------------------------------------------------


def ablation_predictive_orders(
    trials: int = 400, n: int = 400, z: float = 1.5, seed: int = 3
) -> Dict:
    from repro.workloads.zipf import zipf_frequencies

    work = [1 + f for f in zipf_frequencies(4 * n, n, z)]
    rng = random.Random(seed)
    predictive = 0
    for _ in range(trials):
        order = list(work)
        rng.shuffle(order)
        if DriverWorkProfile(order).is_c_predictive(2.0):
            predictive += 1
    return {
        "trials": trials,
        "predictive": predictive,
        "fraction": predictive / trials,
    }


# ---------------------------------------------------------------------------
# Ablation A3 — Property 6: scan-based worst-case bounds
# ---------------------------------------------------------------------------


def _scan_based_chain(tables: int, rows_per_table: int, seed: int) -> Tuple[Plan, Catalog]:
    """A linear scan-based plan with ``tables-1`` FK hash joins + γ."""
    rng = random.Random(seed)
    catalog = Catalog()
    previous = None
    for t in range(tables):
        name = "t%d" % (t,)
        table = Table(
            name,
            schema_of(name, "k:int", "v:int"),
            [(i, rng.randrange(100)) for i in range(rows_per_table)],
        )
        catalog.add_table(table)
        scan = TableScan(table)
        if previous is None:
            previous = scan
        else:
            previous = HashJoin(
                scan, previous, col("%s.k" % (name,)),
                col("t%d.k" % (t - 1,)), linear=True,
            )
    aggregated = HashAggregate(
        previous, [], [count_star("n"), agg_sum(col("t0.v"), "s")]
    )
    return Plan(aggregated, "scan-chain-%d" % (tables,)), catalog


def ablation_scan_based(
    table_counts: Sequence[int] = (2, 3, 4, 5), rows_per_table: int = 1500,
    seed: int = 5,
) -> List[Dict]:
    results = []
    for tables in table_counts:
        plan, catalog = _scan_based_chain(tables, rows_per_table, seed)
        assert plan.is_scan_based() and plan.is_linear()
        m = plan.internal_node_count()
        report = run_with_estimators(plan, standard_toolkit(), catalog)
        results.append(
            {
                "tables": tables,
                "m": m,
                "mu": report.mu,
                "mu_bound": m + 1,
                "safe_max_ratio_error": report.trace.max_ratio_error(
                    "safe", min_actual=0.01
                ),
                "safe_bound": (m + 1) ** 0.5,
                "pmax_max_ratio_error": report.trace.max_ratio_error(
                    "pmax", min_actual=0.01
                ),
            }
        )
    return results


# ---------------------------------------------------------------------------
# Ablation A4 — §6.4 hybrid estimators across the scenario grid
# ---------------------------------------------------------------------------


def ablation_hybrid(n: int = 6000, z: float = 2.0) -> Dict[str, Dict[str, float]]:
    """Max abs error of every estimator on each canonical scenario."""
    scenarios: Dict[str, Tuple] = {}
    for order in ("skew_first", "skew_last"):
        workload = make_zipfian_join(n=n, z=z, order=order)
        scenarios["inl-%s" % (order,)] = (workload.inl_plan(), workload.catalog)
        if order == "skew_last":
            scenarios["hash-%s" % (order,)] = (workload.hash_plan(), workload.catalog)
            scenarios["inl-good-case"] = (
                workload.inl_plan(skip_top_ranks=25), workload.catalog,
            )
    results: Dict[str, Dict[str, float]] = {}
    for name, (plan, catalog) in scenarios.items():
        estimators = [
            DneEstimator(), PmaxEstimator(), SafeEstimator(),
            HybridMuEstimator(), HybridVarianceEstimator(),
        ]
        report = run_with_estimators(plan, estimators, catalog)
        results[name] = {
            estimator.name: report.trace.max_abs_error(estimator.name)
            for estimator in estimators
        }
    return results


# ---------------------------------------------------------------------------
# Ablation A5 — the bytes-processed work model (§2.2's "results extend")
# ---------------------------------------------------------------------------


def ablation_bytes_model(n: int = 6000, z: float = 2.0) -> Dict[str, Dict[str, float]]:
    """Table-1-style errors under the GetNext and Bytes models side by side.

    The reproduced claim: the estimator ranking (safe best on max error in
    the worst case; everyone improves on the scan-based plan) is the same
    under either model of work.
    """
    from repro.core.runner import ProgressRunner
    from repro.core.workmodels import BytesModel, GetNextModel

    workload = make_zipfian_join(n=n, z=z, order="skew_last")
    results: Dict[str, Dict[str, float]] = {}
    for model in (GetNextModel(), BytesModel()):
        for plan_kind in ("inl", "hash"):
            plan = (workload.inl_plan() if plan_kind == "inl"
                    else workload.hash_plan())
            report = ProgressRunner(
                plan, standard_toolkit(), workload.catalog, work_model=model
            ).run()
            results["%s/%s" % (model.name, plan_kind)] = {
                name: report.trace.max_abs_error(name)
                for name in ("dne", "pmax", "safe")
            }
    return results


# ---------------------------------------------------------------------------
# Ablation A6 — inter-query feedback (§6.4's third heuristic direction)
# ---------------------------------------------------------------------------


def ablation_feedback(n: int = 6000, z: float = 2.0) -> Dict[str, Dict[str, float]]:
    """Repeat-run feedback vs the static tool-kit on the worst-case join.

    First run: no history (feedback degenerates to safe).  Second run of
    the *same* plan: the remembered total makes feedback near-exact, beating
    every static estimator on the adversarial order.  Third case: the
    Theorem 1 twins — history recorded on instance X, query re-run on the
    statistically identical instance Y whose total is 9x larger; feedback's
    history is exhausted early and it retreats to safe (the bound clamp
    keeps it sound throughout).
    """
    from repro.core.estimators import FeedbackEstimator, QueryHistory

    history = QueryHistory()
    workload = make_zipfian_join(n=n, z=z, order="skew_last")
    results: Dict[str, Dict[str, float]] = {}

    def run_once(label: str, plan, catalog) -> None:
        estimators = standard_toolkit() + [FeedbackEstimator(history)]
        report = run_with_estimators(plan, estimators, catalog)
        results[label] = {
            name: report.trace.max_abs_error(name)
            for name in ("dne", "pmax", "safe", "feedback")
        }
        history.record(plan, report.total)

    run_once("first-run", workload.inl_plan(), workload.catalog)
    run_once("repeat-run", workload.inl_plan(), workload.catalog)

    twins = make_twin_instances(n=max(1000, n // 2))
    twin_history = QueryHistory()
    twin_history.record(twins.plan_x(), int(max(1000, n // 2)))  # X's total
    estimators = standard_toolkit() + [FeedbackEstimator(twin_history)]
    report = run_with_estimators(twins.plan_y(), estimators, twins.catalog_y)
    results["data-changed-twins"] = {
        name: report.trace.max_abs_error(name)
        for name in ("dne", "pmax", "safe", "feedback")
    }
    return results


# ---------------------------------------------------------------------------
# Ablation A7 — sensitivity sweep: estimator error vs skew and scale
# ---------------------------------------------------------------------------


def ablation_skew_sweep(
    n: int = 4000, z_values: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5),
) -> List[Dict]:
    """Worst-case-order ⋈INL errors as the zipf parameter grows.

    The paper fixes z = 2; this sweep shows how the estimator tradeoff
    emerges: at z = 0 (uniform fan-out) everyone is near-exact, and as the
    skew concentrates the join work into a few tuples, dne's and pmax's
    worst-case error climbs toward the ~49% of Figure 5 while safe's grows
    far more slowly (its bound interval absorbs the skew).
    """
    results: List[Dict] = []
    for z in z_values:
        workload = make_zipfian_join(n=n, z=z, order="skew_last")
        report = run_with_estimators(
            workload.inl_plan(), standard_toolkit(), workload.catalog
        )
        results.append(
            {
                "z": z,
                "mu": report.mu,
                "dne": report.trace.max_abs_error("dne"),
                "pmax": report.trace.max_abs_error("pmax"),
                "safe": report.trace.max_abs_error("safe"),
            }
        )
    return results


def ablation_scale_sweep(
    sizes: Sequence[int] = (1000, 2000, 4000, 8000), z: float = 2.0,
) -> List[Dict]:
    """Errors as the relation size grows (fixed z = 2, worst-case order).

    The reproduced claim is scale-freeness: the paper's experiments run at
    10^7 rows and ours at 10^3-10^4, so the whole reproduction hinges on the
    error *fractions* being size-invariant — which this sweep verifies.
    """
    results: List[Dict] = []
    for n in sizes:
        workload = make_zipfian_join(n=n, z=z, order="skew_last")
        report = run_with_estimators(
            workload.inl_plan(), standard_toolkit(), workload.catalog
        )
        results.append(
            {
                "n": n,
                "mu": report.mu,
                "dne": report.trace.max_abs_error("dne"),
                "pmax": report.trace.max_abs_error("pmax"),
                "safe": report.trace.max_abs_error("safe"),
            }
        )
    return results
