"""The catalog: the registry of tables, indexes and statistics.

The catalog plays the role of a database's system tables: the planner asks it
for access paths, the statistics layer stores per-table synopses in it, and
the progress-estimation layer reads *exact* base-table cardinalities from it
(the paper assumes base cardinalities are "accurately available from the
database catalogs").
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import CatalogError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import Table

#: process-wide catalog identity source: two live catalogs never share an
#: identity, while a pickled copy (process backend) keeps its original one —
#: fingerprints stay comparable across the wire.
_CATALOG_IDS = itertools.count(1)


class Catalog:
    """Registry of tables, secondary indexes, and single-relation statistics."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._hash_indexes: Dict[Tuple[str, str], HashIndex] = {}
        self._sorted_indexes: Dict[Tuple[str, str], SortedIndex] = {}
        # Statistics are stored per (table, column); values are objects from
        # repro.stats (kept untyped here to avoid a storage->stats dependency).
        self._statistics: Dict[Tuple[str, str], object] = {}
        # Degree/frequency-sequence statistics live in their own channel so
        # they can coexist with a histogram on the same column.
        self._degree_statistics: Dict[Tuple[str, str], object] = {}
        self._identity = next(_CATALOG_IDS)
        self._stats_version = 0

    # -- tables ---------------------------------------------------------------

    def add_table(self, table: Table, replace: bool = False) -> Table:
        if table.name in self._tables and not replace:
            raise CatalogError("table %r already registered" % (table.name,))
        if replace:
            self._drop_dependents(table.name)
        self._tables[table.name] = table
        self._stats_version += 1
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError("no table %r in catalog" % (name,)) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> List[str]:
        return list(self._tables)

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError("no table %r in catalog" % (name,))
        del self._tables[name]
        self._drop_dependents(name)
        self._stats_version += 1

    def cardinality(self, name: str) -> int:
        """Exact base-table cardinality, as a real catalog would know it."""
        return len(self.table(name))

    def _drop_dependents(self, table_name: str) -> None:
        for key in [k for k in self._hash_indexes if k[0] == table_name]:
            del self._hash_indexes[key]
        for key in [k for k in self._sorted_indexes if k[0] == table_name]:
            del self._sorted_indexes[key]
        for key in [k for k in self._statistics if k[0] == table_name]:
            del self._statistics[key]
        for key in [k for k in self._degree_statistics if k[0] == table_name]:
            del self._degree_statistics[key]

    # -- indexes --------------------------------------------------------------

    def create_hash_index(self, table_name: str, column: str) -> HashIndex:
        table = self.table(table_name)
        key = (table_name, column)
        if key in self._hash_indexes:
            raise CatalogError("hash index on %s.%s already exists" % key)
        index = HashIndex("hx_%s_%s" % key, table, column)
        self._hash_indexes[key] = index
        return index

    def create_sorted_index(self, table_name: str, column: str) -> SortedIndex:
        table = self.table(table_name)
        key = (table_name, column)
        if key in self._sorted_indexes:
            raise CatalogError("sorted index on %s.%s already exists" % key)
        index = SortedIndex("sx_%s_%s" % key, table, column)
        self._sorted_indexes[key] = index
        return index

    def hash_index(self, table_name: str, column: str) -> Optional[HashIndex]:
        return self._hash_indexes.get((table_name, column))

    def sorted_index(self, table_name: str, column: str) -> Optional[SortedIndex]:
        return self._sorted_indexes.get((table_name, column))

    def any_index(self, table_name: str, column: str):
        """Prefer a hash index for equality; fall back to a sorted index."""
        return self.hash_index(table_name, column) or self.sorted_index(
            table_name, column
        )

    def indexed_columns(self, table_name: str) -> List[str]:
        """Columns of ``table_name`` that have any index."""
        found = {
            column
            for (t, column) in list(self._hash_indexes) + list(self._sorted_indexes)
            if t == table_name
        }
        return sorted(found)

    # -- statistics -----------------------------------------------------------

    def set_statistic(self, table_name: str, column: str, statistic: object) -> None:
        self.table(table_name)  # existence check
        self._statistics[(table_name, column)] = statistic
        self._stats_version += 1

    def statistic(self, table_name: str, column: str) -> Optional[object]:
        return self._statistics.get((table_name, column))

    def statistics_for(self, table_name: str) -> Dict[str, object]:
        return {
            column: stat
            for (t, column), stat in self._statistics.items()
            if t == table_name
        }

    def set_degree_statistic(
        self, table_name: str, column: str, statistic: object
    ) -> None:
        """Register a degree/frequency-sequence statistic for one column.

        Kept in a channel separate from :meth:`set_statistic` so that a
        histogram and a degree sequence can coexist on the same column (the
        bound providers consume both).
        """
        self.table(table_name)  # existence check
        self._degree_statistics[(table_name, column)] = statistic
        self._stats_version += 1

    def degree_statistic(self, table_name: str, column: str) -> Optional[object]:
        return self._degree_statistics.get((table_name, column))

    @property
    def statistics_version(self) -> int:
        """Monotonic counter bumped by every table or statistics mutation."""
        return self._stats_version

    def fingerprint(self) -> str:
        """A cheap content fingerprint: identity, statistics version and
        per-table row counts.

        Query histories key their entries on ``(plan signature,
        fingerprint)`` so that structurally identical plans over different
        data — two live catalogs, or one catalog whose tables or statistics
        changed — never pollute each other's learned totals.  A pickled
        catalog copy (process backend) keeps its identity, so histories
        learned in the parent still apply in the worker.
        """
        rows = ",".join(
            "%s:%d" % (name, len(table))
            for name, table in sorted(self._tables.items())
        )
        return "c%d.v%d|%s" % (self._identity, self._stats_version, rows)

    def __repr__(self) -> str:
        return "Catalog(%s: %d tables, %d indexes)" % (
            self.name,
            len(self._tables),
            len(self._hash_indexes) + len(self._sorted_indexes),
        )
