"""Columnar views over heap tables: one array per column, built lazily.

The columnar engine (:mod:`repro.engine.columnar`) evaluates predicates and
join keys over whole columns instead of row by row.  This module owns the
row→column transposition and the typing rules that make that safe:

* a column becomes a NumPy array only when *every* value has exactly the
  type its :class:`~repro.storage.schema.ColumnType` promises (``int`` for
  INT, ``float`` for FLOAT, ``str`` for STR/DATE, ``bool`` for BOOL) and no
  value is NULL — so arithmetic, comparisons and ``.tolist()`` round-trips
  are bit-identical to the row-at-a-time engines (a FLOAT column holding
  the occasional ``int`` stays a plain list rather than silently coercing);
* anything else — NULLs, mixed representations, exotic types — stays a
  plain Python list, which the engine processes with exact row semantics.

Views are cached per table object (weakly, so dropped tables free their
arrays) and tables are immutable after load, so the transposition runs at
most once per table per process.

NumPy is optional.  Without it every column is a plain list and the
columnar engine still runs — correct, just without the vectorized fast
paths (the ``array`` module offers no 2-D ops worth the indirection, so
lists are the honest fallback).
"""

from __future__ import annotations

from typing import List, Optional, Sequence
from weakref import WeakKeyDictionary

from repro.storage.schema import ColumnType
from repro.storage.table import Table

try:  # pragma: no cover - exercised via the no-NumPy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: re-assignable for tests (monkeypatch to force the list fallback)
HAVE_NUMPY = _np is not None

#: exact Python type a column must hold, per declared column type, to be
#: eligible for array packing (bool is an int subclass, so identity checks)
_EXACT_TYPES = {
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.STR: str,
    ColumnType.DATE: str,
    ColumnType.BOOL: bool,
}

_NP_DTYPES = {
    ColumnType.INT: "int64",
    ColumnType.FLOAT: "float64",
    ColumnType.BOOL: "bool",
    # STR/DATE use NumPy's native '<U' sizing
}

_view_cache: "WeakKeyDictionary[Table, List[object]]" = WeakKeyDictionary()


def _pack_column(values: List[object], column_type: ColumnType):
    """An array for ``values`` when exactly typed and NULL-free, else the list."""
    if not HAVE_NUMPY or _np is None:
        return values
    exact = _EXACT_TYPES.get(column_type)
    if exact is None:
        return values
    for value in values:
        if type(value) is not exact:
            return values
    if exact is int:
        # int64 packing must round-trip: Python ints are unbounded.
        if values and not (-(2 ** 63) <= min(values) and max(values) < 2 ** 63):
            return values
    dtype = _NP_DTYPES.get(column_type)
    if dtype is not None:
        return _np.array(values, dtype=dtype)
    return _np.array(values)  # STR/DATE -> '<U…'


def columns_for(table: Table) -> List[object]:
    """The cached columnar view of ``table``: one array or list per column.

    Row order is the table's storage order (scan order); the i-th element
    of every column belongs to heap row i.
    """
    cached = _view_cache.get(table)
    if cached is not None:
        return cached
    rows = table._rows
    schema_columns = table.schema.columns
    if rows:
        transposed = list(zip(*rows))
    else:
        transposed = [() for _ in schema_columns]
    view = [
        _pack_column(list(values), column.type)
        for values, column in zip(transposed, schema_columns)
    ]
    _view_cache[table] = view
    return view


def pack_values(values: Sequence[object], column_type: Optional[ColumnType]):
    """Pack an ad-hoc value sequence under the same typing rules.

    Used for materialized intermediates (e.g. a blocking operator's emitted
    rows re-entering a vectorized chain).  ``column_type`` None means
    "sniff": try int, then float, then str, exact-type rules as above.
    """
    values = list(values)
    if column_type is not None:
        return _pack_column(values, column_type)
    if not HAVE_NUMPY or _np is None or not values:
        return values
    first = type(values[0])
    if first is int:
        return _pack_column(values, ColumnType.INT)
    if first is float:
        return _pack_column(values, ColumnType.FLOAT)
    if first is str:
        return _pack_column(values, ColumnType.STR)
    if first is bool:
        return _pack_column(values, ColumnType.BOOL)
    return values
