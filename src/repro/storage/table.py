"""Heap tables: in-memory relations with a deterministic row order.

Row order matters in this package: the paper's worst-case arguments hinge on
*where* in the scan order an "offending" tuple appears, so tables preserve
insertion order exactly and provide explicit reordering helpers
(:meth:`Table.reordered`, :meth:`Table.shuffled`).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.storage.schema import Schema

Row = Tuple[object, ...]


class Table:
    """An in-memory relation: a schema plus an ordered list of rows.

    Tables are append-only after construction; analyses that need a different
    scan order build a new table via :meth:`reordered` or :meth:`shuffled`
    (cheap: rows are shared, only the order list is new).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Sequence[object]]] = None,
        validate: bool = True,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: List[Row] = []
        if rows is not None:
            self.insert_many(rows, validate=validate)

    # -- mutation -------------------------------------------------------------

    def insert(self, row: Sequence[object], validate: bool = True) -> None:
        """Append one row (validated against the schema by default)."""
        if validate:
            self.schema.validate_row(row)
        self._rows.append(tuple(row))

    def insert_many(self, rows: Iterable[Sequence[object]], validate: bool = True) -> None:
        """Append many rows; validation can be disabled for bulk loads."""
        for row in rows:
            self.insert(row, validate=validate)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, position: int) -> Row:
        return self._rows[position]

    @property
    def rows(self) -> Sequence[Row]:
        """The rows, in scan order.  Do not mutate."""
        return self._rows

    def cardinality(self) -> int:
        return len(self._rows)

    def column_values(self, name: str) -> List[object]:
        """All values of one column, in scan order."""
        position = self.schema.index_of(name)
        return [row[position] for row in self._rows]

    # -- reordering -----------------------------------------------------------

    def reordered(
        self,
        key: Callable[[Row], object],
        reverse: bool = False,
        name: Optional[str] = None,
    ) -> "Table":
        """A new table with the same rows sorted by ``key``."""
        ordered = sorted(self._rows, key=key, reverse=reverse)
        return self._with_rows(ordered, name)

    def shuffled(self, seed: int, name: Optional[str] = None) -> "Table":
        """A new table with the same rows in a seeded random order."""
        rows = list(self._rows)
        random.Random(seed).shuffle(rows)
        return self._with_rows(rows, name)

    def with_row_moved(self, source: int, destination: int, name: Optional[str] = None) -> "Table":
        """A new table with the row at ``source`` moved to ``destination``.

        This is the primitive used to build the paper's adversarial orders
        ("the offending tuple appears after 90% of the relation").
        """
        rows = list(self._rows)
        row = rows.pop(source)
        rows.insert(destination, row)
        return self._with_rows(rows, name)

    def _with_rows(self, rows: List[Row], name: Optional[str]) -> "Table":
        clone = Table(name or self.name, self.schema)
        clone._rows = rows
        return clone

    def __repr__(self) -> str:
        return "Table(%s, %d rows)" % (self.name, len(self._rows))
