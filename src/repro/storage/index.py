"""Secondary indexes over heap tables.

Two access structures are provided:

* :class:`HashIndex` — equality lookups only; backs ``⋈INL`` on equality
  predicates and hash-based duplicate detection.
* :class:`SortedIndex` — a sorted-array index (a stand-in for a B-tree) that
  supports equality and range lookups and ordered full scans; backs
  ``index-seek`` leaves and sorted access paths.

Both return *rows of the base table* in a deterministic order (heap position
order for hash indexes, key order then heap position for sorted indexes), so
experiments are reproducible run to run.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.storage.table import Row, Table


class HashIndex:
    """Equality index mapping a key column's value to base-table positions."""

    def __init__(self, name: str, table: Table, column: str) -> None:
        self.name = name
        self.table = table
        self.column = column
        self._position = table.schema.index_of(column)
        self._buckets: Dict[object, List[int]] = {}
        # Rows bucketed alongside the positions: lookup() is the ⋈INL inner
        # loop, and copying a prebuilt row list beats re-indexing the heap
        # on every probe.
        self._row_buckets: Dict[object, List[Row]] = {}
        for i, row in enumerate(table.rows):
            key = row[self._position]
            self._buckets.setdefault(key, []).append(i)
            self._row_buckets.setdefault(key, []).append(row)

    def lookup(self, key: object) -> List[Row]:
        """All base rows whose key column equals ``key`` (heap order)."""
        rows = self._row_buckets.get(key)
        return list(rows) if rows is not None else []

    def lookup_positions(self, key: object) -> List[int]:
        return list(self._buckets.get(key, []))

    def count(self, key: object) -> int:
        """Number of matches without materializing them."""
        return len(self._buckets.get(key, []))

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return "HashIndex(%s on %s.%s)" % (self.name, self.table.name, self.column)


class SortedIndex:
    """Sorted-array index supporting equality, range and ordered scans.

    Keys must be mutually comparable (the engine's type system guarantees
    this per column).  ``None`` keys are excluded from the index, matching
    the usual SQL semantics where NULL never matches a seek predicate.
    """

    def __init__(self, name: str, table: Table, column: str) -> None:
        self.name = name
        self.table = table
        self.column = column
        self._position = table.schema.index_of(column)
        entries = [
            (row[self._position], i)
            for i, row in enumerate(table.rows)
            if row[self._position] is not None
        ]
        entries.sort()
        self._keys: List[object] = [key for key, _ in entries]
        self._positions: List[int] = [pos for _, pos in entries]

    def __len__(self) -> int:
        return len(self._keys)

    def lookup(self, key: object) -> List[Row]:
        """All base rows with key exactly ``key``, in key/heap order."""
        if key is None:
            return []  # NULL never matches an index seek
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return [self.table[self._positions[i]] for i in range(lo, hi)]

    def count(self, key: object) -> int:
        if key is None:
            return 0
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return hi - lo

    def range_scan(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Row]:
        """Yield rows with key in the given range, in key order."""
        lo, hi = self._range_bounds(low, high, low_inclusive, high_inclusive)
        for i in range(lo, hi):
            yield self.table[self._positions[i]]

    def range_count(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Exact number of rows in a key range (no materialization)."""
        lo, hi = self._range_bounds(low, high, low_inclusive, high_inclusive)
        return max(0, hi - lo)

    def full_scan(self) -> Iterator[Row]:
        """Yield every indexed row in key order."""
        for position in self._positions:
            yield self.table[position]

    def min_key(self) -> object:
        if not self._keys:
            raise CatalogError("index %s is empty" % (self.name,))
        return self._keys[0]

    def max_key(self) -> object:
        if not self._keys:
            raise CatalogError("index %s is empty" % (self.name,))
        return self._keys[-1]

    def _range_bounds(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Tuple[int, int]:
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return lo, hi

    def __repr__(self) -> str:
        return "SortedIndex(%s on %s.%s)" % (self.name, self.table.name, self.column)
