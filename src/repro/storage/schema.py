"""Schemas: named, typed columns and row shape validation.

A :class:`Schema` is an ordered list of :class:`Column` objects.  Rows are
plain Python tuples whose positions line up with the schema's columns; the
schema is the single source of truth for resolving a column name to a tuple
position.

Column names may be qualified (``"lineitem.l_quantity"``) or bare
(``"l_quantity"``).  Lookups accept either form: a bare lookup matches any
column whose unqualified name matches, provided the match is unambiguous.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The small set of scalar types the engine understands."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"  # stored as ISO-8601 strings; compares lexicographically
    BOOL = "bool"

    @property
    def python_types(self) -> Tuple[type, ...]:
        """Python types acceptable for a value of this column type."""
        return {
            ColumnType.INT: (int,),
            ColumnType.FLOAT: (int, float),
            ColumnType.STR: (str,),
            ColumnType.DATE: (str,),
            ColumnType.BOOL: (bool,),
        }[self]


@dataclass(frozen=True)
class Column:
    """A single named, typed column.

    ``name`` must be unqualified; the qualifier lives on the schema side so
    the same column description can be reused under different table aliases.
    """

    name: str
    type: ColumnType = ColumnType.INT
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(
                "column name must be non-empty and unqualified, got %r" % (self.name,)
            )

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` is a legal value for this column."""
        if value is None:
            return self.nullable
        if self.type is ColumnType.BOOL:
            return isinstance(value, bool)
        if isinstance(value, bool):
            # bool is a subclass of int; do not let it masquerade as INT.
            return False
        return isinstance(value, self.type.python_types)


class Schema:
    """An ordered collection of columns, optionally qualified by a name.

    The schema supports positional access, name resolution (qualified or
    bare), concatenation (for joins), projection and renaming (for aliases).
    """

    def __init__(
        self,
        columns: Sequence[Column],
        qualifiers: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        if qualifiers is None:
            qualifiers = [None] * len(columns)
        if len(qualifiers) != len(columns):
            raise SchemaError("qualifiers must align with columns")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._qualifiers: Tuple[Optional[str], ...] = tuple(qualifiers)
        seen = set()
        for qualifier, column in zip(self._qualifiers, self._columns):
            key = (qualifier, column.name)
            if key in seen:
                raise SchemaError("duplicate column %s" % (format_name(qualifier, column.name),))
            seen.add(key)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, qualifier: Optional[str], columns: Sequence[Column]) -> "Schema":
        """Build a schema whose columns all share one qualifier."""
        return cls(columns, [qualifier] * len(columns))

    def qualified(self, qualifier: str) -> "Schema":
        """Return a copy of this schema with every column re-qualified."""
        return Schema(self._columns, [qualifier] * len(self._columns))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (the shape of a join output row)."""
        return Schema(
            self._columns + other._columns,
            self._qualifiers + other._qualifiers,
        )

    def project(self, positions: Sequence[int]) -> "Schema":
        """Return the schema obtained by keeping only ``positions``."""
        return Schema(
            [self._columns[i] for i in positions],
            [self._qualifiers[i] for i in positions],
        )

    # -- lookups --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._columns == other._columns and self._qualifiers == other._qualifiers
        )

    def __hash__(self) -> int:
        return hash((self._columns, self._qualifiers))

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def qualifiers(self) -> Tuple[Optional[str], ...]:
        return self._qualifiers

    def column_at(self, position: int) -> Column:
        return self._columns[position]

    def qualified_names(self) -> Tuple[str, ...]:
        """Fully rendered names, e.g. ``('r1.a', 'b')``."""
        return tuple(
            format_name(qualifier, column.name)
            for qualifier, column in zip(self._qualifiers, self._columns)
        )

    def index_of(self, name: str) -> int:
        """Resolve ``name`` (qualified or bare) to a tuple position.

        Raises :class:`SchemaError` if the name is missing or ambiguous.
        """
        qualifier, bare = split_name(name)
        matches = [
            i
            for i, (q, column) in enumerate(zip(self._qualifiers, self._columns))
            if column.name == bare and (qualifier is None or qualifier == q)
        ]
        if not matches:
            raise SchemaError(
                "no column %r in schema %s" % (name, list(self.qualified_names()))
            )
        if len(matches) > 1:
            raise SchemaError(
                "ambiguous column %r in schema %s" % (name, list(self.qualified_names()))
            )
        return matches[0]

    def has_column(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    # -- validation -----------------------------------------------------------

    def validate_row(self, row: Sequence[object]) -> None:
        """Raise :class:`SchemaError` unless ``row`` matches this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                "row arity %d does not match schema arity %d"
                % (len(row), len(self._columns))
            )
        for value, column in zip(row, self._columns):
            if not column.accepts(value):
                raise SchemaError(
                    "value %r is not valid for column %s of type %s"
                    % (value, column.name, column.type.value)
                )

    def __repr__(self) -> str:
        return "Schema(%s)" % (", ".join(self.qualified_names()),)


def split_name(name: str) -> Tuple[Optional[str], str]:
    """Split ``"t.a"`` into ``("t", "a")`` and ``"a"`` into ``(None, "a")``."""
    if "." in name:
        qualifier, _, bare = name.partition(".")
        if not qualifier or not bare:
            raise SchemaError("malformed column name %r" % (name,))
        return qualifier, bare
    return None, name


def format_name(qualifier: Optional[str], bare: str) -> str:
    """Render a possibly-qualified column name."""
    if qualifier is None:
        return bare
    return "%s.%s" % (qualifier, bare)


def columns(*specs: str) -> Tuple[Column, ...]:
    """Shorthand column factory.

    Each spec is ``"name:type"`` (type defaults to int), e.g.::

        columns("a:int", "b:str", "c:float")
    """
    built = []
    for spec in specs:
        name, _, type_name = spec.partition(":")
        column_type = ColumnType(type_name) if type_name else ColumnType.INT
        built.append(Column(name, column_type))
    return tuple(built)


def schema_of(qualifier: Optional[str], *specs: str) -> Schema:
    """Shorthand schema factory: ``schema_of("r1", "a:int", "b:str")``."""
    return Schema.of(qualifier, columns(*specs))
