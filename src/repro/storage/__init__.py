"""Storage substrate: schemas, heap tables, indexes and the catalog."""

from repro.storage.catalog import Catalog
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.schema import (
    Column,
    ColumnType,
    Schema,
    columns,
    format_name,
    schema_of,
    split_name,
)
from repro.storage.table import Row, Table

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "HashIndex",
    "Row",
    "Schema",
    "SortedIndex",
    "Table",
    "columns",
    "format_name",
    "schema_of",
    "split_name",
]
