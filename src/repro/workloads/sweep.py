"""Randomized workload sweeps: skew × predictive order × plan shape.

The robust-combination evaluation (and any other "hundreds of queries"
experiment) needs a reproducible stream of heterogeneous cases rather than
the handful of hand-picked instances the targeted tests use.  This module
generates one: a seeded mix of zipfian self-joins — every skew parameter,
predictive order and physical shape the adversarial workload supports —
and mini TPC-H queries at jittered scales.

Catalog generation dominates sweep cost, so cases are *descriptions*:
:meth:`SweepCase.build` materializes the catalog on first use and caches
it, while :meth:`SweepCase.plan` always returns a **fresh** plan (plans
hold runtime counters; a reused plan object would leak state between the
cold and warm runs of a feedback experiment).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.plan import Plan
from repro.storage.catalog import Catalog
from repro.workloads.adversarial import ORDERS, ZipfianJoinWorkload, make_zipfian_join
from repro.workloads.tpch import QUERIES, build_query, generate_tpch

#: physical shapes of the zipfian join, in the adversarial workload's terms
ZIPF_SHAPES = ("inl", "hash", "merge")

#: TPC-H queries cheap enough for sweep duty (sub-second at scale ~0.002)
TPCH_SWEEP_QUERIES = (1, 3, 4, 5, 6, 10, 12, 14, 19)


@dataclass
class SweepCase:
    """One sweep query: a lazily-built catalog plus a fresh-plan factory."""

    name: str
    family: str  # "zipf" or "tpch"
    params: Dict[str, object]
    _build: Callable[[], Tuple[Catalog, Callable[[], Plan]]] = field(repr=False)
    _built: Optional[Tuple[Catalog, Callable[[], Plan]]] = field(
        default=None, repr=False
    )

    def build(self) -> Tuple[Catalog, Callable[[], Plan]]:
        if self._built is None:
            self._built = self._build()
        return self._built

    @property
    def catalog(self) -> Catalog:
        return self.build()[0]

    def plan(self) -> Plan:
        """A fresh plan over the (cached) catalog — safe to run repeatedly."""
        return self.build()[1]()


def _zipf_case(index: int, rng: random.Random) -> SweepCase:
    n = int(2000 * rng.uniform(0.5, 2.0))
    z = round(rng.uniform(1.0, 3.0), 2)
    order = ORDERS[rng.randrange(len(ORDERS))]
    shape = ZIPF_SHAPES[rng.randrange(len(ZIPF_SHAPES))]
    distinct_fraction = rng.choice((1.0, 0.5))
    seed = rng.randrange(1 << 30)
    params: Dict[str, object] = {
        "n": n, "z": z, "order": order, "shape": shape,
        "distinct_fraction": distinct_fraction, "seed": seed,
    }

    def build() -> Tuple[Catalog, Callable[[], Plan]]:
        workload: ZipfianJoinWorkload = make_zipfian_join(
            n, z, order, seed=seed, distinct_fraction=distinct_fraction
        )
        maker = {
            "inl": workload.inl_plan,
            "hash": workload.hash_plan,
            "merge": workload.merge_plan,
        }[shape]
        return workload.catalog, lambda: maker()

    return SweepCase(
        name="zipf%03d-%s-%s-z%.2f" % (index, shape, order, z),
        family="zipf",
        params=params,
        _build=build,
    )


def _tpch_case(index: int, rng: random.Random) -> SweepCase:
    number = TPCH_SWEEP_QUERIES[rng.randrange(len(TPCH_SWEEP_QUERIES))]
    scale = round(0.002 * rng.uniform(0.6, 1.5), 5)
    skew = round(rng.uniform(1.2, 2.6), 2)
    seed = rng.randrange(1 << 30)
    params: Dict[str, object] = {
        "query": number, "scale": scale, "skew": skew, "seed": seed,
    }

    def build() -> Tuple[Catalog, Callable[[], Plan]]:
        db = generate_tpch(scale=scale, skew=skew, seed=seed)
        return db.catalog, lambda: build_query(db, number)

    return SweepCase(
        name="tpch%03d-q%d-sf%g" % (index, number, scale),
        family="tpch",
        params=params,
        _build=build,
    )


def generate_sweep(
    count: int,
    seed: int = 0,
    tpch_fraction: float = 0.25,
) -> List[SweepCase]:
    """``count`` seeded cases: ~``tpch_fraction`` TPC-H, the rest zipf joins.

    Deterministic in ``(count, seed, tpch_fraction)``; a prefix of a longer
    sweep with the same seed is NOT guaranteed to match a shorter one (the
    stream is consumed per case, not per family).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0 <= tpch_fraction <= 1:
        raise ValueError("tpch_fraction must be in [0, 1]")
    rng = random.Random(seed)
    cases: List[SweepCase] = []
    for index in range(count):
        if rng.random() < tpch_fraction and QUERIES:
            cases.append(_tpch_case(index, rng))
        else:
            cases.append(_zipf_case(index, rng))
    return cases


__all__ = [
    "SweepCase",
    "TPCH_SWEEP_QUERIES",
    "ZIPF_SHAPES",
    "generate_sweep",
]
