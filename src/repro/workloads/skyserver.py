"""A synthetic SkyServer-like astronomical workload (Table 3's data set).

The paper's second μ study uses the personal edition of the SDSS SkyServer
database [4] with its suite of 35 sample queries, reporting μ for the seven
long-running ones (queries 3, 6, 14, 18, 22, 28, 32).  The real database is
not redistributable, so this module generates a synthetic sky catalog with
the same *structural* properties the μ measurement depends on: one very
large photometric table scanned by every long query, a much smaller
spectroscopic table, and a pair table for neighborhood self-joins, with
query shapes mirroring the SDSS samples (color-cut scans, photo-spectro
joins, neighbor searches).  μ stays small because these queries scan a lot
and emit little — exactly the paper's point about ad-hoc decision support.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.engine.expressions import And, Between, InList, col, lit
from repro.engine.operators.aggregate import (
    HashAggregate,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count_star,
)
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.misc import Distinct, Limit
from repro.engine.operators.project import Project
from repro.engine.operators.scan import TableScan
from repro.engine.operators.sort import Sort, SortKey
from repro.engine.operators.topn import TopN
from repro.engine.plan import Plan
from repro.stats.manager import StatisticsManager
from repro.storage.catalog import Catalog
from repro.storage.schema import schema_of
from repro.storage.table import Table

#: SDSS object types: star / galaxy / sky / unknown
OBJ_TYPES = (3, 6, 8, 0)
SPEC_CLASSES = ("STAR", "GALAXY", "QSO")


@dataclass
class SkyServerDatabase:
    """The synthetic sky catalog."""

    catalog: Catalog
    scale: int
    seed: int

    def table(self, name: str) -> Table:
        return self.catalog.table(name)


def generate_skyserver(scale: int = 6000, seed: int = 11) -> SkyServerDatabase:
    """Generate photoobj (``scale`` rows), specobj (~10%), neighbors (~50%)."""
    rng = random.Random(seed)
    catalog = Catalog("skyserver(scale=%d)" % (scale,))

    photo_rows: List[tuple] = []
    for objid in range(1, scale + 1):
        ra = rng.uniform(0.0, 360.0)
        dec = rng.uniform(-90.0, 90.0)
        base = rng.uniform(14.0, 24.0)
        # Correlated magnitudes with per-band scatter (realistic color cuts).
        u, g, r, i, z = (round(base + rng.gauss(0, 0.8), 3) for _ in range(5))
        photo_rows.append(
            (
                objid,
                round(ra, 5),
                round(dec, 5),
                rng.choice(OBJ_TYPES),
                u, g, r, i, z,
                rng.randrange(0, 4),  # status
                rng.randrange(0, 1 << 8),  # flags
            )
        )
    photoobj = Table(
        "photoobj",
        schema_of(
            "photoobj",
            "objid:int", "ra:float", "dec:float", "type:int",
            "u:float", "g:float", "r:float", "i:float", "z:float",
            "status:int", "flags:int",
        ),
        photo_rows,
        validate=False,
    )

    spec_rows: List[tuple] = []
    spec_count = max(1, scale // 10)
    spec_targets = rng.sample(range(1, scale + 1), spec_count)
    for specid, objid in enumerate(sorted(spec_targets), start=1):
        spec_rows.append(
            (
                specid,
                objid,
                rng.choice(SPEC_CLASSES),
                round(abs(rng.gauss(0.1, 0.2)), 4),  # redshift
                rng.randrange(266, 3000),  # plate
            )
        )
    specobj = Table(
        "specobj",
        schema_of(
            "specobj",
            "specobjid:int", "bestobjid:int", "class:str",
            "redshift:float", "plate:int",
        ),
        spec_rows,
        validate=False,
    )

    neighbor_rows: List[tuple] = []
    for _ in range(scale // 2):
        a = rng.randrange(1, scale + 1)
        b = rng.randrange(1, scale + 1)
        if a != b:
            neighbor_rows.append((a, b, round(rng.uniform(0.0, 0.5), 4)))
    neighbors = Table(
        "neighbors",
        schema_of("neighbors", "objid:int", "neighborobjid:int", "distance:float"),
        neighbor_rows,
        validate=False,
    )

    for table in (photoobj, specobj, neighbors):
        catalog.add_table(table)
    catalog.create_hash_index("photoobj", "objid")
    catalog.create_hash_index("specobj", "bestobjid")
    catalog.create_hash_index("neighbors", "objid")
    StatisticsManager(catalog).analyze_all()
    return SkyServerDatabase(catalog, scale, seed)


# -- the seven long-running query shapes of Table 3 -----------------------------


def _photo(db: SkyServerDatabase) -> TableScan:
    return TableScan(db.table("photoobj"))


def sx3(db: SkyServerDatabase) -> Plan:
    """SX3: color-cut galaxy search — one selective scan + tiny output."""
    filtered = Filter(
        _photo(db),
        And(
            col("type") == lit(6),
            col("u") - col("g") < lit(0.4),
            col("g") - col("r") < lit(0.7),
        ),
    )
    projected = Project(
        filtered, [("objid", col("objid")), ("ra", col("ra")), ("dec", col("dec"))]
    )
    return Plan(projected, "sky-q3")


def sx6(db: SkyServerDatabase) -> Plan:
    """SX6: photo-spectro join for one spectral class."""
    spec = Filter(TableScan(db.table("specobj")), col("class") == lit("GALAXY"))
    join = HashJoin(
        spec, _photo(db), col("bestobjid"), col("objid"), linear=True
    )
    aggregated = HashAggregate(
        join,
        [("type", col("type"))],
        [count_star("n"), agg_avg(col("redshift"), "avg_z")],
    )
    return Plan(Sort(aggregated, [SortKey(col("type"))]), "sky-q6")


def sx14(db: SkyServerDatabase) -> Plan:
    """SX14: magnitude histogram over the full photometric table."""
    bucketed = Project(
        _photo(db),
        [("rbin", (col("r") - (col("r") % lit(1.0)))), ("g", col("g"))],
    )
    aggregated = HashAggregate(
        bucketed,
        [("rbin", col("rbin"))],
        [count_star("n"), agg_avg(col("g"), "avg_g")],
    )
    return Plan(Sort(aggregated, [SortKey(col("rbin"))]), "sky-q14")


def sx18(db: SkyServerDatabase) -> Plan:
    """SX18: neighbor self-join — pairs of close objects of given types."""
    near = Filter(
        TableScan(db.table("neighbors")), col("distance") < lit(0.05)
    )
    join = HashJoin(near, _photo(db), col("objid"), col("objid"), linear=True)
    filtered = Filter(join, col("type") == lit(3))
    deduped = Distinct(Project(filtered, [("objid", col("neighborobjid"))]))
    return Plan(deduped, "sky-q18")


def sx22(db: SkyServerDatabase) -> Plan:
    """SX22: joint photo+spec statistics per plate."""
    join = HashJoin(
        TableScan(db.table("specobj")), _photo(db),
        col("bestobjid"), col("objid"), linear=True,
    )
    bright = Filter(join, col("r") < lit(21.0))
    aggregated = HashAggregate(
        bright,
        [("plate", col("plate"))],
        [count_star("n"), agg_min(col("redshift"), "min_z"),
         agg_max(col("redshift"), "max_z")],
    )
    return Plan(
        TopN(aggregated, [SortKey(col("n"), descending=True)], 50), "sky-q22"
    )


def sx28(db: SkyServerDatabase) -> Plan:
    """SX28: sky-region scan with flag mask and scalar aggregation."""
    filtered = Filter(
        _photo(db),
        And(
            Between(col("ra"), lit(120.0), lit(240.0)),
            Between(col("dec"), lit(-10.0), lit(50.0)),
            InList(col("status"), [1, 2]),
        ),
    )
    aggregated = HashAggregate(
        filtered,
        [],
        [count_star("n"), agg_sum(col("r"), "sum_r"), agg_avg(col("i"), "avg_i")],
    )
    return Plan(aggregated, "sky-q28")


def sx32(db: SkyServerDatabase) -> Plan:
    """SX32: per-type color statistics over everything (scan + wide γ)."""
    aggregated = HashAggregate(
        _photo(db),
        [("type", col("type"))],
        [
            count_star("n"),
            agg_avg(col("u") - col("g"), "avg_ug"),
            agg_avg(col("g") - col("r"), "avg_gr"),
            agg_avg(col("r") - col("i"), "avg_ri"),
            agg_avg(col("i") - col("z"), "avg_iz"),
        ],
    )
    return Plan(Sort(aggregated, [SortKey(col("type"))]), "sky-q32")


#: Table 3's seven long-running queries, keyed by their SDSS sample number.
SKYSERVER_QUERIES: Dict[int, Callable[[SkyServerDatabase], Plan]] = {
    3: sx3, 6: sx6, 14: sx14, 18: sx18, 22: sx22, 28: sx28, 32: sx32,
}


def build_skyserver_query(db: SkyServerDatabase, number: int) -> Plan:
    return SKYSERVER_QUERIES[number](db)
