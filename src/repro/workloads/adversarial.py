"""The paper's synthetic join instances (Examples 1-3, Figures 4, 5, 7).

Three families:

* :func:`make_zipfian_join` — the §5.2/§5.3 experiment: ``R1(A)`` with
  unique values joined (⋈INL through an index, or ⋈hash) against ``R2(B)``
  whose join column is zipf-distributed.  The *order* of ``R1`` is the
  experiment's knob: ``skew_first`` puts the high-fan-out tuples at the
  start (Figure 4: dne under-estimates), ``skew_last`` at the end (Figure 5:
  dne over-estimates), ``random`` shuffles.
* :func:`make_example2` — Example 2 verbatim: one tuple passes the
  selection and joins 10,000-fold; μ stays small, so pmax is tight while
  dne can be wildly off.
* :func:`make_twin_instances` — the Theorem 1 construction: two instances
  differing in a single tuple (x ↔ y inside one histogram bucket) that no
  lossy single-relation statistic can tell apart, while ``total(Q)``
  differs by an arbitrary factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.expressions import col, lit
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.scan import TableScan
from repro.engine.operators.sort import Sort, SortKey
from repro.engine.plan import Plan
from repro.errors import ReproError
from repro.stats.base import statistics_equal
from repro.stats.histogram import EquiDepthHistogramGenerator
from repro.stats.manager import StatisticsManager
from repro.storage.catalog import Catalog
from repro.storage.schema import schema_of
from repro.storage.table import Table
from repro.workloads.zipf import zipf_frequencies

ORDERS = ("skew_first", "skew_last", "random")


@dataclass
class ZipfianJoinWorkload:
    """The R1 ⋈ R2 setup shared by Figures 4, 5, 7 and Table 1."""

    catalog: Catalog
    r1: Table
    r2: Table
    order: str
    z: float
    #: fan-out of each R1 value, by value (value v joins fanout[v] R2 rows)
    fanout: List[int]

    # -- plans ---------------------------------------------------------------------

    def inl_plan(
        self,
        skip_top_ranks: int = 0,
        name: Optional[str] = None,
        linear: bool = True,
    ) -> Plan:
        """scan(R1) [→ σ] → ⋈INL with the index on R2.B.

        ``skip_top_ranks > 0`` adds the Figure 7 filter that removes the
        high-skew tuples (values 1..k are the k highest fan-outs).
        ``linear=False`` drops the declared-linear hint, so the paper's
        bounds fall back to the general product rule — the adversarial
        setting the degree-sequence provider exists for.
        """
        outer = TableScan(self.r1)
        if skip_top_ranks > 0:
            outer = Filter(outer, col("r1.a") > lit(skip_top_ranks))
        index = self.catalog.hash_index("r2", "b")
        assert index is not None
        join = IndexNestedLoopsJoin(
            outer, index, col("r1.a"), linear=linear
        )
        return Plan(join, name or "zipf-inl-%s" % (self.order,))

    def hash_plan(
        self,
        skip_top_ranks: int = 0,
        name: Optional[str] = None,
        linear: bool = True,
    ) -> Plan:
        """⋈hash with R1 as the build side — the Table 1 scan-based variant."""
        build = TableScan(self.r1)
        if skip_top_ranks > 0:
            build = Filter(build, col("r1.a") > lit(skip_top_ranks))
        probe = TableScan(self.r2)
        join = HashJoin(build, probe, col("r1.a"), col("r2.b"), linear=linear)
        return Plan(join, name or "zipf-hash-%s" % (self.order,))

    def merge_plan(
        self, name: Optional[str] = None, linear: bool = True
    ) -> Plan:
        """sort-sort-⋈merge — the other scan-based plan of §5.4."""
        left = Sort(TableScan(self.r1), [SortKey(col("r1.a"))])
        right = Sort(TableScan(self.r2), [SortKey(col("r2.b"))])
        join = MergeJoin(left, right, col("r1.a"), col("r2.b"), linear=linear)
        return Plan(join, name or "zipf-merge-%s" % (self.order,))


def make_zipfian_join(
    n: int = 20000,
    z: float = 2.0,
    order: str = "skew_last",
    seed: int = 7,
    distinct_fraction: float = 1.0,
) -> ZipfianJoinWorkload:
    """Build the zipfian join instance at scale ``n`` rows per relation.

    ``R1.a`` holds each value 1..n exactly once; ``R2.b`` holds ``n`` values
    zipf(z)-distributed over ranks 1..⌈n·distinct_fraction⌉ (value = rank,
    so value 1 has the highest fan-out).  ``order`` fixes R1's storage order
    by fan-out; R2's order is rank-sorted (irrelevant: it is only accessed
    through the index or scanned whole).
    """
    if order not in ORDERS:
        raise ReproError("order must be one of %s" % (ORDERS,))
    distinct = max(1, int(n * distinct_fraction))
    frequencies = zipf_frequencies(n, distinct, z)

    fanout = [0] * (n + 1)
    r2_rows: List[Tuple[int]] = []
    for rank, frequency in enumerate(frequencies, start=1):
        fanout[rank] = frequency
        r2_rows.extend([(rank,)] * frequency)

    r1_values = list(range(1, n + 1))
    if order == "skew_first":
        r1_values.sort(key=lambda value: fanout[value], reverse=True)
    elif order == "skew_last":
        r1_values.sort(key=lambda value: fanout[value])
    else:
        import random as _random

        _random.Random(seed).shuffle(r1_values)

    catalog = Catalog()
    r1 = Table("r1", schema_of("r1", "a:int"), [(value,) for value in r1_values])
    r2 = Table("r2", schema_of("r2", "b:int"), r2_rows)
    catalog.add_table(r1)
    catalog.add_table(r2)
    catalog.create_hash_index("r2", "b")
    StatisticsManager(catalog).analyze_all()
    return ZipfianJoinWorkload(catalog, r1, r2, order, z, fanout)


@dataclass
class Example2Workload:
    """Example 2: selection keeps one tuple, which joins ``matches``-fold."""

    catalog: Catalog
    r1: Table
    r2: Table
    selected_value: int
    matches: int

    def inl_plan(self, name: str = "example2") -> Plan:
        index = self.catalog.hash_index("r2", "b")
        assert index is not None
        outer = Filter(TableScan(self.r1), col("r1.a") == lit(self.selected_value))
        join = IndexNestedLoopsJoin(outer, index, col("r1.a"), linear=True)
        return Plan(join, name)

    @property
    def expected_total(self) -> int:
        """|R1| + 1 + matches, as computed in the paper."""
        return len(self.r1) + 1 + self.matches


def make_example2(
    n: int = 100000, matches: int = 10000, selected_position: int = 0
) -> Example2Workload:
    """Example 2 at parameterizable scale (paper: n=100,000, matches=10,000)."""
    if not 0 <= selected_position < n:
        raise ReproError("selected_position out of range")
    selected_value = 1
    r1_values = [selected_value + 1 + i for i in range(n)]
    r1_values[selected_position] = selected_value
    catalog = Catalog()
    r1 = Table("r1", schema_of("r1", "a:int"), [(v,) for v in r1_values])
    r2 = Table(
        "r2",
        schema_of("r2", "b:int"),
        [(selected_value,)] * matches + [(-i - 1,) for i in range(n - matches)],
    )
    catalog.add_table(r1)
    catalog.add_table(r2)
    catalog.create_hash_index("r2", "b")
    StatisticsManager(catalog).analyze_all()
    return Example2Workload(catalog, r1, r2, selected_value, matches)


@dataclass
class TwinInstances:
    """The Theorem 1 pair: statistically indistinguishable, work apart."""

    catalog_x: Catalog  # instance R11 (tuple t has value x: joins nothing)
    catalog_y: Catalog  # instance R12 (tuple t has value y: joins all of R2)
    x: float
    y: float
    position: int  # index of t in R1's scan order
    r2_size: int

    def plan_x(self) -> Plan:
        return self._plan(self.catalog_x, "twin-x")

    def plan_y(self) -> Plan:
        return self._plan(self.catalog_y, "twin-y")

    @staticmethod
    def _plan(catalog: Catalog, name: str) -> Plan:
        index = catalog.hash_index("r2", "b")
        assert index is not None
        join = IndexNestedLoopsJoin(
            TableScan(catalog.table("r1")), index, col("r1.a"), linear=True
        )
        return Plan(join, name)


def make_twin_instances(
    n: int = 10000,
    f1: float = 0.1,
    f2: float = 0.9,
    buckets: int = 20,
) -> TwinInstances:
    """Construct the Theorem 1 instances.

    R1 holds values 1..n (scan order = value order) except that the tuple at
    fraction ``f2`` of the scan holds ``x`` (instance R11) or ``y`` (R12),
    where x and y sit strictly inside one histogram bucket so the equi-depth
    statistics of the two instances are identical.  R2 holds
    ``(f2/f1 - 1)·n`` rows, all with value ``y``.

    The resulting totals: total(plan_x) = n, total(plan_y) = n·f2/f1 —
    indistinguishable until the offending tuple is read.
    """
    if not 0 < f1 < f2 < 1:
        raise ReproError("need 0 < f1 < f2 < 1")
    position = int(n * f2)
    # x and y straddle an integer strictly inside the first histogram bucket
    # (depth/2 keeps them away from bucket boundaries), so the sorted
    # multiset changes in exactly one interior slot and bucket boundaries,
    # counts and distinct counts all stay identical.
    depth = max(3, -(-n // buckets))
    anchor = depth // 2
    x = anchor + 0.25
    y = anchor + 0.75
    values: List[float] = [float(v) for v in range(1, n + 1)]
    values_x = list(values)
    values_y = list(values)
    values_x[position] = x
    values_y[position] = y

    generator = EquiDepthHistogramGenerator(buckets)
    stat_x = generator.build(values_x)
    stat_y = generator.build(values_y)
    probes = [float(v) for v in range(0, n + 2, max(1, n // 50))] + [x, y]
    if not statistics_equal(stat_x, stat_y, probes):
        raise ReproError(
            "twin construction failed: histograms distinguish x from y"
        )

    r2_size = int((f2 / f1 - 1.0) * n)

    def build_catalog(r1_values: List[float]) -> Catalog:
        catalog = Catalog()
        r1 = Table("r1", schema_of("r1", "a:float"), [(v,) for v in r1_values])
        r2 = Table("r2", schema_of("r2", "b:float"), [(y,)] * r2_size)
        catalog.add_table(r1)
        catalog.add_table(r2)
        catalog.create_hash_index("r2", "b")
        manager = StatisticsManager(catalog, generator)
        manager.analyze_all()
        return catalog

    return TwinInstances(
        build_catalog(values_x), build_catalog(values_y), x, y, position, r2_size
    )
