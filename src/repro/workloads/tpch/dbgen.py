"""A miniature skewed TPC-H data generator.

Stands in for the 1 GB database the paper built with the Microsoft Research
skewed-dbgen tool [18]: cardinalities follow TPC-H SF-1 scaled by ``scale``,
and a zipf parameter ``skew`` (the paper uses z=2) skews the foreign-key
choices and several value columns.  Everything is seeded and deterministic.

The skew matters twice in the paper: it makes optimizer cardinality
estimates badly wrong (§7), and it creates high-variance per-tuple work for
index-lookup joins (§5).
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.stats.manager import StatisticsManager
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.workloads.tpch.schema import (
    BRANDS,
    CONTAINERS,
    MKT_SEGMENTS,
    NATIONS,
    ORDER_PRIORITIES,
    REGIONS,
    RETURN_FLAGS,
    SF1_CARDINALITIES,
    SHIP_MODES,
    TYPES,
    tpch_schemas,
)
from repro.workloads.zipf import ZipfSampler

_BASE_DATE = datetime.date(1992, 1, 1)
_DATE_SPAN_DAYS = (datetime.date(1998, 12, 31) - _BASE_DATE).days


def _date(day: int) -> str:
    return (_BASE_DATE + datetime.timedelta(days=day)).isoformat()


@dataclass
class TpchDatabase:
    """The generated catalog plus generation parameters."""

    catalog: Catalog
    scale: float
    skew: float
    seed: int

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def cardinalities(self) -> Dict[str, int]:
        return {name: len(self.catalog.table(name)) for name in SF1_CARDINALITIES}


def generate_tpch(
    scale: float = 0.001,
    skew: float = 2.0,
    seed: int = 42,
    build_statistics: bool = True,
    build_indexes: bool = True,
) -> TpchDatabase:
    """Generate the eight TPC-H tables at ``scale`` with zipf ``skew``.

    ``scale=0.001`` yields ~150 customers / 1500 orders / ~6000 lineitems —
    enough structure for every benchmark query while keeping runs fast.
    """
    rng = random.Random(seed)
    schemas = tpch_schemas()
    counts = {
        name: max(minimum, int(round(sf1 * scale)))
        for (name, sf1), minimum in zip(
            SF1_CARDINALITIES.items(), (5, 25, 5, 20, 20, 40, 50, 150)
        )
    }
    catalog = Catalog(name="tpch(scale=%g,z=%g)" % (scale, skew))

    # -- region / nation --------------------------------------------------------
    region_rows = [(i, REGIONS[i]) for i in range(counts["region"])]
    nation_rows = [
        (i, NATIONS[i % len(NATIONS)], i % counts["region"])
        for i in range(counts["nation"])
    ]

    # -- supplier -----------------------------------------------------------------
    supplier_rows = []
    for i in range(counts["supplier"]):
        supplier_rows.append(
            (
                i + 1,
                "Supplier#%09d" % (i + 1,),
                rng.randrange(counts["nation"]),
                round(rng.uniform(-999.99, 9999.99), 2),
                "supplier comment %d" % (i,),
            )
        )

    # -- customer -----------------------------------------------------------------
    customer_rows = []
    for i in range(counts["customer"]):
        nation = rng.randrange(counts["nation"])
        customer_rows.append(
            (
                i + 1,
                "Customer#%09d" % (i + 1,),
                nation,
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(MKT_SEGMENTS),
                "%02d-%03d-%03d-%04d"
                % (10 + nation, rng.randrange(1000), rng.randrange(1000),
                   rng.randrange(10000)),
            )
        )

    # -- part ------------------------------------------------------------------------
    part_rows = []
    for i in range(counts["part"]):
        part_rows.append(
            (
                i + 1,
                "part name %d" % (i,),
                "Manufacturer#%d" % (i % 5 + 1,),
                rng.choice(BRANDS),
                rng.choice(TYPES),
                rng.randrange(1, 51),
                rng.choice(CONTAINERS),
                round(900.0 + (i % 1000) + i / 10.0, 2),
            )
        )

    # -- partsupp (each part supplied by up to 4 suppliers) ----------------------------
    partsupp_rows = []
    per_part = max(1, counts["partsupp"] // counts["part"])
    for part_key in range(1, counts["part"] + 1):
        for j in range(per_part):
            supp_key = (part_key + j * (counts["supplier"] // per_part + 1)) % counts[
                "supplier"
            ] + 1
            partsupp_rows.append(
                (
                    part_key,
                    supp_key,
                    rng.randrange(1, 10000),
                    round(rng.uniform(1.0, 1000.0), 2),
                )
            )

    # -- orders (customer FK is zipf-skewed) --------------------------------------------
    customer_sampler = ZipfSampler(counts["customer"], skew, seed=seed + 1)
    orders_rows = []
    order_dates: List[int] = []
    for i in range(counts["orders"]):
        day = rng.randrange(_DATE_SPAN_DAYS - 200)
        order_dates.append(day)
        orders_rows.append(
            (
                i + 1,
                customer_sampler.sample(),
                rng.choice("OFP"),
                0.0,  # patched below from the lineitems
                _date(day),
                rng.choice(ORDER_PRIORITIES),
                0,
            )
        )

    # -- lineitem (part/supplier FKs zipf-skewed; ~4 lines per order) --------------------
    part_sampler = ZipfSampler(counts["part"], skew, seed=seed + 2)
    supplier_sampler = ZipfSampler(counts["supplier"], skew, seed=seed + 3)
    lineitem_rows = []
    totals = [0.0] * counts["orders"]
    lines_left = counts["lineitem"]
    order_index = 0
    while lines_left > 0 and order_index < counts["orders"]:
        lines = min(lines_left, rng.randrange(1, 8))
        if order_index == counts["orders"] - 1:
            lines = lines_left
        order_day = order_dates[order_index]
        for line_number in range(1, lines + 1):
            quantity = float(rng.randrange(1, 51))
            price = round(quantity * rng.uniform(900.0, 1100.0), 2)
            discount = round(rng.randrange(0, 11) / 100.0, 2)
            tax = round(rng.randrange(0, 9) / 100.0, 2)
            ship_day = min(order_day + rng.randrange(1, 122), _DATE_SPAN_DAYS)
            commit_day = min(order_day + rng.randrange(30, 91), _DATE_SPAN_DAYS)
            receipt_day = min(ship_day + rng.randrange(1, 31), _DATE_SPAN_DAYS)
            lineitem_rows.append(
                (
                    order_index + 1,
                    part_sampler.sample(),
                    supplier_sampler.sample(),
                    line_number,
                    quantity,
                    price,
                    discount,
                    tax,
                    rng.choice(RETURN_FLAGS),
                    "O" if ship_day > _DATE_SPAN_DAYS - 900 else "F",
                    _date(ship_day),
                    _date(commit_day),
                    _date(receipt_day),
                    rng.choice(SHIP_MODES),
                )
            )
            totals[order_index] += price
        lines_left -= lines
        order_index += 1
    orders_rows = [
        row[:3] + (round(totals[i], 2),) + row[4:]
        for i, row in enumerate(orders_rows)
    ]

    data = {
        "region": region_rows,
        "nation": nation_rows,
        "supplier": supplier_rows,
        "customer": customer_rows,
        "part": part_rows,
        "partsupp": partsupp_rows,
        "orders": orders_rows,
        "lineitem": lineitem_rows,
    }
    for name, rows in data.items():
        catalog.add_table(Table(name, schemas[name], rows, validate=False))

    if build_indexes:
        catalog.create_hash_index("region", "r_regionkey")
        catalog.create_hash_index("nation", "n_nationkey")
        catalog.create_hash_index("supplier", "s_suppkey")
        catalog.create_hash_index("customer", "c_custkey")
        catalog.create_hash_index("part", "p_partkey")
        catalog.create_hash_index("orders", "o_orderkey")
        catalog.create_hash_index("partsupp", "ps_partkey")
        catalog.create_hash_index("lineitem", "l_orderkey")
        catalog.create_sorted_index("lineitem", "l_shipdate")
        catalog.create_sorted_index("orders", "o_orderdate")

    if build_statistics:
        StatisticsManager(catalog).analyze_all()
    return TpchDatabase(catalog, scale, skew, seed)
