"""Physical plans for the TPC-H benchmark queries (Q1-Q22).

These are *structural* reproductions: each plan touches the same tables,
applies the same class of predicates, and has the same operator skeleton
(filters → joins → aggregation → sort) as the official query, simplified
where the engine lacks a feature (correlated subqueries become join +
aggregate combinations, EXISTS becomes distinct-semijoins, string functions
become LIKE predicates).  What the paper measures about them — the μ value,
the pipeline structure, the bound behavior — depends exactly on this
skeleton, not on SQL minutiae.

Most plans are scan-based (hash joins; the common TPC-H case the paper
notes); Q12/Q15/Q18 include index-nested-loops joins so the suite also
exercises nested iteration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.expressions import (
    And,
    Between,
    Case,
    IsNull,
    Expression,
    InList,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.engine.operators.aggregate import (
    AggregateSpec,
    HashAggregate,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count,
    count_star,
)
from repro.engine.operators.base import Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.misc import Distinct, Limit
from repro.engine.operators.project import Project
from repro.engine.operators.scan import TableScan
from repro.engine.operators.sort import Sort, SortKey
from repro.engine.operators.topn import TopN
from repro.engine.plan import Plan
from repro.workloads.tpch.dbgen import TpchDatabase

QueryBuilder = Callable[[TpchDatabase], Plan]


# -- small plan-building vocabulary -------------------------------------------


def _scan(db: TpchDatabase, table: str, alias: Optional[str] = None) -> TableScan:
    return TableScan(db.table(table), alias)


def _hj(
    build: Operator,
    probe: Operator,
    build_key: str,
    probe_key: str,
    linear: bool = True,
) -> HashJoin:
    return HashJoin(build, probe, col(build_key), col(probe_key), linear=linear)


def _inl(
    db: TpchDatabase,
    outer: Operator,
    inner_table: str,
    inner_column: str,
    outer_key: str,
    linear: bool = True,
    alias: Optional[str] = None,
) -> IndexNestedLoopsJoin:
    index = db.catalog.hash_index(inner_table, inner_column)
    if index is None:
        raise ValueError("no index on %s.%s" % (inner_table, inner_column))
    return IndexNestedLoopsJoin(
        outer, index, col(outer_key), inner_alias=alias, linear=linear
    )


def _agg(
    child: Operator,
    by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> HashAggregate:
    # Qualified grouping columns keep their qualifier in the output name
    # (n1.n_name → n1_n_name) so twin aliases stay distinguishable.
    group = [(name.replace(".", "_") if "." in name else name, col(name))
             for name in by]
    return HashAggregate(child, group, list(aggregates))


def _sort(child: Operator, *keys: Tuple[str, bool]) -> Sort:
    return Sort(child, [SortKey(col(name), descending) for name, descending in keys])


def _topn(child: Operator, limit: int, *keys: Tuple[str, bool]) -> TopN:
    return TopN(
        child,
        [SortKey(col(name), descending) for name, descending in keys],
        limit,
    )


def _revenue() -> Expression:
    return col("l_extendedprice") * (lit(1.0) - col("l_discount"))


# -- the queries -----------------------------------------------------------------


def q1(db: TpchDatabase) -> Plan:
    """Pricing summary report: one big scan + filter + γ + tiny sort."""
    filtered = Filter(
        _scan(db, "lineitem"), col("l_shipdate") <= lit("1998-09-01")
    )
    aggregated = _agg(
        filtered,
        ["l_returnflag", "l_linestatus"],
        [
            agg_sum(col("l_quantity"), "sum_qty"),
            agg_sum(col("l_extendedprice"), "sum_base_price"),
            agg_sum(_revenue(), "sum_disc_price"),
            agg_sum(_revenue() * (lit(1.0) + col("l_tax")), "sum_charge"),
            agg_avg(col("l_quantity"), "avg_qty"),
            agg_avg(col("l_extendedprice"), "avg_price"),
            agg_avg(col("l_discount"), "avg_disc"),
            count_star("count_order"),
        ],
    )
    return Plan(
        _sort(aggregated, ("l_returnflag", False), ("l_linestatus", False)), "tpch-q1"
    )


def q2(db: TpchDatabase) -> Plan:
    """Minimum-cost supplier: part/partsupp/supplier/nation/region joins."""
    part = Filter(
        _scan(db, "part"),
        And(col("p_size") == lit(15), Like(col("p_type"), "%BRASS")),
    )
    join = _hj(part, _scan(db, "partsupp"), "p_partkey", "ps_partkey")
    join = _hj(_scan(db, "supplier"), join, "s_suppkey", "ps_suppkey")
    join = _hj(_scan(db, "nation"), join, "n_nationkey", "s_nationkey")
    region = Filter(_scan(db, "region"), col("r_name") == lit("EUROPE"))
    join = _hj(region, join, "r_regionkey", "n_regionkey")
    aggregated = _agg(
        join,
        ["p_partkey", "s_name", "n_name", "s_acctbal"],
        [agg_min(col("ps_supplycost"), "min_cost")],
    )
    top = _topn(aggregated, 100, ("s_acctbal", True), ("s_name", False))
    return Plan(top, "tpch-q2")


def q3(db: TpchDatabase) -> Plan:
    """Shipping priority: the classic 3-way join + γ + top-10."""
    customer = Filter(
        _scan(db, "customer"), col("c_mktsegment") == lit("BUILDING")
    )
    orders = Filter(_scan(db, "orders"), col("o_orderdate") < lit("1995-03-15"))
    join = _hj(customer, orders, "c_custkey", "o_custkey")
    lineitem = Filter(_scan(db, "lineitem"), col("l_shipdate") > lit("1995-03-15"))
    join = _hj(join, lineitem, "o_orderkey", "l_orderkey")
    aggregated = _agg(
        join,
        ["l_orderkey", "o_orderdate", "o_shippriority"],
        [agg_sum(_revenue(), "revenue")],
    )
    return Plan(_topn(aggregated, 10, ("revenue", True)), "tpch-q3")


def q4(db: TpchDatabase) -> Plan:
    """Order priority checking: EXISTS via index semijoin.

    Driven from the (selective) orders side with index lookups into
    lineitem — the plan shape behind the paper's tiny μ = 1.003: almost all
    work is the orders scan, the index probes are invisible to the GetNext
    model, and only the first matching late line per order is kept.
    """
    orders = Filter(
        _scan(db, "orders"),
        Between(col("o_orderdate"), lit("1993-07-01"), lit("1993-09-30")),
    )
    join = _inl(db, orders, "lineitem", "l_orderkey", "o_orderkey",
                linear=False)
    late = Filter(join, col("l_commitdate") < col("l_receiptdate"))
    semi = Distinct(
        Project(late, [("o_orderkey", col("o_orderkey")),
                       ("o_orderpriority", col("o_orderpriority"))])
    )
    aggregated = _agg(semi, ["o_orderpriority"], [count_star("order_count")])
    return Plan(_sort(aggregated, ("o_orderpriority", False)), "tpch-q4")


def q5(db: TpchDatabase) -> Plan:
    """Local supplier volume: 6-way join restricted to one region."""
    region = Filter(_scan(db, "region"), col("r_name") == lit("ASIA"))
    nation = _hj(region, _scan(db, "nation"), "r_regionkey", "n_regionkey")
    supplier = _hj(nation, _scan(db, "supplier"), "n_nationkey", "s_nationkey")
    lineitem = _hj(supplier, _scan(db, "lineitem"), "s_suppkey", "l_suppkey",
                   linear=False)
    orders = Filter(
        _scan(db, "orders"),
        Between(col("o_orderdate"), lit("1994-01-01"), lit("1994-12-31")),
    )
    join = _hj(orders, lineitem, "o_orderkey", "l_orderkey")
    join = _hj(_scan(db, "customer"), join, "c_custkey", "o_custkey")
    join = Filter(join, col("c_nationkey") == col("s_nationkey"))
    aggregated = _agg(join, ["n_name"], [agg_sum(_revenue(), "revenue")])
    return Plan(_sort(aggregated, ("revenue", True)), "tpch-q5")


def q6(db: TpchDatabase) -> Plan:
    """Forecasting revenue change: a single selective scan + scalar γ."""
    filtered = Filter(
        _scan(db, "lineitem"),
        And(
            Between(col("l_shipdate"), lit("1994-01-01"), lit("1994-12-31")),
            Between(col("l_discount"), lit(0.05), lit(0.07)),
            col("l_quantity") < lit(24.0),
        ),
    )
    aggregated = HashAggregate(
        filtered, [], [agg_sum(col("l_extendedprice") * col("l_discount"), "revenue")]
    )
    return Plan(aggregated, "tpch-q6")


def q7(db: TpchDatabase) -> Plan:
    """Volume shipping between two nations."""
    n1 = Filter(_scan(db, "nation", "n1"), InList(col("n1.n_name"),
                                                  ["FRANCE", "GERMANY"]))
    supplier = _hj(n1, _scan(db, "supplier"), "n1.n_nationkey", "s_nationkey")
    lineitem = Filter(
        _scan(db, "lineitem"),
        Between(col("l_shipdate"), lit("1995-01-01"), lit("1996-12-31")),
    )
    join = _hj(supplier, lineitem, "s_suppkey", "l_suppkey", linear=False)
    orders = _hj(_scan(db, "orders"), join, "o_orderkey", "l_orderkey")
    customer = _hj(_scan(db, "customer"), orders, "c_custkey", "o_custkey")
    n2 = Filter(_scan(db, "nation", "n2"), InList(col("n2.n_name"),
                                                  ["FRANCE", "GERMANY"]))
    join = _hj(n2, customer, "n2.n_nationkey", "c_nationkey")
    join = Filter(join, Not(col("n1.n_name") == col("n2.n_name")))
    aggregated = _agg(
        join, ["n1.n_name", "n2.n_name"], [agg_sum(_revenue(), "revenue")]
    )
    return Plan(_sort(aggregated, ("revenue", True)), "tpch-q7")


def q8(db: TpchDatabase) -> Plan:
    """National market share."""
    region = Filter(_scan(db, "region"), col("r_name") == lit("AMERICA"))
    nation = _hj(region, _scan(db, "nation", "n1"), "r_regionkey", "n1.n_regionkey")
    customer = _hj(nation, _scan(db, "customer"), "n1.n_nationkey", "c_nationkey")
    orders = Filter(
        _scan(db, "orders"),
        Between(col("o_orderdate"), lit("1995-01-01"), lit("1996-12-31")),
    )
    join = _hj(customer, orders, "c_custkey", "o_custkey")
    join = _hj(join, _scan(db, "lineitem"), "o_orderkey", "l_orderkey")
    part = Filter(_scan(db, "part"), Like(col("p_type"), "ECONOMY%"))
    join = _hj(part, join, "p_partkey", "l_partkey")
    supplier = _hj(_scan(db, "supplier"), join, "s_suppkey", "l_suppkey")
    n2 = _hj(_scan(db, "nation", "n2"), supplier, "n2.n_nationkey", "s_nationkey")
    aggregated = _agg(n2, ["n2.n_name"], [agg_sum(_revenue(), "volume")])
    return Plan(_sort(aggregated, ("volume", True)), "tpch-q8")


def q9(db: TpchDatabase) -> Plan:
    """Product-type profit measure."""
    part = Filter(_scan(db, "part"), Like(col("p_name"), "%1%"))
    join = _hj(part, _scan(db, "lineitem"), "p_partkey", "l_partkey")
    join = _hj(_scan(db, "supplier"), join, "s_suppkey", "l_suppkey")
    join = Filter(
        _hj(_scan(db, "partsupp"), join, "ps_partkey", "l_partkey", linear=False),
        col("ps_suppkey") == col("l_suppkey"),
    )
    join = _hj(_scan(db, "orders"), join, "o_orderkey", "l_orderkey")
    join = _hj(_scan(db, "nation"), join, "n_nationkey", "s_nationkey")
    profit = _revenue() - col("ps_supplycost") * col("l_quantity")
    aggregated = _agg(join, ["n_name"], [agg_sum(profit, "sum_profit")])
    return Plan(_sort(aggregated, ("n_name", False)), "tpch-q9")


def q10(db: TpchDatabase) -> Plan:
    """Returned-item reporting."""
    orders = Filter(
        _scan(db, "orders"),
        Between(col("o_orderdate"), lit("1993-10-01"), lit("1993-12-31")),
    )
    join = _hj(orders, Filter(_scan(db, "lineitem"),
                              col("l_returnflag") == lit("R")),
               "o_orderkey", "l_orderkey")
    join = _hj(_scan(db, "customer"), join, "c_custkey", "o_custkey")
    join = _hj(_scan(db, "nation"), join, "n_nationkey", "c_nationkey")
    aggregated = _agg(
        join,
        ["c_custkey", "c_name", "c_acctbal", "n_name", "c_phone"],
        [agg_sum(_revenue(), "revenue")],
    )
    return Plan(_topn(aggregated, 20, ("revenue", True)), "tpch-q10")


def q11(db: TpchDatabase) -> Plan:
    """Important stock identification."""
    nation = Filter(_scan(db, "nation"), col("n_name") == lit("GERMANY"))
    supplier = _hj(nation, _scan(db, "supplier"), "n_nationkey", "s_nationkey")
    join = _hj(supplier, _scan(db, "partsupp"), "s_suppkey", "ps_suppkey",
               linear=False)
    value = col("ps_supplycost") * col("ps_availqty")
    aggregated = _agg(join, ["ps_partkey"], [agg_sum(value, "value")])
    filtered = Filter(aggregated, col("value") > lit(100.0))
    return Plan(_sort(filtered, ("value", True)), "tpch-q11")


def q12(db: TpchDatabase) -> Plan:
    """Shipping modes and order priority — uses ⋈INL into orders."""
    lineitem = Filter(
        _scan(db, "lineitem"),
        And(
            InList(col("l_shipmode"), ["MAIL", "SHIP"]),
            col("l_commitdate") < col("l_receiptdate"),
            col("l_shipdate") < col("l_commitdate"),
            Between(col("l_receiptdate"), lit("1994-01-01"), lit("1994-12-31")),
        ),
    )
    join = _inl(db, lineitem, "orders", "o_orderkey", "l_orderkey")
    high = Case(
        [(InList(col("o_orderpriority"), ["1-URGENT", "2-HIGH"]), lit(1))], lit(0)
    )
    low = Case(
        [(InList(col("o_orderpriority"), ["1-URGENT", "2-HIGH"]), lit(0))], lit(1)
    )
    aggregated = _agg(
        join,
        ["l_shipmode"],
        [agg_sum(high, "high_line_count"), agg_sum(low, "low_line_count")],
    )
    return Plan(_sort(aggregated, ("l_shipmode", False)), "tpch-q12")


def q13(db: TpchDatabase) -> Plan:
    """Customer distribution — the benchmark's LEFT OUTER JOIN query.

    Customers with no orders must appear with count 0, so the per-customer
    census is outer-joined to customer (probe side preserved) and NULL
    counts are folded to zero before the final histogram.
    """
    per_customer = _agg(_scan(db, "orders"), ["o_custkey"], [count_star("c_count")])
    join = HashJoin(
        per_customer,
        _scan(db, "customer"),
        col("o_custkey"),
        col("c_custkey"),
        linear=True,
        preserve_probe=True,
    )
    folded = Project(
        join,
        [("c_count", Case([(IsNull(col("c_count")), lit(0))], col("c_count")))],
    )
    distribution = _agg(folded, ["c_count"], [count_star("custdist")])
    return Plan(_sort(distribution, ("custdist", True), ("c_count", True)),
                "tpch-q13")


def q14(db: TpchDatabase) -> Plan:
    """Promotion effect."""
    lineitem = Filter(
        _scan(db, "lineitem"),
        Between(col("l_shipdate"), lit("1995-09-01"), lit("1995-09-30")),
    )
    join = _hj(_scan(db, "part"), lineitem, "p_partkey", "l_partkey")
    promo = Case([(Like(col("p_type"), "PROMO%"), _revenue())], lit(0.0))
    aggregated = HashAggregate(
        join,
        [],
        [agg_sum(promo, "promo_revenue"), agg_sum(_revenue(), "total_revenue")],
    )
    return Plan(aggregated, "tpch-q14")


def q15(db: TpchDatabase) -> Plan:
    """Top supplier — revenue view then an index lookup into supplier."""
    lineitem = Filter(
        _scan(db, "lineitem"),
        Between(col("l_shipdate"), lit("1996-01-01"), lit("1996-03-31")),
    )
    revenue = _agg(lineitem, ["l_suppkey"], [agg_sum(_revenue(), "total_revenue")])
    top = Limit(_sort(revenue, ("total_revenue", True)), 1)
    join = _inl(db, top, "supplier", "s_suppkey", "l_suppkey")
    return Plan(join, "tpch-q15")


def q16(db: TpchDatabase) -> Plan:
    """Parts/supplier relationship counts."""
    part = Filter(
        _scan(db, "part"),
        And(
            Not(col("p_brand") == lit("Brand#45")),
            Not(Like(col("p_type"), "MEDIUM POLISHED%")),
            InList(col("p_size"), [3, 9, 14, 19, 23, 36, 45, 49]),
        ),
    )
    join = _hj(part, _scan(db, "partsupp"), "p_partkey", "ps_partkey")
    deduped = Distinct(
        Project(
            join,
            [
                ("p_brand", col("p_brand")),
                ("p_type", col("p_type")),
                ("p_size", col("p_size")),
                ("ps_suppkey", col("ps_suppkey")),
            ],
        )
    )
    aggregated = _agg(
        deduped, ["p_brand", "p_type", "p_size"], [count_star("supplier_cnt")]
    )
    return Plan(
        _sort(aggregated, ("supplier_cnt", True), ("p_brand", False)), "tpch-q16"
    )


def q17(db: TpchDatabase) -> Plan:
    """Small-quantity-order revenue."""
    part = Filter(
        _scan(db, "part"),
        And(col("p_brand") == lit("Brand#23"),
            col("p_container") == lit("MED BAG")),
    )
    join = _hj(part, _scan(db, "lineitem"), "p_partkey", "l_partkey")
    per_part = _agg(
        join,
        ["p_partkey"],
        [agg_avg(col("l_quantity"), "avg_qty"),
         agg_sum(col("l_extendedprice"), "sum_price")],
    )
    cheap = Filter(per_part, col("avg_qty") < lit(25.0))
    aggregated = HashAggregate(
        cheap, [], [agg_sum(col("sum_price"), "avg_yearly")]
    )
    return Plan(aggregated, "tpch-q17")


def q18(db: TpchDatabase) -> Plan:
    """Large-volume customers — the suite's second-highest-μ query.

    The classic sort-based shape: lineitem is sorted (its rows tick a
    second time as the sort re-emits them) and stream-aggregated per order,
    the heavy orders are looked up back into orders/customer, and the
    matching lines are re-fetched.  Work per input tuple is high (paper:
    μ = 2.771; structurally ≈ 2.3 here) because the big relation flows
    through multiple counted operators.
    """
    from repro.engine.operators.aggregate import StreamAggregate

    sorted_lines = Sort(_scan(db, "lineitem"), [SortKey(col("l_orderkey"))])
    per_order = StreamAggregate(
        sorted_lines,
        [("l_orderkey", col("l_orderkey"))],
        [agg_sum(col("l_quantity"), "sum_qty")],
    )
    big = Filter(per_order, col("sum_qty") > lit(250.0))
    join = _inl(db, big, "orders", "o_orderkey", "l_orderkey")
    join = _inl(db, join, "customer", "c_custkey", "o_custkey")
    join = _inl(db, join, "lineitem", "l_orderkey", "o_orderkey", linear=False,
                alias="l2")
    aggregated = _agg(
        join,
        ["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
        [agg_sum(col("l2.l_quantity"), "total_qty")],
    )
    return Plan(
        _topn(aggregated, 100, ("o_totalprice", True), ("o_orderdate", False)),
        "tpch-q18",
    )


def q19(db: TpchDatabase) -> Plan:
    """Discounted revenue with OR-of-brackets residual predicate."""
    join = HashJoin(
        _scan(db, "part"),
        _scan(db, "lineitem"),
        col("p_partkey"),
        col("l_partkey"),
        residual=Or(
            And(col("p_brand") == lit("Brand#12"),
                Between(col("l_quantity"), lit(1.0), lit(11.0))),
            And(col("p_brand") == lit("Brand#23"),
                Between(col("l_quantity"), lit(10.0), lit(20.0))),
            And(col("p_brand") == lit("Brand#34"),
                Between(col("l_quantity"), lit(20.0), lit(30.0))),
        ),
        linear=True,
    )
    aggregated = HashAggregate(join, [], [agg_sum(_revenue(), "revenue")])
    return Plan(aggregated, "tpch-q19")


def q20(db: TpchDatabase) -> Plan:
    """Potential part promotion."""
    shipped = Filter(
        _scan(db, "lineitem"),
        Between(col("l_shipdate"), lit("1994-01-01"), lit("1994-12-31")),
    )
    per_ps = _agg(
        shipped, ["l_partkey", "l_suppkey"], [agg_sum(col("l_quantity"), "qty")]
    )
    part = Filter(_scan(db, "part"), Like(col("p_name"), "part name 1%"))
    join = _hj(part, _scan(db, "partsupp"), "p_partkey", "ps_partkey")
    join = Filter(
        _hj(per_ps, join, "l_partkey", "ps_partkey", linear=False),
        And(col("l_suppkey") == col("ps_suppkey"),
            col("ps_availqty") > col("qty") * lit(0.5)),
    )
    join = _hj(_scan(db, "supplier"), join, "s_suppkey", "ps_suppkey")
    nation = Filter(_scan(db, "nation"), col("n_name") == lit("CANADA"))
    join = _hj(nation, join, "n_nationkey", "s_nationkey")
    deduped = Distinct(Project(join, [("s_name", col("s_name"))]))
    return Plan(_sort(deduped, ("s_name", False)), "tpch-q20")


def q21(db: TpchDatabase) -> Plan:
    """Suppliers who kept orders waiting — the paper's Figure 6 query.

    Multi-pipeline: lineitem is scanned twice (once for the per-order
    supplier census, once for the late lines), with several hash joins and
    aggregations stacked above — the bound refinement visibly tightens as
    pipelines complete.
    """
    # Census: how many distinct suppliers served each order?
    census = _agg(
        Distinct(
            Project(
                _scan(db, "lineitem", "lc"),
                [("lc_orderkey", col("lc.l_orderkey")),
                 ("lc_suppkey", col("lc.l_suppkey"))],
            )
        ),
        ["lc_orderkey"],
        [count_star("supplier_count")],
    )
    multi = Filter(census, col("supplier_count") > lit(1))
    # Late lines from failed orders.
    late = Filter(
        _scan(db, "lineitem"), col("l_receiptdate") > col("l_commitdate")
    )
    orders = Filter(_scan(db, "orders"), col("o_orderstatus") == lit("F"))
    join = _hj(orders, late, "o_orderkey", "l_orderkey")
    join = _hj(multi, join, "lc_orderkey", "l_orderkey", linear=False)
    join = _hj(_scan(db, "supplier"), join, "s_suppkey", "l_suppkey")
    nation = Filter(_scan(db, "nation"), col("n_name") == lit("SAUDI ARABIA"))
    join = _hj(nation, join, "n_nationkey", "s_nationkey")
    aggregated = _agg(join, ["s_name"], [count_star("numwait")])
    return Plan(
        _topn(aggregated, 100, ("numwait", True), ("s_name", False)),
        "tpch-q21",
    )


def q22(db: TpchDatabase) -> Plan:
    """Global sales opportunity (anti-join approximated via census filter)."""
    per_customer = _agg(
        _scan(db, "orders"), ["o_custkey"], [count_star("order_count")]
    )
    customer = Filter(_scan(db, "customer"), col("c_acctbal") > lit(0.0))
    join = _hj(per_customer, customer, "o_custkey", "c_custkey")
    quiet = Filter(join, col("order_count") <= lit(2))
    aggregated = _agg(
        quiet, ["c_nationkey"],
        [count_star("numcust"), agg_sum(col("c_acctbal"), "totacctbal")],
    )
    return Plan(_sort(aggregated, ("c_nationkey", False)), "tpch-q22")


#: registry used by benchmarks and examples
QUERIES: Dict[int, QueryBuilder] = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9, 10: q10,
    11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16, 17: q17, 18: q18,
    19: q19, 20: q20, 21: q21, 22: q22,
}


def build_query(db: TpchDatabase, number: int) -> Plan:
    """Build TPC-H query ``number`` against ``db``."""
    return QUERIES[number](db)


def all_queries(db: TpchDatabase) -> List[Plan]:
    return [builder(db) for builder in QUERIES.values()]
