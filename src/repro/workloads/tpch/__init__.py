"""Miniature skewed TPC-H: schemas, data generator and the 22 query plans."""

from repro.workloads.tpch.dbgen import TpchDatabase, generate_tpch
from repro.workloads.tpch.queries import QUERIES, all_queries, build_query
from repro.workloads.tpch.schema import SF1_CARDINALITIES, tpch_schemas

__all__ = [
    "QUERIES",
    "SF1_CARDINALITIES",
    "TpchDatabase",
    "all_queries",
    "build_query",
    "generate_tpch",
    "tpch_schemas",
]
