"""TPC-H table schemas (the columns the benchmark queries actually touch).

Dates are ISO-8601 strings (they compare lexicographically, which is all the
engine needs).  Schemas are qualified by their table name, exactly as the
scans will re-qualify them.
"""

from __future__ import annotations

from typing import Dict

from repro.storage.schema import Schema, schema_of

#: TPC-H scale-factor-1 base cardinalities, scaled down by ``scale``
SF1_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10000,
    "customer": 150000,
    "part": 200000,
    "partsupp": 800000,
    "orders": 1500000,
    "lineitem": 6000000,
}


def tpch_schemas() -> Dict[str, Schema]:
    """All eight table schemas, keyed by table name."""
    return {
        "region": schema_of("region", "r_regionkey:int", "r_name:str"),
        "nation": schema_of(
            "nation", "n_nationkey:int", "n_name:str", "n_regionkey:int"
        ),
        "supplier": schema_of(
            "supplier",
            "s_suppkey:int",
            "s_name:str",
            "s_nationkey:int",
            "s_acctbal:float",
            "s_comment:str",
        ),
        "customer": schema_of(
            "customer",
            "c_custkey:int",
            "c_name:str",
            "c_nationkey:int",
            "c_acctbal:float",
            "c_mktsegment:str",
            "c_phone:str",
        ),
        "part": schema_of(
            "part",
            "p_partkey:int",
            "p_name:str",
            "p_mfgr:str",
            "p_brand:str",
            "p_type:str",
            "p_size:int",
            "p_container:str",
            "p_retailprice:float",
        ),
        "partsupp": schema_of(
            "partsupp",
            "ps_partkey:int",
            "ps_suppkey:int",
            "ps_availqty:int",
            "ps_supplycost:float",
        ),
        "orders": schema_of(
            "orders",
            "o_orderkey:int",
            "o_custkey:int",
            "o_orderstatus:str",
            "o_totalprice:float",
            "o_orderdate:date",
            "o_orderpriority:str",
            "o_shippriority:int",
        ),
        "lineitem": schema_of(
            "lineitem",
            "l_orderkey:int",
            "l_partkey:int",
            "l_suppkey:int",
            "l_linenumber:int",
            "l_quantity:float",
            "l_extendedprice:float",
            "l_discount:float",
            "l_tax:float",
            "l_returnflag:str",
            "l_linestatus:str",
            "l_shipdate:date",
            "l_commitdate:date",
            "l_receiptdate:date",
            "l_shipmode:str",
        ),
    }


MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
RETURN_FLAGS = ("A", "N", "R")
CONTAINERS = ("JUMBO BOX", "LG CASE", "MED BAG", "SM PKG", "WRAP JAR")
BRANDS = tuple("Brand#%d%d" % (i, j) for i in range(1, 6) for j in range(1, 6))
TYPES = tuple(
    "%s %s %s" % (a, b, c)
    for a in ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
    for b in ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
    for c in ("BRASS", "COPPER", "NICKEL", "STEEL", "TIN")
)
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
