"""Workload generators: zipfian joins, adversarial instances, mini TPC-H,
and the synthetic SkyServer catalog."""

from repro.workloads.adversarial import (
    Example2Workload,
    TwinInstances,
    ZipfianJoinWorkload,
    make_example2,
    make_twin_instances,
    make_zipfian_join,
)
from repro.workloads.skyserver import (
    SKYSERVER_QUERIES,
    SkyServerDatabase,
    build_skyserver_query,
    generate_skyserver,
)
from repro.workloads.sweep import (
    SweepCase,
    TPCH_SWEEP_QUERIES,
    ZIPF_SHAPES,
    generate_sweep,
)
from repro.workloads.tpch import (
    QUERIES,
    TpchDatabase,
    all_queries,
    build_query,
    generate_tpch,
)
from repro.workloads.zipf import ZipfSampler, zipf_column, zipf_frequencies, zipf_weights

__all__ = [
    "Example2Workload",
    "QUERIES",
    "SKYSERVER_QUERIES",
    "SkyServerDatabase",
    "SweepCase",
    "TPCH_SWEEP_QUERIES",
    "TpchDatabase",
    "TwinInstances",
    "ZIPF_SHAPES",
    "ZipfSampler",
    "ZipfianJoinWorkload",
    "all_queries",
    "generate_sweep",
    "build_query",
    "build_skyserver_query",
    "generate_skyserver",
    "generate_tpch",
    "make_example2",
    "make_twin_instances",
    "make_zipfian_join",
    "zipf_column",
    "zipf_frequencies",
    "zipf_weights",
]
