"""Zipfian data generation.

The paper's synthetic experiments join a unique-valued column against a
zipf(z=2)-distributed column ("known to be common in real data sets" [16]);
the skewed TPC-H generator [18] likewise zipf-distributes attribute values.
This module provides an exact, seeded zipf sampler over ranked keys.

With parameter ``z``, the frequency of the key of rank ``r`` (1-based) is
proportional to ``1 / r**z``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

from repro.errors import ReproError


def zipf_weights(distinct: int, z: float) -> List[float]:
    """Unnormalized zipf weights for ranks 1..distinct."""
    if distinct < 1:
        raise ReproError("zipf needs at least one distinct value")
    if z < 0:
        raise ReproError("zipf parameter must be non-negative")
    return [1.0 / (rank ** z) for rank in range(1, distinct + 1)]


def zipf_frequencies(total: int, distinct: int, z: float) -> List[int]:
    """Integer frequencies for ranks 1..distinct summing exactly to ``total``.

    Uses largest-remainder rounding so the output is deterministic and the
    rank-frequency shape is exact (no sampling noise) — the generator the
    experiments use when they need a *specific* fan-out profile.
    """
    if total < 0:
        raise ReproError("total must be non-negative")
    weights = zipf_weights(distinct, z)
    norm = sum(weights)
    raw = [total * weight / norm for weight in weights]
    floors = [int(value) for value in raw]
    shortfall = total - sum(floors)
    remainders = sorted(
        range(distinct), key=lambda i: raw[i] - floors[i], reverse=True
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return floors


class ZipfSampler:
    """Seeded random sampling of ranks 1..distinct with zipf(z) weights."""

    def __init__(self, distinct: int, z: float, seed: int = 0) -> None:
        weights = zipf_weights(distinct, z)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        self._rng = random.Random(seed)
        self.distinct = distinct
        self.z = z

    def sample(self) -> int:
        """One rank in [1, distinct]."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point) + 1

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]


def zipf_column(
    total: int,
    distinct: int,
    z: float,
    seed: Optional[int] = None,
    values: Optional[Sequence[object]] = None,
) -> List[object]:
    """A column of ``total`` values with a zipfian rank-frequency profile.

    With ``seed`` given the column is sampled (noisy frequencies, shuffled
    order); without it the exact frequency profile is laid out rank by rank.
    ``values[r-1]`` supplies the actual value for rank r (defaults to the
    rank itself).
    """
    if values is not None and len(values) < distinct:
        raise ReproError("need a value for each of the %d ranks" % (distinct,))

    def value_of(rank: int) -> object:
        return values[rank - 1] if values is not None else rank

    if seed is not None:
        sampler = ZipfSampler(distinct, z, seed)
        return [value_of(rank) for rank in sampler.sample_many(total)]
    column: List[object] = []
    for rank, frequency in enumerate(zipf_frequencies(total, distinct, z), start=1):
        column.extend([value_of(rank)] * frequency)
    return column
