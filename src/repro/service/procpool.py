"""The multiprocess execution backend: real CPU parallelism for the service.

The thread backend gives :class:`~repro.service.service.QueryService`
concurrency but — the engine being pure Python — zero parallelism: the GIL
serializes every tick, so eight in-flight queries share one core.  This
module supplies ``backend="process"``: a pool of long-lived worker
*processes*, each running the exact single-pass instrumented execution the
thread backend runs (one monitored pass per query, truth labeled at seal
time — no oracle pre-run crosses the wire, roughly halving per-query worker
time versus the legacy two-pass protocol), with every observable behaving
identically at the parent:

* **catalog** — workers forked from the parent inherit the catalog for
  free; under ``spawn``/``forkserver`` (where nothing is inherited) the
  catalog is re-opened in the worker from a picklable :class:`CatalogSpec`
  (a pickled catalog by default, or a named factory for big databases);
* **wire protocol** — the parent ships one :class:`_ExecuteRequest` per
  query (pickled plan + per-query toolkit, with catalog tables interned by
  name so table rows never cross per-submit) down a duplex pipe; the worker
  streams back ``event`` (cadence samples via
  :class:`~repro.core.observe.ForwardingSink`), ``degraded``, ``probe``
  and a final ``done`` message carrying the pickled
  :class:`~repro.core.runner.ProgressReport` — so completed traces are
  bit-identical to solo runs (floats pickle exactly);
* **control** — cancellation and the probe request counter travel the
  *other* way through shared memory (:func:`multiprocessing.RawValue`),
  checked by the worker's monitor at the same tick-batch boundaries the
  thread backend checks, so cancel/deadline latency bounds are unchanged;
* **live sampling** — ``handle.sample()`` increments the probe counter and
  parks until the worker answers with a fresh lock-scoped
  :class:`~repro.core.metrics.TraceSample` taken at its next boundary
  (one extra tick batch of staleness versus the thread backend's
  shared-lock probe — the price of the process boundary);
* **robustness** — a worker that dies mid-query fails only that query
  (the handle finalizes FAILED with a :class:`ServiceError`) and the slot
  respawns its worker for the next one.

Backend selection mirrors engine selection: explicit argument →
``$REPRO_BACKEND`` → ``"thread"`` (and explicit argument →
``$REPRO_START_METHOD`` → ``fork`` where the platform offers it), both
resolved through :class:`repro.options.ExecutionOptions`.
"""

from __future__ import annotations

import importlib
import io
import multiprocessing
import pickle
import threading
import time
import traceback
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.metrics import TraceSample
from repro.core.observe import ForwardingSink, emit_to_all
from repro.core.runner import ProgressRunner
from repro.errors import (
    QueryCancelled,
    QueryTimeout,
    ServiceError,
)
from repro.options import BACKENDS, ExecutionOptions
from repro.service.handle import QueryHandle, QueryState
from repro.service.monitor import ServiceExecutionMonitor
from repro.service.resilient import ResilientEstimator

# -- backend / start-method resolution -------------------------------------------


def _backend_choice(backend: Optional[str]) -> str:
    """Internal resolution: explicit value → ``$REPRO_BACKEND`` → thread."""
    return ExecutionOptions(backend=backend).resolve().backend


def _start_method_choice(method: Optional[str]) -> str:
    """Internal resolution: explicit → ``$REPRO_START_METHOD`` → fork/spawn."""
    return ExecutionOptions(start_method=method).resolve().start_method


def default_backend() -> str:
    """Deprecated: the default backend now resolves through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call.
    """
    warnings.warn(
        "default_backend() is deprecated; use "
        "repro.api.ExecutionOptions().resolve().backend instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _backend_choice(None)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Deprecated: ``backend=`` keywords now resolve through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call and delegates to the same
    resolution path, so behaviour (explicit value → ``$REPRO_BACKEND`` →
    ``"thread"``, unknown names raising :class:`ServiceError`) is
    unchanged.
    """
    warnings.warn(
        "resolve_backend() is deprecated; use "
        "repro.api.ExecutionOptions(backend=...).resolve().backend instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _backend_choice(backend)


def default_start_method() -> str:
    """Deprecated: the default start method now resolves through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call.  Fork remains the fast path
    where available: workers inherit the catalog without serialization.
    """
    warnings.warn(
        "default_start_method() is deprecated; use "
        "repro.api.ExecutionOptions().resolve().start_method instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _start_method_choice(None)


def resolve_start_method(method: Optional[str] = None) -> str:
    """Deprecated: ``start_method=`` keywords now resolve through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call with unchanged behaviour.
    """
    warnings.warn(
        "resolve_start_method() is deprecated; use "
        "repro.api.ExecutionOptions(start_method=...).resolve()"
        ".start_method instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _start_method_choice(method)


@contextmanager
def _fork_guard(start_method: str):
    """Silence the 3.12+ fork-in-threads DeprecationWarning for our forks.

    The warning targets forks that may clone arbitrarily-held locks into
    the child.  Our forked worker enters ``_worker_main`` directly and
    touches only its own pipe, its shared flags and the inherited catalog
    — never a lock another parent thread could hold — so the deadlock the
    warning guards against cannot occur here.
    """
    if start_method != "fork":
        yield
        return
    with warnings.catch_warnings():
        warnings.filterwarnings("ignore", category=DeprecationWarning)
        yield


# -- catalog shipping -------------------------------------------------------------


class CatalogSpec:
    """A picklable recipe for opening a catalog inside a worker process.

    Fork-started workers inherit the parent's catalog and never need one;
    spawn/forkserver workers start from nothing, so the parent ships a
    spec instead:

    * :meth:`from_catalog` — the default: the catalog itself, pickled
      (fine for benchmark-scale databases);
    * :meth:`from_factory` — a named ``"module:callable"`` the worker
      imports and calls, for databases that are cheaper to regenerate or
      re-open than to serialize.  ``attribute`` optionally plucks a field
      off the factory's return value (e.g. ``"catalog"`` on a generated
      :class:`~repro.workloads.tpch.dbgen.TpchDatabase`).
    """

    def __init__(self, kind: str, payload) -> None:
        self.kind = kind
        self.payload = payload

    @classmethod
    def none(cls) -> "CatalogSpec":
        return cls("none", None)

    @classmethod
    def from_catalog(cls, catalog) -> "CatalogSpec":
        if catalog is None:
            return cls.none()
        return cls("pickle", pickle.dumps(catalog, pickle.HIGHEST_PROTOCOL))

    @classmethod
    def from_factory(
        cls,
        target: str,
        args: Sequence = (),
        kwargs: Optional[dict] = None,
        attribute: Optional[str] = None,
    ) -> "CatalogSpec":
        if ":" not in target:
            raise ServiceError(
                "factory target must be 'module:callable', got %r" % (target,)
            )
        return cls(
            "factory", (target, tuple(args), dict(kwargs or {}), attribute)
        )

    def open(self):
        """Materialize the catalog (worker side)."""
        if self.kind == "none":
            return None
        if self.kind == "pickle":
            return pickle.loads(self.payload)
        target, args, kwargs, attribute = self.payload
        module_name, _, attr_name = target.partition(":")
        factory = getattr(importlib.import_module(module_name), attr_name)
        value = factory(*args, **kwargs)
        if attribute is not None:
            value = getattr(value, attribute)
        return value

    def __repr__(self) -> str:
        return "CatalogSpec(%s)" % (self.kind,)


def _open_catalog_payload(payload):
    """Fork ships the live catalog object; spawn ships a CatalogSpec."""
    if isinstance(payload, CatalogSpec):
        return payload.open()
    return payload


# -- wire protocol ---------------------------------------------------------------


@dataclass(frozen=True)
class _ExecuteRequest:
    """One query, parent → worker.  ``payload`` is the pickled
    ``(plan, estimators-or-None)`` pair produced by :func:`encode_query`."""

    query_id: int
    name: str
    payload: bytes
    deadline_seconds: Optional[float]
    target_samples: int
    engine: str
    protocol: str
    bounds: Tuple[str, ...]


class _CatalogRelativePickler(pickle.Pickler):
    """Pickles plans *relative to* a catalog: tables travel by name.

    Scan operators embed their :class:`~repro.storage.table.Table`, so a
    naive plan pickle ships every referenced table's rows on every submit
    — megabytes per query, and the dominant cost of the process backend.
    The worker already holds an identical catalog (inherited under fork,
    re-opened from the :class:`CatalogSpec` under spawn), so any table that
    *is* a catalog table (by identity) crosses as its name and is re-bound
    worker-side.  Tables outside the catalog — or any payload pickled with
    no catalog at all — still embed in full.
    """

    def __init__(self, buffer, catalog) -> None:
        super().__init__(buffer, pickle.HIGHEST_PROTOCOL)
        self._table_names = {}
        if catalog is not None:
            self._table_names = {
                id(catalog.table(name)): name
                for name in catalog.table_names()
            }

    def persistent_id(self, obj):
        return self._table_names.get(id(obj))


class _CatalogRelativeUnpickler(pickle.Unpickler):
    def __init__(self, buffer, catalog) -> None:
        super().__init__(buffer)
        self._catalog = catalog

    def persistent_load(self, pid):
        if self._catalog is None:
            raise pickle.UnpicklingError(
                "payload references catalog table %r but the worker has no "
                "catalog" % (pid,)
            )
        return self._catalog.table(pid)


def encode_query(plan, estimators, catalog=None) -> bytes:
    """Pickle a query for the wire; raised errors surface at admission."""
    toolkit = list(estimators) if estimators is not None else None
    buffer = io.BytesIO()
    _CatalogRelativePickler(buffer, catalog).dump((plan, toolkit))
    return buffer.getvalue()


def decode_query(payload: bytes, catalog):
    """Worker-side inverse of :func:`encode_query`."""
    return _CatalogRelativeUnpickler(io.BytesIO(payload), catalog).load()


def _encode_error(error: BaseException) -> bytes:
    """Pickle an exception so the parent can re-raise it faithfully.

    Round-trips the pickle: exceptions with custom ``__init__``
    signatures (e.g. :class:`DegenerateBoundsError`) can pickle but fail
    to *unpickle*, and that failure must happen here — with the traceback
    still in hand — not in the parent."""
    try:
        blob = pickle.dumps(error, pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)
        return blob
    except Exception:
        return pickle.dumps(ServiceError(
            "worker query failed: %s: %s\n%s"
            % (type(error).__name__, error, traceback.format_exc())
        ))


_STATE_FOR = {
    "done": QueryState.DONE,
    "cancelled": QueryState.CANCELLED,
    "timed_out": QueryState.TIMED_OUT,
    "failed": QueryState.FAILED,
}


# -- worker side -----------------------------------------------------------------


class _WorkerQueryHandle:
    """Duck-typed stand-in for :class:`QueryHandle` inside a worker.

    :class:`ServiceExecutionMonitor` reads exactly four things off its
    handle — ``cancel_requested``, ``deadline_at``, ``name`` and
    ``deadline_seconds`` — so this shim provides those, with the cancel
    flag backed by the shared-memory value the parent writes."""

    def __init__(self, name, cancel_flag, deadline_seconds) -> None:
        self.name = name
        self.deadline_seconds = deadline_seconds
        self.deadline_at: Optional[float] = None
        self.degraded = {}
        self._cancel_flag = cancel_flag

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_flag.value != 0


class _ProbeServer:
    """Answers the parent's on-demand sample requests at tick boundaries.

    The parent increments a shared counter; the worker's monitor calls
    :meth:`maybe_serve` on every control check, notices the counter moved,
    takes a lock-scoped :meth:`~repro.core.runner.RunnerProbe.live_sample`
    and ships it back tagged with the counter value.  Before the probe
    attaches — runner setup, or the two_pass protocol's oracle pre-run —
    it answers ``None`` immediately so the parent's ``sample()`` never
    blocks on a phase that cannot sample."""

    def __init__(self, conn, query_id: int, flag) -> None:
        self.conn = conn
        self.query_id = query_id
        self.flag = flag
        self.probe = None
        self._served = flag.value

    def attach(self, probe) -> None:
        self.probe = probe

    def maybe_serve(self, monitor) -> None:
        request = self.flag.value
        if request == self._served:
            return
        probe = self.probe
        if probe is None:
            self._served = request
            self.conn.send(("probe", self.query_id, request, None))
            return
        if probe.monitor is not monitor:
            # The oracle monitor outlives on_probe only transiently; let
            # the instrumented monitor answer.
            return
        with monitor.lock:
            sample = probe.live_sample()
        self._served = request
        self.conn.send(("probe", self.query_id, request, sample))


class _WorkerMonitor(ServiceExecutionMonitor):
    """The service monitor plus probe serving, for in-worker execution."""

    def __init__(self, shim: _WorkerQueryHandle, probe_server: _ProbeServer) -> None:
        super().__init__(shim, time.monotonic)
        self._probe_server = probe_server

    def _check_control(self) -> None:
        self._probe_server.maybe_serve(self)
        super()._check_control()


def _worker_main(conn, catalog_payload, toolkit_factory, cancel_flag, probe_flag):
    """Entry point of one worker process: serve requests until told to stop."""
    catalog = _open_catalog_payload(catalog_payload)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return
        if request is None:
            return
        _serve_request(
            conn, catalog, toolkit_factory, cancel_flag, probe_flag, request
        )


def _serve_request(conn, catalog, toolkit_factory, cancel_flag, probe_flag,
                   request: _ExecuteRequest) -> None:
    query_id = request.query_id
    state, report_blob, error = "failed", None, None
    try:
        plan, estimators = decode_query(request.payload, catalog)
        shim = _WorkerQueryHandle(
            request.name, cancel_flag, request.deadline_seconds
        )
        probe_server = _ProbeServer(conn, query_id, probe_flag)

        def on_degrade(estimator_name: str, reason: str) -> None:
            shim.degraded[estimator_name] = reason
            conn.send(("degraded", query_id, estimator_name, reason))

        toolkit = estimators if estimators is not None else toolkit_factory()
        probe_toolkit = toolkit_factory() if estimators is None else None
        wrapped = [ResilientEstimator(e, on_degrade) for e in toolkit]
        runner = ProgressRunner(
            plan,
            wrapped,
            catalog,
            target_samples=request.target_samples,
            # Only cadence samples cross the pipe live: they feed
            # handle.progress().  Everything else the parent needs rides
            # in the final report.
            sinks=(ForwardingSink(
                lambda event: conn.send(("event", query_id, event)),
                kinds=("sample",),
            ),),
            engine=request.engine,
            protocol=request.protocol,
            bounds=request.bounds,
            monitor_factory=lambda: _WorkerMonitor(shim, probe_server),
            on_probe=probe_server.attach,
            probe_estimators=probe_toolkit,
        )
        if request.deadline_seconds is not None:
            shim.deadline_at = time.monotonic() + request.deadline_seconds
        try:
            report = runner.run()
        except QueryCancelled as exc:
            state, error = "cancelled", exc
        except QueryTimeout as exc:
            state, error = "timed_out", exc
        except Exception as exc:
            state, error = "failed", exc
        else:
            state, report_blob = "done", pickle.dumps(
                report, pickle.HIGHEST_PROTOCOL
            )
    except Exception as exc:
        state, error = "failed", exc
    try:
        conn.send((
            "done", query_id, state, report_blob,
            _encode_error(error) if error is not None else None,
        ))
    except Exception:
        # A broken pipe means the parent is gone; nothing left to report to.
        pass


# -- parent side ------------------------------------------------------------------


class _ProbeBox:
    """Parent-side rendezvous for probe replies of one in-flight query."""

    def __init__(self, handle: QueryHandle) -> None:
        self.handle = handle
        self.condition = threading.Condition()
        self.last_id = 0
        self.last_sample: Optional[TraceSample] = None
        self.aborted = False

    def deliver(self, request_id: int, sample: Optional[TraceSample]) -> None:
        with self.condition:
            self.last_id = request_id
            self.last_sample = sample
            self.condition.notify_all()

    def abort(self) -> None:
        with self.condition:
            self.aborted = True
            self.condition.notify_all()

    def wait_for(self, request_id: int, timeout: float) -> Optional[TraceSample]:
        deadline = time.monotonic() + timeout
        with self.condition:
            while self.last_id < request_id and not self.aborted:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.handle.done:
                    return None
                # Short waits so a query finishing without a reply (the
                # worker raced past its last boundary) unparks promptly.
                self.condition.wait(min(remaining, 0.05))
            if self.aborted or self.last_id < request_id:
                return None
            return self.last_sample


class _WorkerSlot:
    """One worker process plus the parent-side shepherd that feeds it."""

    #: ceiling on one on-demand sample round trip; a worker between tick
    #: batches answers in microseconds, so hitting this means the query is
    #: ending (the caller gets None, exactly like a detached thread probe)
    PROBE_TIMEOUT = 2.0

    def __init__(self, pool: "ProcessPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.process = None
        self.conn = None
        ctx = pool.ctx
        # lock=False: single-writer flags on aligned machine words; the
        # worker only ever reads them.
        self.cancel_flag = ctx.RawValue("b", 0)
        self.probe_flag = ctx.RawValue("q", 0)

    # -- process lifecycle ------------------------------------------------------

    def start_process(self) -> None:
        ctx = self.pool.ctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.pool.catalog_payload(),
                self.pool.service.toolkit_factory,
                self.cancel_flag,
                self.probe_flag,
            ),
            name="repro-query-proc-%d" % (self.index,),
            daemon=True,
        )
        with _fork_guard(self.pool.start_method):
            process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn

    def restart_process(self) -> None:
        self.discard_process()
        if not self.pool.service._closed:
            self.start_process()

    def discard_process(self) -> None:
        process, conn = self.process, self.conn
        self.process = self.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)

    def stop_process(self) -> None:
        process, conn = self.process, self.conn
        self.process = self.conn = None
        if process is None:
            return
        try:
            conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
        process.join(timeout=5.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        try:
            conn.close()
        except OSError:
            pass

    # -- the shepherd -----------------------------------------------------------

    def shepherd_loop(self) -> None:
        service = self.pool.service
        admission_queue = service._queue
        while True:
            item = admission_queue.get()
            try:
                if item is self.pool.stop_sentinel:
                    self.stop_process()
                    return
                self.run_query(item)
            finally:
                admission_queue.task_done()

    def run_query(self, handle: QueryHandle) -> None:
        service = self.pool.service
        box = _ProbeBox(handle)
        self.cancel_flag.value = 0
        self.probe_flag.value = 0
        handle._bind_backend(
            on_cancel=self._signal_cancel,
            sampler=lambda: self._remote_sample(box),
        )
        try:
            if not service._begin(handle):
                return
            request = _ExecuteRequest(
                query_id=handle.query_id,
                name=handle.name,
                payload=handle._wire,
                deadline_seconds=handle.deadline_seconds,
                target_samples=handle._target_samples,
                engine=service.engine,
                protocol=service.protocol,
                bounds=service.bounds,
            )
            try:
                self.conn.send(request)
            except (OSError, ValueError, AttributeError) as exc:
                handle._finalize(QueryState.FAILED, error=ServiceError(
                    "could not dispatch query %r to its worker: %s"
                    % (handle.name, exc)
                ))
                self.restart_process()
                return
            self.pump(handle, box)
        except Exception as exc:  # pragma: no cover - shepherd must survive
            handle._finalize(QueryState.FAILED, error=exc)
        finally:
            box.abort()
            handle._bind_backend(None, None)
            service._finish(handle)

    def pump(self, handle: QueryHandle, box: _ProbeBox) -> None:
        """Apply the worker's event stream to the handle until ``done``."""
        service = self.pool.service
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                handle._finalize(QueryState.FAILED, error=ServiceError(
                    "worker process died while running query %r"
                    % (handle.name,)
                ))
                self.restart_process()
                return
            kind = message[0]
            if kind == "event":
                event = message[2]
                if event.kind == "sample":
                    handle._publish(TraceSample(
                        curr=event.curr,
                        actual=event.actual,
                        estimates=event.estimates,
                        lower_bound=event.lower_bound,
                        upper_bound=event.upper_bound,
                    ))
                    # Mirror the thread backend: per-query sinks get the
                    # cadence-sample stream, identical on either backend.
                    if handle._sinks:
                        emit_to_all(handle._sinks, event)
            elif kind == "degraded":
                service._record_degraded(handle, message[2], message[3])
            elif kind == "probe":
                box.deliver(message[2], message[3])
            elif kind == "done":
                _, _, state, report_blob, error_blob = message
                report = (
                    pickle.loads(report_blob) if report_blob is not None
                    else None
                )
                error = (
                    pickle.loads(error_blob) if error_blob is not None
                    else None
                )
                handle._finalize(_STATE_FOR[state], report=report, error=error)
                return

    # -- handle-facing hooks -----------------------------------------------------

    def _signal_cancel(self) -> None:
        self.cancel_flag.value = 1

    def _remote_sample(self, box: _ProbeBox) -> Optional[TraceSample]:
        if box.aborted or box.handle.state is not QueryState.RUNNING:
            return None
        with box.condition:
            request_id = self.probe_flag.value + 1
            self.probe_flag.value = request_id
        return box.wait_for(request_id, timeout=self.PROBE_TIMEOUT)


class ProcessPool:
    """``max_workers`` worker processes, each fed by a shepherd thread.

    The shepherds consume the service's ordinary admission queue (so
    backpressure, ``_STOP`` sentinels and shutdown work identically to the
    thread backend) and mirror the thread worker's life-cycle calls —
    ``_begin`` / ``_record_degraded`` / ``_finalize`` / ``_finish`` — while
    the query itself executes in the worker process."""

    def __init__(
        self,
        service,
        max_workers: int,
        start_method: Optional[str] = None,
    ) -> None:
        from repro.service.service import _STOP

        self.service = service
        self.start_method = _start_method_choice(start_method)
        self.ctx = multiprocessing.get_context(self.start_method)
        self.stop_sentinel = _STOP
        self._catalog_payload = None
        self._payload_ready = False
        self.slots = [_WorkerSlot(self, index) for index in range(max_workers)]
        # Processes first, from the (still single-threaded) constructor —
        # forking after the shepherds exist would clone live threads.
        for slot in self.slots:
            slot.start_process()
        self.threads = [
            threading.Thread(
                target=slot.shepherd_loop,
                name="repro-query-shepherd-%d" % (slot.index,),
                daemon=True,
            )
            for slot in self.slots
        ]
        for thread in self.threads:
            thread.start()

    def catalog_payload(self):
        """What crosses into a new worker: the catalog (fork) or a spec."""
        if self.start_method == "fork":
            return self.service.catalog
        if not self._payload_ready:
            spec = self.service.catalog_spec
            if spec is None:
                spec = CatalogSpec.from_catalog(self.service.catalog)
            self._catalog_payload = spec
            self._payload_ready = True
        return self._catalog_payload
