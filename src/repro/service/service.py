"""The concurrent query service: admission, execution, live progress.

:class:`QueryService` turns the single-threaded evaluation stack into an
online service shaped like König et al.'s robust-progress setting: many
queries in flight, each observable while it runs.

* **Admission** — a bounded queue in front of a fixed worker pool.  A full
  queue is backpressure: ``submit`` either raises
  :class:`repro.errors.AdmissionError` immediately or blocks for a grace
  period, caller's choice.  A plan *object* can be in flight at most once
  (operators hold runtime state), and SQL text is planned at admission.
* **Execution** — each worker drives the standard instrumented runner
  under the single-pass protocol (one monitored execution per query, truth
  labeled at completion — identical to a solo
  :class:`~repro.core.runner.ProgressRunner` run), so a completed query's
  trace is bit-identical to its single-threaded trace.  The runner's
  monitors are :class:`~repro.service.monitor.ServiceExecutionMonitor`\\ s:
  cancellation and deadlines are honoured at tick-batch boundaries — in
  one place, since there is only one pass (``protocol="two_pass"`` keeps
  the legacy oracle pre-run reachable; it is control-checked too).
* **Backends** — ``backend="thread"`` (default) runs queries on in-process
  worker threads: concurrent, but GIL-serialized.  ``backend="process"``
  runs each query in a worker *process* (see
  :mod:`repro.service.procpool`) for real CPU parallelism; handles,
  cancellation, deadlines, live sampling and traces behave identically.
  ``$REPRO_BACKEND`` overrides the default, mirroring ``$REPRO_ENGINE``.
* **Progress** — cadence samples are published to the query's handle as
  they are taken, and a lock-scoped probe lets any thread sample a running
  query's dne/pmax/safe on demand without racing the executor.
* **Robustness** — trace estimators are wrapped in
  :class:`~repro.service.resilient.ResilientEstimator`: an estimator that
  raises (including a strict toolkit's typed
  :class:`~repro.errors.DegenerateBoundsError`) degrades to safe for the
  rest of that run; the query itself is never killed by its estimator.
* **Observability** — the service emits structured
  :class:`~repro.core.observe.ProgressEvent`\\ s (``query_queued`` /
  ``query_start`` / ``query_degraded`` / ``query_end``, the last carrying
  the run's :class:`~repro.core.observe.RunProfile`) into ordinary
  progress-event sinks, so service traffic feeds the same JSONL/analysis
  tooling as single runs.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.estimators import ProgressEstimator, standard_toolkit
from repro.core.observe import (
    ForwardingSink,
    ProgressEvent,
    ProgressEventSink,
    emit_to_all,
)
from repro.core.runner import ProgressRunner, RunnerProbe
from repro.engine.plan import Plan
from repro.errors import AdmissionError, QueryCancelled, QueryTimeout
from repro.options import ExecutionOptions
from repro.service.handle import QueryHandle, QueryState, cancelled_error
from repro.service.monitor import ServiceExecutionMonitor
from repro.service.procpool import (
    CatalogSpec,
    ProcessPool,
    encode_query,
)
from repro.service.resilient import ResilientEstimator
from repro.storage.catalog import Catalog

_STOP = object()

Query = Union[Plan, str]


class QueryService:
    """A bounded worker pool executing monitored queries concurrently."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        *,
        options: Optional[ExecutionOptions] = None,
        max_workers: Optional[int] = None,
        queue_depth: Optional[int] = None,
        toolkit_factory: Callable[[], List[ProgressEstimator]] = standard_toolkit,
        engine: Optional[str] = None,
        protocol: Optional[str] = None,
        bounds: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        start_method: Optional[str] = None,
        catalog_spec: Optional[CatalogSpec] = None,
        target_samples: Optional[int] = None,
        default_deadline: Optional[float] = None,
        sinks: Sequence[ProgressEventSink] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise AdmissionError("max_workers must be >= 1")
        if queue_depth is not None and queue_depth < 1:
            raise AdmissionError("queue_depth must be >= 1")
        # One resolution step: an explicit keyword beats the base options
        # object, which beats $REPRO_* and the built-in fallbacks.
        self.options = (options or ExecutionOptions()).merged(
            engine=engine,
            protocol=protocol,
            bounds=bounds,
            backend=backend,
            start_method=start_method,
            max_workers=max_workers,
            queue_depth=queue_depth,
            target_samples=target_samples,
        ).resolve()
        self.catalog = catalog
        self.toolkit_factory = toolkit_factory
        self.engine = self.options.engine
        self.protocol = self.options.protocol
        self.bounds = self.options.bounds
        self.backend = self.options.backend
        #: how spawn-started workers re-open the catalog; None means "ship
        #: the catalog pickled" (irrelevant under fork and the thread backend)
        self.catalog_spec = catalog_spec
        self.target_samples = self.options.target_samples
        self.default_deadline = default_deadline
        max_workers = self.options.max_workers
        queue_depth = self.options.queue_depth
        self.sinks = list(sinks)
        self._clock = clock
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._lock = threading.Lock()
        self._closed = False
        self._next_id = 1
        self._seq = 0
        self._started_at = clock()
        self._handles: List[QueryHandle] = []
        self._active_plan_ids: set = set()
        self._stats: Dict[str, int] = {
            "submitted": 0, "rejected": 0,
            "done": 0, "cancelled": 0, "failed": 0, "timed_out": 0,
        }
        self._pool: Optional[ProcessPool] = None
        if self.backend == "process":
            # The pool starts its worker processes from this (still
            # single-threaded) constructor, then its shepherd threads
            # consume self._queue exactly like the thread workers below.
            self._pool = ProcessPool(self, max_workers, self.options.start_method)
            self._workers = self._pool.threads
        else:
            self._workers = [
                threading.Thread(
                    target=self._worker_loop,
                    name="repro-query-worker-%d" % (i,),
                    daemon=True,
                )
                for i in range(max_workers)
            ]
            for worker in self._workers:
                worker.start()

    # -- admission ---------------------------------------------------------------

    def submit(
        self,
        query: Query,
        *,
        name: Optional[str] = None,
        estimators: Optional[Sequence[ProgressEstimator]] = None,
        deadline: Optional[float] = None,
        target_samples: Optional[int] = None,
        sinks: Sequence[ProgressEventSink] = (),
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> QueryHandle:
        """Admit one query; returns immediately with its handle.

        ``query`` is a :class:`Plan` or SQL text (planned against the
        service's catalog).  ``deadline`` is seconds of execution time
        granted once a worker picks the query up; ``estimators`` overrides
        the service's toolkit for this query.  ``sinks`` are per-query
        event sinks receiving this query's live cadence samples
        (``kind == "sample"`` only — the same stream on either backend;
        the network tier's WebSocket bridge rides on this).  When the
        admission queue is full, ``block=False`` raises
        :class:`AdmissionError` at once and ``block=True`` waits up to
        ``timeout`` seconds first.
        """
        plan = self._plan_for(query, name)
        wire = None
        if self.backend == "process":
            # Pickle at admission so an unpicklable plan or estimator is a
            # crisp AdmissionError for the submitter, not a FAILED query.
            try:
                wire = encode_query(plan, estimators, self.catalog)
            except Exception as exc:
                with self._lock:
                    self._stats["rejected"] += 1
                raise AdmissionError(
                    "query %r cannot cross the process boundary "
                    "(pickling failed: %s: %s); use picklable estimators "
                    "and plans, or backend='thread'"
                    % (name or plan.name, type(exc).__name__, exc)
                ) from exc
        with self._lock:
            if self._closed:
                raise AdmissionError("service is shut down")
            if id(plan) in self._active_plan_ids:
                raise AdmissionError(
                    "plan %r is already queued or running; submit a fresh "
                    "plan object per in-flight query (operators hold "
                    "runtime state)" % (plan.name,)
                )
            query_id = self._next_id
            self._next_id += 1
            handle = QueryHandle(query_id, name or plan.name, plan)
            handle.deadline_seconds = (
                deadline if deadline is not None else self.default_deadline
            )
            handle._target_samples = (
                target_samples if target_samples is not None
                else self.target_samples
            )
            handle._estimators = (
                list(estimators) if estimators is not None else None
            )
            handle._sinks = tuple(sinks)
            handle._wire = wire
            self._active_plan_ids.add(id(plan))
            self._handles.append(handle)
            self._stats["submitted"] += 1
        try:
            self._queue.put(handle, block=block, timeout=timeout)
        except queue.Full:
            with self._lock:
                self._stats["submitted"] -= 1
                self._stats["rejected"] += 1
                self._active_plan_ids.discard(id(plan))
                self._handles.remove(handle)
            raise AdmissionError(
                "admission queue is full (%d pending); retry later or "
                "submit with block=True" % (self._queue.maxsize,)
            ) from None
        self._emit("query_queued", handle)
        return handle

    def _plan_for(self, query: Query, name: Optional[str]) -> Plan:
        if isinstance(query, Plan):
            return query
        if isinstance(query, str):
            if self.catalog is None:
                raise AdmissionError(
                    "submitting SQL text requires a service catalog"
                )
            from repro.sql import plan_query

            return plan_query(query, self.catalog, name=name or "service-sql")
        raise AdmissionError("query must be a Plan or SQL text, not %r"
                             % (type(query).__name__,))

    # -- execution ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._execute(item)
            finally:
                self._queue.task_done()

    def _begin(self, handle: QueryHandle) -> bool:
        """Shared start-of-execution transition (thread worker or shepherd).

        Returns False — with the handle finalized CANCELLED — when the
        query was cancelled while queued; the caller must still run its
        end-of-execution path (:meth:`_finish`).
        """
        if not handle._mark_running():
            handle._finalize(
                QueryState.CANCELLED, error=cancelled_error(handle)
            )
            return False
        self._emit("query_start", handle)
        if handle.deadline_seconds is not None:
            handle.deadline_at = self._clock() + handle.deadline_seconds
        return True

    def _record_degraded(self, handle: QueryHandle, estimator_name: str,
                         reason: str) -> None:
        handle.degraded[estimator_name] = reason
        self._emit("query_degraded", handle, payload_extra={
            "estimator": estimator_name, "reason": reason,
        })

    def _finish(self, handle: QueryHandle) -> None:
        """Shared end-of-execution accounting (thread worker or shepherd)."""
        with self._lock:
            self._active_plan_ids.discard(id(handle.plan))
            self._stats[handle.state.value] = (
                self._stats.get(handle.state.value, 0) + 1
            )
        self._emit("query_end", handle)

    def _execute(self, handle: QueryHandle) -> None:
        try:
            if not self._begin(handle):
                return

            def on_degrade(estimator_name: str, reason: str) -> None:
                self._record_degraded(handle, estimator_name, reason)

            toolkit = handle._estimators
            probe_toolkit: Optional[List[ProgressEstimator]] = None
            if toolkit is None:
                toolkit = self.toolkit_factory()
                # The probe toolkit is a second, independent instance set:
                # on-demand samples must not advance any stateful trace
                # estimator between cadence points.
                probe_toolkit = self.toolkit_factory()
            wrapped = [ResilientEstimator(e, on_degrade) for e in toolkit]

            def on_probe(probe: RunnerProbe) -> None:
                # The probe's monitor is the instrumented-pass monitor; its
                # lock is the one every recording path already takes.
                handle._attach_probe(probe, probe.monitor.lock)

            # Per-query sinks see exactly what crosses the pipe on the
            # process backend: cadence samples, nothing else — so a
            # subscriber's stream is backend-independent.
            runner_sinks: List[ProgressEventSink] = [_HandleSink(handle)]
            if handle._sinks:
                runner_sinks.append(ForwardingSink(
                    lambda event: emit_to_all(handle._sinks, event),
                    kinds=("sample",),
                ))
            runner = ProgressRunner(
                handle.plan,
                wrapped,
                self.catalog,
                target_samples=handle._target_samples,
                sinks=tuple(runner_sinks),
                engine=self.engine,
                protocol=self.protocol,
                bounds=self.bounds,
                monitor_factory=lambda: ServiceExecutionMonitor(
                    handle, self._clock
                ),
                on_probe=on_probe,
                probe_estimators=probe_toolkit,
            )
            try:
                report = runner.run()
            except QueryCancelled as exc:
                handle._finalize(QueryState.CANCELLED, error=exc)
            except QueryTimeout as exc:
                handle._finalize(QueryState.TIMED_OUT, error=exc)
            except Exception as exc:
                handle._finalize(QueryState.FAILED, error=exc)
            else:
                handle._finalize(QueryState.DONE, report=report)
        except Exception as exc:  # pragma: no cover - worker must survive
            handle._finalize(QueryState.FAILED, error=exc)
        finally:
            handle._detach_probe()
            self._finish(handle)

    # -- observability -----------------------------------------------------------

    def _emit(
        self,
        kind: str,
        handle: QueryHandle,
        payload_extra: Optional[Dict[str, object]] = None,
    ) -> None:
        if not self.sinks:
            return
        payload: Dict[str, object] = {
            "query_id": handle.query_id,
            "query": handle.name,
            "state": handle.state.value,
        }
        if handle.degraded:
            payload["degraded"] = dict(handle.degraded)
        if handle.error is not None:
            payload["error"] = str(handle.error)
        if kind == "query_end" and handle.state is QueryState.DONE:
            report = handle.result(timeout=0)
            if report.profile is not None:
                payload["profile"] = report.profile.to_dict()
        if payload_extra:
            payload.update(payload_extra)
        latest = handle.progress()
        with self._lock:
            seq = self._seq
            self._seq += 1
        emit_to_all(self.sinks, ProgressEvent(
            seq=seq,
            kind=kind,
            plan=handle.plan.name,
            elapsed_seconds=self._clock() - self._started_at,
            curr=latest.curr if latest else 0.0,
            total=0.0,
            actual=latest.actual if latest else 0.0,
            lower_bound=latest.lower_bound if latest else 0.0,
            upper_bound=latest.upper_bound if latest else 0.0,
            estimates=dict(latest.estimates) if latest else {},
            payload=payload,
        ))

    # -- inspection & lifecycle ----------------------------------------------------

    def handles(self) -> List[QueryHandle]:
        """Every handle admitted so far, in submission order."""
        with self._lock:
            return list(self._handles)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            counts = dict(self._stats)
        counts["pending"] = self._queue.qsize()
        return counts

    def cancel_all(self) -> int:
        """Request cancellation of every non-terminal query."""
        return sum(1 for handle in self.handles() if handle.cancel())

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted query is terminal."""
        deadline = None if timeout is None else self._clock() + timeout
        for handle in self.handles():
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - self._clock())
            if not handle.wait(remaining):
                return False
        return True

    def shutdown(
        self,
        *,
        cancel_pending: bool = True,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        """Stop admitting, optionally cancel in-flight work, join workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if cancel_pending:
            self.cancel_all()
        for _ in self._workers:
            self._queue.put(_STOP)
        if wait:
            for worker in self._workers:
                worker.join(timeout)
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return "QueryService(%d %s workers, %s)" % (
            len(self._workers), self.backend, self.stats(),
        )


class _HandleSink(ProgressEventSink):
    """Publishes the runner's cadence samples onto the query handle.

    The estimates dict an event carries *is* the dict the trace's sample at
    the same instant holds, so handle-published samples match trace entries
    by construction — except for the label: under the single-pass protocol
    live samples carry ``actual=None`` (truth is back-filled at seal time),
    and the runner's adaptive cadence may later decimate some published
    instants out of the sealed trace.  On DONE the handle republishes the
    labeled final sample.
    """

    def __init__(self, handle: QueryHandle) -> None:
        self.handle = handle

    def emit(self, event: ProgressEvent) -> None:
        if event.kind == "sample":
            from repro.core.metrics import TraceSample

            self.handle._publish(TraceSample(
                curr=event.curr,
                actual=event.actual,
                estimates=event.estimates,
                lower_bound=event.lower_bound,
                upper_bound=event.upper_bound,
            ))
