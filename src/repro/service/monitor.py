"""The service's execution monitor: cooperative control at tick boundaries.

The engine is pure Python, so "stopping a query" means raising out of its
own getnext stream.  Every counted tick (interpreted engine) and every
coalesced tick batch (fused engine) funnels through
:meth:`ExecutionMonitor.record` / :meth:`ExecutionMonitor.record_batch`;
this subclass checks the query's cancel flag and deadline right there, so a
cancel lands within one tick (row-at-a-time) or one observer-cadence batch
(fused) — and the fused engine's batches are already capped at the observer
cadence, so responsiveness does not degrade with batching.  Finish and
rewind events are checked as well: a ⋈NL rescan over an already-filtered
inner emits long finish/rewind trains with no counted tick in between, and
those must not stretch the cancel bound.

The same subclass provides the *sampling lock*: all monitor entry points
that mutate progress state (ticks, finishes, rewinds, resets — and the
cadence observers they trigger, which walk the incremental bounds tracker)
run under one re-entrant lock.  A monitor thread that takes the same lock
can therefore snapshot the tracker and run estimators mid-flight without
racing the executor.  The lock is re-entrant because a boundary ``finish``
forces an observer round from inside ``record_finish``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.engine.monitor import ExecutionMonitor
from repro.service.handle import QueryHandle, cancelled_error, timeout_error


class ServiceExecutionMonitor(ExecutionMonitor):
    """An :class:`ExecutionMonitor` wired to one query handle.

    Raises :class:`repro.errors.QueryCancelled` /
    :class:`repro.errors.QueryTimeout` from the recording path when the
    handle asks for it, and serializes all recording (plus the observer
    rounds it triggers) under :attr:`lock`.

    Under the default single-pass protocol each query has exactly one
    monitored execution, so this is the *only* place control is checked;
    under ``protocol="two_pass"`` the runner builds a second monitor of the
    same class for the oracle pre-run, which is therefore cancellable too.
    """

    def __init__(
        self,
        handle: QueryHandle,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__()
        self.handle = handle
        self.clock = clock
        self.lock = threading.RLock()

    def _check_control(self) -> None:
        handle = self.handle
        if handle.cancel_requested:
            raise cancelled_error(handle)
        deadline = handle.deadline_at
        if deadline is not None and self.clock() >= deadline:
            raise timeout_error(handle)

    # -- recording entry points, control-checked and lock-scoped -----------------

    def record(self, operator_id: int) -> None:
        self._check_control()
        with self.lock:
            super().record(operator_id)

    def record_batch(self, operator_id: int, n: int) -> None:
        self._check_control()
        with self.lock:
            super().record_batch(operator_id, n)

    def record_finish(self, operator_id: int) -> None:
        # Finish events are control-checked too: a rewind-heavy ⋈NL rescan
        # emits long finish/rewind trains between counted ticks, and
        # skipping the check there would defer a cancel past the documented
        # one-tick/one-batch bound.
        self._check_control()
        with self.lock:
            super().record_finish(operator_id)

    def record_rewind(self, operator_id: int) -> None:
        self._check_control()
        with self.lock:
            super().record_rewind(operator_id)

    def notify_now(self) -> None:
        with self.lock:
            super().notify_now()

    def reset(self) -> None:
        with self.lock:
            super().reset()
