"""Query handles: the client-side view of one admitted query.

A :class:`QueryHandle` is created at admission and crosses three threads:
the submitter (cancel, wait, poll), the worker that executes the query, and
any number of monitor threads sampling progress.  Its life cycle is

    QUEUED -> RUNNING -> DONE | CANCELLED | FAILED | TIMED_OUT

with exactly one transition into a terminal state; ``wait``/``result`` park
on an event that fires at that transition.  Progress is exposed two ways:

* :meth:`progress` — the most recent cadence sample the executor published
  (free to read);
* :meth:`sample` — a *fresh* sample taken right now, lock-scoped against
  the executor so the incremental bounds tracker and the estimator toolkit
  are never raced (see ``repro.service.monitor``).

Under the default single-pass protocol truth is labeled at completion, so
samples observed *while the query runs* carry ``actual=None`` (estimator
answers and bounds are live; the true-progress label does not exist yet).
Once the handle is DONE, :meth:`progress` answers the sealed trace's fully
labeled final sample.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, Dict, List, Optional

from repro.core.metrics import TraceSample
from repro.core.runner import ProgressReport, RunnerProbe
from repro.errors import QueryCancelled, QueryTimeout, ServiceError


class QueryState(enum.Enum):
    """Life-cycle states of a submitted query."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"
    TIMED_OUT = "timed_out"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {QueryState.DONE, QueryState.CANCELLED, QueryState.FAILED,
     QueryState.TIMED_OUT}
)


class QueryHandle:
    """Ticket for one admitted query; safe to use from any thread."""

    def __init__(self, query_id: int, name: str, plan) -> None:
        self.query_id = query_id
        self.name = name
        self.plan = plan
        #: read by the service monitor on *every* recorded tick batch — a
        #: plain attribute so the hot path pays one attribute load, not a
        #: lock round trip
        self.cancel_requested = False
        #: monotonic instant after which the monitor raises QueryTimeout
        #: (set by the worker when execution starts)
        self.deadline_at: Optional[float] = None
        #: seconds granted for execution, or None for no deadline
        self.deadline_seconds: Optional[float] = None
        #: estimator name -> reason, filled when the toolkit degrades
        self.degraded: Dict[str, str] = {}
        self._state = QueryState.QUEUED
        self._state_lock = threading.Lock()
        self._done = threading.Event()
        self._report: Optional[ProgressReport] = None
        self._error: Optional[BaseException] = None
        self._latest: Optional[TraceSample] = None
        self._samples_published = 0
        self._probe: Optional[RunnerProbe] = None
        self._probe_lock: Optional[threading.RLock] = None
        # per-query run configuration, filled in by the service at admission
        self._target_samples = 200
        self._estimators: Optional[List] = None
        #: per-query event sinks (cadence samples only); the network tier's
        #: WebSocket bridge subscribes through these
        self._sinks: tuple = ()
        self._callbacks: List[Callable[["QueryHandle"], None]] = []
        #: pickled (plan, estimators) wire payload — process backend only
        self._wire: Optional[bytes] = None
        # backend hooks: the thread backend leaves these None (cancel is a
        # shared-memory attribute read, sampling goes through the probe);
        # the process backend binds them while its worker owns the query
        self._on_cancel: Optional[Callable[[], None]] = None
        self._remote_sampler: Optional[Callable[[], Optional[TraceSample]]] = None

    # -- state -----------------------------------------------------------------

    @property
    def state(self) -> QueryState:
        return self._state

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the query reaches a terminal state."""
        return self._done.wait(timeout)

    def add_done_callback(self, fn: Callable[["QueryHandle"], None]) -> None:
        """Run ``fn(handle)`` exactly once when the query turns terminal.

        Registered after the terminal transition, ``fn`` runs immediately
        on the calling thread; otherwise it runs on the thread that
        finalizes the query (a worker or shepherd).  Callbacks must not
        block — the scheduler and the network tier use them to unpark
        waiters, record latency and push terminal frames.  A raising
        callback is swallowed: completion accounting must never be
        derailed by a subscriber.
        """
        with self._state_lock:
            if not self._state.terminal:
                self._callbacks.append(fn)
                return
        self._run_callback(fn)

    def _run_callback(self, fn: Callable[["QueryHandle"], None]) -> None:
        try:
            fn(self)
        except Exception:
            pass

    def result(self, timeout: Optional[float] = None) -> ProgressReport:
        """The finished run's report; raises the terminal error otherwise.

        Raises :class:`repro.errors.QueryCancelled` /
        :class:`repro.errors.QueryTimeout` for those terminal states, the
        original exception for FAILED, and :class:`ServiceError` if the
        wait timed out.
        """
        if not self.wait(timeout):
            raise ServiceError(
                "query %r still %s after %ss"
                % (self.name, self._state.value, timeout)
            )
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        Returns True if the query had not yet reached a terminal state; the
        executor honours the request at the next tick-batch boundary (or at
        dequeue time if the query never started).
        """
        with self._state_lock:
            self.cancel_requested = True
            on_cancel = self._on_cancel
            live = not self._state.terminal
        if live and on_cancel is not None:
            # Process backend: mirror the request into the shared-memory
            # flag the worker process polls at tick-batch boundaries.
            on_cancel()
        return live

    # -- progress --------------------------------------------------------------

    def progress(self) -> Optional[TraceSample]:
        """The most recent cadence sample, or None before the first one.

        Each returned sample matches — estimator answer for estimator
        answer — what a single-threaded run of the same plan observes at
        the same tick instant; while the query runs, ``actual`` is None
        (single-pass protocol: truth is back-filled at completion).  After
        DONE this answers the sealed trace's labeled final sample.
        """
        return self._latest

    @property
    def samples_published(self) -> int:
        return self._samples_published

    def sample(self) -> Optional[TraceSample]:
        """Take a fresh progress sample *now*, from any thread.

        Lock-scoped against the executor: the sample sees a consistent
        bounds-tracker state even while the query is ticking.  Returns None
        unless the query is RUNNING.  The probe uses its own toolkit
        instances, so out-of-cadence sampling never perturbs the recorded
        trace.
        """
        sampler = self._remote_sampler
        if sampler is not None:
            # Process backend: the probe lives in the worker process; ask it
            # for a lock-scoped sample at its next tick-batch boundary.
            if self._state is not QueryState.RUNNING:
                return None
            return sampler()
        probe, lock = self._probe, self._probe_lock
        if probe is None or lock is None or self._state is not QueryState.RUNNING:
            return None
        with lock:
            # Re-check under the lock: the worker detaches the probe before
            # finalizing, so a probe observed here is still wired.
            if self._probe is None:
                return None
            return probe.live_sample()

    # -- worker-side hooks (not public API) --------------------------------------

    def _bind_backend(
        self,
        on_cancel: Optional[Callable[[], None]],
        sampler: Optional[Callable[[], Optional[TraceSample]]],
    ) -> None:
        """Wire (or, with Nones, unwire) process-backend cancel/sample hooks.

        A cancel that raced admission — requested after ``submit`` returned
        but before the worker slot bound its hooks — is replayed into the
        fresh hook so the shared flag is never left unset.
        """
        with self._state_lock:
            self._on_cancel = on_cancel
            self._remote_sampler = sampler
            replay = self.cancel_requested and on_cancel is not None
        if replay:
            on_cancel()

    def _attach_probe(self, probe: RunnerProbe, lock: threading.RLock) -> None:
        self._probe_lock = lock
        self._probe = probe

    def _detach_probe(self) -> None:
        lock = self._probe_lock
        if lock is not None:
            with lock:
                self._probe = None

    def _publish(self, sample: TraceSample) -> None:
        self._latest = sample
        self._samples_published += 1

    def _mark_running(self) -> bool:
        with self._state_lock:
            if self.cancel_requested:
                return False
            self._state = QueryState.RUNNING
            return True

    def _finalize(
        self,
        state: QueryState,
        report: Optional[ProgressReport] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if not state.terminal:
            raise ServiceError("cannot finalize into %s" % (state,))
        with self._state_lock:
            if self._state.terminal:
                return
            self._state = state
            self._report = report
            self._error = error
            if report is not None and report.trace.samples:
                # Truth exists now: republish the sealed trace's labeled
                # final sample so post-DONE progress() answers actual=1.0
                # instead of a stale unlabeled live sample.
                self._latest = report.trace.samples[-1]
                self._samples_published += 1
            callbacks, self._callbacks = self._callbacks, []
        self._done.set()
        # Outside the lock: a callback may itself inspect the handle.
        for fn in callbacks:
            self._run_callback(fn)

    def __repr__(self) -> str:
        return "QueryHandle(#%d %r, %s)" % (
            self.query_id, self.name, self._state.value,
        )


def cancelled_error(handle: QueryHandle) -> QueryCancelled:
    return QueryCancelled("query %r was cancelled" % (handle.name,))


def timeout_error(handle: QueryHandle) -> QueryTimeout:
    return QueryTimeout(
        "query %r exceeded its %.3fs deadline"
        % (handle.name, handle.deadline_seconds or 0.0)
    )
