"""Concurrent query service: admission, cancellation, deadlines, live progress.

Public surface:

* :class:`QueryService` — bounded worker pool with backpressure;
* :class:`QueryHandle` / :class:`QueryState` — per-query tickets with
  cooperative cancellation, deadlines and thread-safe progress sampling;
* :class:`ServiceExecutionMonitor` — the tick-boundary control monitor;
* :class:`ResilientEstimator` — safe-fallback estimator degradation.

Typical use goes through the facade (:func:`repro.api.connect` →
``Session.submit``); this package is the engine room.
"""

from repro.service.handle import QueryHandle, QueryState
from repro.service.monitor import ServiceExecutionMonitor
from repro.service.resilient import ResilientEstimator
from repro.service.service import QueryService

__all__ = [
    "QueryHandle",
    "QueryService",
    "QueryState",
    "ResilientEstimator",
    "ServiceExecutionMonitor",
]
