"""Concurrent query service: admission, cancellation, deadlines, live progress.

Public surface:

* :class:`QueryService` — bounded worker pool with backpressure;
* :class:`QueryHandle` / :class:`QueryState` — per-query tickets with
  cooperative cancellation, deadlines and thread-safe progress sampling;
* :class:`ServiceExecutionMonitor` — the tick-boundary control monitor;
* :class:`ResilientEstimator` — safe-fallback estimator degradation;
* :data:`BACKENDS` / :class:`CatalogSpec` — the execution-backend surface
  (``backend="thread"`` or ``"process"``, see
  :mod:`repro.service.procpool`).  The old per-knob resolvers
  (:func:`resolve_backend` / :func:`resolve_start_method` and their
  ``default_*`` twins) remain importable as :class:`DeprecationWarning`
  shims; new code resolves through
  :class:`repro.api.ExecutionOptions`.

Typical use goes through the facade (:func:`repro.api.connect` →
``Session.submit``); this package is the engine room.
"""

from repro.service.handle import QueryHandle, QueryState
from repro.service.monitor import ServiceExecutionMonitor
from repro.service.procpool import (
    BACKENDS,
    CatalogSpec,
    default_backend,
    default_start_method,
    resolve_backend,
    resolve_start_method,
)
from repro.service.resilient import ResilientEstimator
from repro.service.service import QueryService

__all__ = [
    "BACKENDS",
    "CatalogSpec",
    "QueryHandle",
    "QueryService",
    "QueryState",
    "ResilientEstimator",
    "ServiceExecutionMonitor",
    "default_backend",
    "default_start_method",
    "resolve_backend",
    "resolve_start_method",
]
