"""Estimator degradation: never kill a query because its estimator failed.

The robustness rule of the service (and of §5.3's fallback argument): a
progress estimate is advisory, the query result is not.  Each trace
estimator is therefore wrapped in a :class:`ResilientEstimator` that

* passes estimates through untouched while the inner estimator behaves —
  a healthy query's trace is bit-identical to an unwrapped run;
* on the first raise — a typed
  :class:`repro.errors.DegenerateBoundsError` from a strict toolkit, or
  any other exception from a buggy estimator — *degrades* the slot to the
  safe estimator (``Curr/√(LB·UB)``, worst-case optimal, defined for every
  bounds state) for the rest of the run, records the reason on the query
  handle, and reports the degradation to the service's event stream.

Degradation is sticky per run: once an estimator has proven unreliable for
this query, flip-flopping between its answers and safe's would make the
progress series non-comparable across samples.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    progress_interval,
)
from repro.core.estimators.safe import SafeEstimator

#: callback(estimator_name, reason) invoked once, at degradation time
DegradeCallback = Callable[[str, str], None]


class ResilientEstimator(ProgressEstimator):
    """Wraps one estimator; falls back to safe on any estimation failure."""

    def __init__(
        self,
        inner: ProgressEstimator,
        on_degrade: Optional[DegradeCallback] = None,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.on_degrade = on_degrade
        self.degraded_reason: Optional[str] = None
        self._safe = SafeEstimator()

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not None

    def prepare(self, plan) -> None:
        # Safe first: it must be prepared even when the inner estimator
        # fails, so the degraded slot has a working fallback from tick one.
        self._safe.prepare(plan)
        if self.degraded_reason is not None:
            return
        try:
            self.inner.prepare(plan)
        except Exception as exc:
            self._degrade("prepare: %s: %s" % (type(exc).__name__, exc))

    def _degrade(self, reason: str) -> None:
        self.degraded_reason = reason
        if self.on_degrade is not None:
            self.on_degrade(self.name, reason)

    def estimate(self, observation: Observation) -> float:
        if self.degraded_reason is None:
            try:
                return self.inner.estimate(observation)
            except Exception as exc:
                self._degrade("%s: %s" % (type(exc).__name__, exc))
        try:
            return self._safe.estimate(observation)
        except Exception:
            # safe is arithmetic over two floats and should never raise;
            # if it somehow does, answer from the sound interval's midpoint
            # (progress_interval is total by construction).
            low, high = progress_interval(observation.curr, observation.bounds)
            return (low + high) / 2.0

    def interval(self, observation: Observation):
        if self.degraded_reason is None:
            try:
                return self.inner.interval(observation)
            except Exception as exc:
                self._degrade("%s: %s" % (type(exc).__name__, exc))
        try:
            return self._safe.interval(observation)
        except Exception:
            # Mirror estimate()'s total fallback: progress_interval is
            # defined for every bounds state, so interval() never escapes.
            return progress_interval(observation.curr, observation.bounds)

    def event_extras(self):
        # A degraded slot answers as safe, so the inner estimator's last
        # extras would describe estimates that were never reported.
        if self.degraded_reason is not None:
            return None
        try:
            return self.inner.event_extras()
        except Exception:
            # Extras are advisory; a buggy implementation must not degrade
            # the slot (estimates are still flowing) nor escape the sample.
            return None
