"""Exception hierarchy for the repro engine.

Every error raised on purpose by this package derives from :class:`ReproError`
so that callers can distinguish engine failures from programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A schema is malformed, or a column reference cannot be resolved."""


class CatalogError(ReproError):
    """A catalog object (table, index, statistic) is missing or duplicated."""


class StatisticsError(ReproError):
    """A statistic cannot be built or queried."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be evaluated."""


class PlanError(ReproError):
    """A physical plan is structurally invalid."""


class ExecutionError(ReproError):
    """A runtime failure while executing a plan."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(ReproError):
    """The logical query could not be translated into a physical plan."""


class ProgressError(ReproError):
    """A progress estimator was used incorrectly."""


class EstimatorConfigError(ProgressError, ValueError):
    """An estimator (or its history/toolkit) was configured with invalid
    parameters.

    Also derives from :class:`ValueError` so call sites written against the
    old untyped raise keep working.
    """


class BoundsConfigError(ProgressError, ValueError):
    """A bound-provider stack was configured with invalid parameters
    (unknown provider name, duplicates, or a stack without ``paper2005``)."""


class DegenerateBoundsError(ProgressError):
    """Runtime bounds are degenerate: zero, infinite, inverted, or stale.

    Raised only by estimators constructed with ``strict=True``; the default
    (non-strict) estimators clamp instead.  The query service catches
    exactly this type to degrade a query's toolkit to the safe estimator
    without killing the query.
    """

    def __init__(self, reason: str, curr: float, lower: float, upper: float) -> None:
        super().__init__(
            "%s (curr=%s, LB=%s, UB=%s)" % (reason, curr, lower, upper)
        )
        self.reason = reason
        self.curr = curr
        self.lower = lower
        self.upper = upper


class ServiceError(ReproError):
    """A failure inside the concurrent query service."""


class AdmissionError(ServiceError):
    """The service refused to admit a query (queue full, duplicate plan,
    or the service is shut down)."""


class QueryCancelled(ServiceError):
    """The query was cancelled cooperatively before it completed."""


class QueryTimeout(ServiceError):
    """The query exceeded its deadline and was stopped at a tick boundary."""
