"""Exception hierarchy for the repro engine.

Every error raised on purpose by this package derives from :class:`ReproError`
so that callers can distinguish engine failures from programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A schema is malformed, or a column reference cannot be resolved."""


class CatalogError(ReproError):
    """A catalog object (table, index, statistic) is missing or duplicated."""


class StatisticsError(ReproError):
    """A statistic cannot be built or queried."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be evaluated."""


class PlanError(ReproError):
    """A physical plan is structurally invalid."""


class ExecutionError(ReproError):
    """A runtime failure while executing a plan."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(ReproError):
    """The logical query could not be translated into a physical plan."""


class ProgressError(ReproError):
    """A progress estimator was used incorrectly."""
