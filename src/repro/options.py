"""`ExecutionOptions`: the single resolution path for every execution knob.

Historically each knob grew its own resolver idiom — ``resolve_engine`` in
:mod:`repro.engine.executor`, ``resolve_protocol`` in
:mod:`repro.core.runner`, ``resolve_backend``/``resolve_start_method`` in
:mod:`repro.service.procpool` — each reading its own ``REPRO_*`` environment
variable at its own call site.  Three parallel idioms meant three places for
a new entry point (the network server being the fourth) to copy, and three
places for their semantics to drift.

:class:`ExecutionOptions` collapses them: one frozen dataclass carrying every
knob, one :meth:`ExecutionOptions.resolve` method that fills unset fields
from the environment and validates the result.  **This module is the only
place in the package that reads a ``REPRO_*`` environment variable.**  The
facade (``repro.connect``), the query service, the CLI and the network
server all consume it; the old per-knob resolvers survive only as
:class:`DeprecationWarning` shims delegating here.

The module sits at the very bottom of the import graph (stdlib +
:mod:`repro.errors` only) so that the engine, runner and service layers can
all import it without cycles.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, fields, replace
from typing import Optional, Sequence, Tuple, Union

from repro.errors import (
    BoundsConfigError,
    ExecutionError,
    ProgressError,
    ServiceError,
)

#: the execution engines (see ``docs/engine.md``); all observationally
#: identical, so the choice is purely a throughput knob
ENGINES = ("fused", "interpreted", "columnar")

#: the evaluation protocols (see ``docs/api.md``): ``single_pass`` executes
#: once and labels truth at completion, ``two_pass`` keeps the legacy
#: oracle pre-run for eager live labels
PROTOCOLS = ("single_pass", "two_pass")

#: the query-service execution backends: GIL-shared worker threads, or
#: worker processes for real multi-core parallelism
BACKENDS = ("thread", "process")

#: the registered bound providers (see ``docs/bounds.md``); kept as a static
#: list so this module stays at the bottom of the import graph — a test
#: asserts it matches :func:`repro.core.bounds.provider_names`
BOUND_PROVIDERS = ("degree_seq", "paper2005")

#: the default bound-provider stack: the paper's own rules, no overlays
DEFAULT_BOUNDS = ("paper2005",)

_FALLBACKS = {
    "engine": "fused",
    "protocol": "single_pass",
    "backend": "thread",
}

#: sizing defaults applied by :meth:`ExecutionOptions.resolve`
DEFAULT_TARGET_SAMPLES = 200
DEFAULT_MAX_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 16


def _validate_bounds(bounds: Tuple[str, ...]) -> None:
    """Name-level validation of a bound-provider stack.

    Mirrors :func:`repro.core.bounds.resolve_providers` (which re-validates
    when the trackers are built) against the static name list, so a typo'd
    ``REPRO_BOUNDS`` fails at resolve time, not mid-query.
    """
    if not bounds:
        raise BoundsConfigError("bounds must name at least one provider")
    if len(set(bounds)) != len(bounds):
        raise BoundsConfigError("duplicate bound providers: %s" % (list(bounds),))
    for name in bounds:
        if name not in BOUND_PROVIDERS:
            raise BoundsConfigError(
                "unknown bound provider %r (choose from: %s)"
                % (name, ", ".join(BOUND_PROVIDERS))
            )
    if "paper2005" not in bounds:
        raise BoundsConfigError(
            "bounds must include 'paper2005' (overlay providers tighten the "
            "paper rules, they do not replace them)"
        )


@dataclass(frozen=True)
class ExecutionOptions:
    """Every execution knob, resolvable in one step.

    ``None`` fields mean "use the default": resolution order is explicit
    value → ``$REPRO_<FIELD>`` environment variable → built-in fallback.
    Instances are frozen; :meth:`resolve` and :meth:`merged` return new
    instances, so an ``ExecutionOptions`` can be shared freely between a
    session, a service and a server config.

    ========================  =======================  ==================
    field                     environment variable     fallback
    ========================  =======================  ==================
    ``engine``                ``REPRO_ENGINE``         ``"fused"``
    ``protocol``              ``REPRO_PROTOCOL``       ``"single_pass"``
    ``backend``               ``REPRO_BACKEND``        ``"thread"``
    ``start_method``          ``REPRO_START_METHOD``   ``fork``/``spawn``
    ``bounds``                ``REPRO_BOUNDS``         ``("paper2005",)``
    ``target_samples``        —                        ``200``
    ``max_workers``           —                        ``4``
    ``queue_depth``           —                        ``16``
    ========================  =======================  ==================

    ``bounds`` names the bound-provider stack (a sequence of
    :data:`BOUND_PROVIDERS` entries; the environment variable takes a
    comma-separated list, e.g. ``REPRO_BOUNDS=paper2005,degree_seq``).
    """

    engine: Optional[str] = None
    protocol: Optional[str] = None
    backend: Optional[str] = None
    start_method: Optional[str] = None
    bounds: Optional[Union[Tuple[str, ...], Sequence[str]]] = None
    target_samples: Optional[int] = None
    max_workers: Optional[int] = None
    queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        # Normalize: lists (e.g. a to_dict round-trip or a CLI split) and
        # tuples compare and hash alike once canonicalized.
        if self.bounds is not None and not isinstance(self.bounds, tuple):
            object.__setattr__(self, "bounds", tuple(self.bounds))

    # -- construction ------------------------------------------------------------

    def merged(self, **overrides) -> "ExecutionOptions":
        """A copy with the non-``None`` ``overrides`` applied.

        The merge idiom for layered configuration: a base options object
        (server config, session default) overridden by per-call keywords.
        Unknown keys raise, mirroring ``dataclasses.replace``.
        """
        filtered = {
            key: value for key, value in overrides.items() if value is not None
        }
        return replace(self, **filtered) if filtered else self

    # -- resolution --------------------------------------------------------------

    def resolve(self) -> "ExecutionOptions":
        """Fill every unset field from the environment and validate.

        Idempotent: resolving a resolved instance is a no-op.  This is the
        **only** code path in the package that reads ``REPRO_*`` variables,
        and it reads them at call time (never import time) so long-lived
        processes and test matrices can flip defaults per invocation.
        """
        engine = self.engine or self._env("REPRO_ENGINE") or _FALLBACKS["engine"]
        if engine not in ENGINES:
            raise ExecutionError(
                "unknown engine %r (expected one of %s)" % (engine, ENGINES)
            )
        protocol = (
            self.protocol or self._env("REPRO_PROTOCOL")
            or _FALLBACKS["protocol"]
        )
        if protocol not in PROTOCOLS:
            raise ProgressError(
                "unknown protocol %r (expected one of %s)"
                % (protocol, list(PROTOCOLS))
            )
        backend = (
            self.backend or self._env("REPRO_BACKEND") or _FALLBACKS["backend"]
        )
        if backend not in BACKENDS:
            raise ServiceError(
                "unknown backend %r (expected one of %s)" % (backend, BACKENDS)
            )
        available_methods = multiprocessing.get_all_start_methods()
        start_method = (
            self.start_method or self._env("REPRO_START_METHOD")
            or ("fork" if "fork" in available_methods else "spawn")
        )
        if start_method not in available_methods:
            raise ServiceError(
                "unknown start method %r (available on this platform: %s)"
                % (start_method, available_methods)
            )
        if self.bounds is not None:
            bounds = tuple(self.bounds)
        else:
            env_bounds = self._env("REPRO_BOUNDS")
            bounds = (
                tuple(
                    name.strip() for name in env_bounds.split(",")
                    if name.strip()
                )
                if env_bounds
                else DEFAULT_BOUNDS
            )
        _validate_bounds(bounds)
        target_samples = (
            self.target_samples if self.target_samples is not None
            else DEFAULT_TARGET_SAMPLES
        )
        if target_samples < 1:
            raise ProgressError("target_samples must be >= 1")
        max_workers = (
            self.max_workers if self.max_workers is not None
            else DEFAULT_MAX_WORKERS
        )
        if max_workers < 1:
            raise ServiceError("max_workers must be >= 1")
        queue_depth = (
            self.queue_depth if self.queue_depth is not None
            else DEFAULT_QUEUE_DEPTH
        )
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        return ExecutionOptions(
            engine=engine,
            protocol=protocol,
            backend=backend,
            start_method=start_method,
            bounds=bounds,
            target_samples=target_samples,
            max_workers=max_workers,
            queue_depth=queue_depth,
        )

    @property
    def resolved(self) -> bool:
        """True when every field is concrete (i.e. ``resolve`` ran)."""
        return all(
            getattr(self, field.name) is not None for field in fields(self)
        )

    @staticmethod
    def _env(name: str) -> Optional[str]:
        # Empty strings count as unset for every knob, so e.g.
        # ``REPRO_ENGINE= pytest …`` behaves like an absent variable.
        return os.environ.get(name) or None

    def to_dict(self) -> dict:
        values = {
            field.name: getattr(self, field.name) for field in fields(self)
        }
        if values["bounds"] is not None:
            # JSON-friendly: the wire formats (server config, procpool
            # payloads) round-trip lists, not tuples.
            values["bounds"] = list(values["bounds"])
        return values
