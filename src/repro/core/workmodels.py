"""Alternative models of work: getnext calls vs. bytes processed (§2.2).

The paper proves everything under the GetNext model and remarks that the
results "would be equally applicable" to the bytes-processed model of Luo
et al. [13].  This module makes that claim executable: a :class:`WorkModel`
assigns each counted operator a weight (1 for GetNext; the operator's
estimated output row width for Bytes), and :class:`WeightedObservation`
re-expresses Curr/LB/UB in weighted units so the unchanged estimator
formulas run under either model.

Soundness carries over directly: if ``lb_i ≤ total_i ≤ ub_i`` per node,
then ``Σ w_i·lb_i ≤ Σ w_i·total_i ≤ Σ w_i·ub_i`` for any non-negative
weights — which is exactly why the paper's bounds arguments are
model-agnostic.
"""

from __future__ import annotations

import abc
import math
from typing import Dict

from repro.core.bounds import BoundsSnapshot
from repro.engine.operators.base import Operator
from repro.engine.plan import Plan
from repro.storage.schema import ColumnType

#: nominal byte widths per column type (fixed-width model, like [13]'s
#: per-row byte accounting)
TYPE_WIDTHS = {
    ColumnType.INT: 8,
    ColumnType.FLOAT: 8,
    ColumnType.BOOL: 1,
    ColumnType.STR: 24,
    ColumnType.DATE: 10,
}


class WorkModel(abc.ABC):
    """Assigns a per-row work weight to every counted operator."""

    name: str = "model"

    @abc.abstractmethod
    def weight(self, operator: Operator) -> float:
        """Work units contributed by one getnext call on ``operator``."""

    def weights_for(self, plan: Plan) -> Dict[int, float]:
        return {op.operator_id: self.weight(op) for op in plan.operators()}


class GetNextModel(WorkModel):
    """The paper's primary model: every counted call is one unit."""

    name = "getnext"

    def weight(self, operator: Operator) -> float:
        return 1.0


class BytesModel(WorkModel):
    """Luo et al.'s model: work = bytes of the rows flowing through."""

    name = "bytes"

    def weight(self, operator: Operator) -> float:
        return float(sum(
            TYPE_WIDTHS[column.type] for column in operator.schema
        ))


class WeightedWork:
    """Re-expresses ticks and bounds of a plan under a work model."""

    def __init__(self, plan: Plan, model: WorkModel) -> None:
        self.plan = plan
        self.model = model
        self._weights = model.weights_for(plan)

    def current(self) -> float:
        """Weighted work done so far (from live operator counters)."""
        return sum(
            self._weights[op.operator_id] * op.rows_produced
            for op in self.plan.operators()
        )

    def weighted_bounds(self, snapshot: BoundsSnapshot) -> BoundsSnapshot:
        """A cardinality BoundsSnapshot re-weighted into work units.

        ``curr`` stays a float: truncating it to int used to break the
        Curr ≤ LB invariant check by up to a full work unit under the
        bytes model.
        """
        lower = math.fsum(
            self._weights.get(operator_id, 1.0) * bounds.lower
            for operator_id, bounds in snapshot.per_node.items()
        )
        upper = math.fsum(
            self._weights.get(operator_id, 1.0) * bounds.upper
            for operator_id, bounds in snapshot.per_node.items()
        )
        curr = self.current()
        lower = max(lower, curr)
        upper = max(upper, lower)
        return BoundsSnapshot(curr, lower, upper, snapshot.per_node)

    def total(self) -> float:
        """Weighted ``total(Q)`` — runs the plan once (evaluation oracle)."""
        from repro.engine.monitor import ExecutionMonitor
        from repro.engine.operators.base import ExecutionContext

        monitor = ExecutionMonitor()
        context = ExecutionContext(monitor)
        for _ in self.plan.root.iterate(context):
            pass
        return sum(
            self._weights.get(operator_id, 1.0) * count
            for operator_id, count in monitor.counts().items()
        )
