"""The paper's contribution: the GetNext work model, runtime cardinality
bounds, pipeline decomposition, and the dne/pmax/safe estimator tool-kit."""

from repro.core.bounds import BoundsSnapshot, BoundsTracker, NodeBounds
from repro.core.estimators import (
    DneBoundedEstimator,
    DneEstimator,
    FeedbackEstimator,
    HybridMuEstimator,
    HybridVarianceEstimator,
    Observation,
    PmaxEstimator,
    ProgressEstimator,
    QueryHistory,
    SafeEstimator,
    TrivialEstimator,
    full_toolkit,
    plan_signature,
    standard_toolkit,
)
from repro.core.workmodels import BytesModel, GetNextModel, WeightedWork, WorkModel
from repro.core.threshold import (
    ThresholdAnswer,
    ThresholdMonitor,
    ThresholdReading,
    threshold_accuracy,
)
from repro.core.metrics import ProgressTrace, TraceSample, ratio_error
from repro.core.model import (
    DriverWorkProfile,
    driver_work_profile,
    mu,
    progress_of,
    scanned_input_cardinality,
    total_work,
)
from repro.core.pipelines import Pipeline, current_pipeline, decompose, pipeline_of
from repro.core.runner import ProgressReport, ProgressRunner, run_with_estimators

__all__ = [
    "BoundsSnapshot",
    "BytesModel",
    "BoundsTracker",
    "DneBoundedEstimator",
    "DneEstimator",
    "FeedbackEstimator",
    "DriverWorkProfile",
    "GetNextModel",
    "HybridMuEstimator",
    "HybridVarianceEstimator",
    "NodeBounds",
    "Observation",
    "Pipeline",
    "PmaxEstimator",
    "ProgressEstimator",
    "ProgressReport",
    "ProgressRunner",
    "ProgressTrace",
    "QueryHistory",
    "SafeEstimator",
    "ThresholdAnswer",
    "ThresholdMonitor",
    "ThresholdReading",
    "TraceSample",
    "TrivialEstimator",
    "WeightedWork",
    "WorkModel",
    "current_pipeline",
    "decompose",
    "driver_work_profile",
    "full_toolkit",
    "mu",
    "pipeline_of",
    "plan_signature",
    "progress_of",
    "ratio_error",
    "run_with_estimators",
    "scanned_input_cardinality",
    "standard_toolkit",
    "threshold_accuracy",
    "total_work",
]
