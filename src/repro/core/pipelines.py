"""Pipeline decomposition and driver-node identification (§4.1).

A *pipeline* is a maximal set of concurrently executing operators; blocking
operators (sort, the build phase of a hash join, hash aggregation) cut the
plan into pipelines that run in a partial order.  Each pipeline is *driven*
by its input node(s): the node whose consumed fraction the dne estimator
reads.

Decomposition rules for this engine's operators:

* leaves (table scan, row source, index seek) start a pipeline as drivers;
* σ, π, stream-γ, distinct, limit stay in their child's pipeline;
* sort and hash-γ terminate their child's pipeline and *drive* a new one;
* hash join's build child terminates its own pipeline at the join; the join
  output belongs to the probe child's pipeline;
* ⋈NL and ⋈INL stay in the *outer* child's pipeline; a ⋈NL's entire inner
  subtree is swallowed into that same pipeline (its rescans are interleaved
  work, not an independent input);
* merge join and union-all produce multi-driver pipelines — the case the
  paper's footnote 1 sets aside; we support it by summing driver fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.operators.aggregate import HashAggregate
from repro.engine.operators.base import LeafOperator, Operator
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.index_seek import IndexSeek
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.misc import UnionAll
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.sort import Sort
from repro.engine.operators.topn import TopN
from repro.engine.plan import Plan


@dataclass
class Pipeline:
    """One pipeline: its operators, its driver nodes, and its consumer."""

    index: int
    operators: List[Operator] = field(default_factory=list)
    drivers: List[Operator] = field(default_factory=list)
    #: the blocking operator that consumes this pipeline's output, if any
    consumer: Optional[Operator] = None

    def contains(self, operator: Operator) -> bool:
        return any(op is operator for op in self.operators)

    # -- runtime state -----------------------------------------------------------

    def driver_total(self, estimates: Optional[Dict[int, float]] = None) -> float:
        """Expected number of tuples the drivers will produce in total.

        Exact for leaves (catalog cardinalities / index match counts) and
        for blocking drivers that finished materializing; otherwise falls
        back to the optimizer estimate for that node.
        """
        total = 0.0
        for driver in self.drivers:
            total += _driver_node_total(driver, estimates)
        return total

    def driver_consumed(self) -> int:
        """Tuples retrieved from the drivers so far."""
        return sum(driver.rows_produced for driver in self.drivers)

    def driver_fraction(self, estimates: Optional[Dict[int, float]] = None) -> float:
        """dne's core quantity: fraction of the driver input consumed."""
        if all(driver.finished for driver in self.drivers):
            return 1.0
        total = self.driver_total(estimates)
        if total <= 0:
            return 1.0 if self.started() else 0.0
        return min(1.0, self.driver_consumed() / total)

    def started(self) -> bool:
        return self.driver_consumed() > 0

    def finished(self) -> bool:
        return all(driver.finished for driver in self.drivers)

    def __repr__(self) -> str:
        return "Pipeline(%d: drivers=%s, %d operators)" % (
            self.index,
            [driver.label() for driver in self.drivers],
            len(self.operators),
        )


def _driver_node_total(driver: Operator, estimates: Optional[Dict[int, float]]) -> float:
    hint = runtime_output_hint(driver, estimates)
    return hint if hint is not None else 0.0


#: type → small dispatch code for :func:`runtime_output_hint`.  The hint
#: runs several times per progress sample; repeated ``isinstance`` checks
#: against ABC-backed operator classes dominate its cost, so the class is
#: classified once and remembered.
_HINT_LEAF, _HINT_SEEK, _HINT_SORT, _HINT_TOPN, _HINT_AGG, _HINT_OTHER = (
    range(6)
)
_HINT_KINDS: Dict[type, int] = {}


def _hint_kind(cls: type) -> int:
    kind = _HINT_KINDS.get(cls)
    if kind is None:
        if issubclass(cls, (TableScan, RowSource)):
            kind = _HINT_LEAF
        elif issubclass(cls, IndexSeek):
            kind = _HINT_SEEK
        elif issubclass(cls, TopN):
            kind = _HINT_TOPN
        elif issubclass(cls, Sort):
            kind = _HINT_SORT
        elif issubclass(cls, HashAggregate):
            kind = _HINT_AGG
        else:
            kind = _HINT_OTHER
        _HINT_KINDS[cls] = kind
    return kind


def runtime_output_hint(
    operator: Operator, estimates: Optional[Dict[int, float]]
) -> Optional[float]:
    """Best current guess of an operator's final output cardinality.

    Exact for finished operators, leaves and materialized blocking
    operators; live for aggregates (groups seen so far grow during the
    build — execution feedback the estimators are allowed to use); the
    optimizer estimate otherwise.  No guarantee attaches to the last case.
    """
    if operator.finished:
        return float(operator.rows_produced)
    kind = _hint_kind(operator.__class__)
    if kind == _HINT_LEAF:
        return float(operator.base_cardinality())
    if kind == _HINT_SEEK:
        return float(operator.exact_match_count())
    if kind == _HINT_SORT or kind == _HINT_TOPN:
        materialized = operator.materialized_count()
        if materialized is not None:
            return float(materialized)
        if kind == _HINT_TOPN:
            child_hint = runtime_output_hint(operator.child, estimates)
            if child_hint is not None:
                return min(float(operator.limit), child_hint)
            return float(operator.limit)
        return runtime_output_hint(operator.child, estimates)
    if kind == _HINT_AGG:
        if not operator.group_by:
            return 1.0
        if operator.input_consumed:
            return float(operator.groups_seen())
        # The group count only grows; once the build is underway it is a
        # far better forecast than the optimizer's grouping-fraction guess.
        if operator.groups_seen() > 0:
            return float(operator.groups_seen())
    if estimates is not None and operator.operator_id in estimates:
        return max(estimates[operator.operator_id], float(operator.rows_produced))
    if operator.rows_produced > 0:
        return float(operator.rows_produced)
    return None


def decompose(plan: Plan) -> List[Pipeline]:
    """Split ``plan`` into pipelines, in rough execution order."""
    pipelines: List[Pipeline] = []

    def new_pipeline(driver: Operator) -> Pipeline:
        pipeline = Pipeline(index=len(pipelines))
        pipeline.drivers.append(driver)
        pipeline.operators.append(driver)
        pipelines.append(pipeline)
        return pipeline

    def swallow(pipeline: Pipeline, node: Operator) -> None:
        """Absorb an entire subtree into ``pipeline`` (⋈NL inner sides)."""
        for descendant in node.walk():
            if not pipeline.contains(descendant):
                pipeline.operators.append(descendant)

    def visit(node: Operator) -> Pipeline:
        """Return the pipeline that ``node``'s *output* ticks belong to."""
        if isinstance(node, LeafOperator):
            return new_pipeline(node)
        if isinstance(node, (Sort, HashAggregate, TopN)):
            child_pipeline = visit(node.children[0])
            child_pipeline.consumer = node
            return new_pipeline(node)
        if isinstance(node, HashJoin):
            build_pipeline = visit(node.build_child)
            build_pipeline.consumer = node
            probe_pipeline = visit(node.probe_child)
            probe_pipeline.operators.append(node)
            return probe_pipeline
        if isinstance(node, NestedLoopsJoin):
            outer_pipeline = visit(node.left)
            swallow(outer_pipeline, node.right)
            outer_pipeline.operators.append(node)
            return outer_pipeline
        if isinstance(node, IndexNestedLoopsJoin):
            outer_pipeline = visit(node.child)
            outer_pipeline.operators.append(node)
            return outer_pipeline
        if isinstance(node, MergeJoin):
            left_pipeline = visit(node.left)
            right_pipeline = visit(node.right)
            return _merge(pipelines, left_pipeline, right_pipeline, node)
        if isinstance(node, UnionAll):
            merged = visit(node.children[0])
            for child in node.children[1:]:
                merged = _merge(pipelines, merged, visit(child), None)
            merged.operators.append(node)
            return merged
        # Unary streaming operators: σ, π, stream-γ, distinct, limit.
        pipeline = visit(node.children[0])
        pipeline.operators.append(node)
        return pipeline

    visit(plan.root)
    return pipelines


def _merge(
    pipelines: List[Pipeline],
    left: Pipeline,
    right: Pipeline,
    tail: Optional[Operator],
) -> Pipeline:
    """Fuse two pipelines into one multi-driver pipeline (merge join, union)."""
    left.operators.extend(op for op in right.operators if not left.contains(op))
    left.drivers.extend(driver for driver in right.drivers if driver not in left.drivers)
    pipelines.remove(right)
    for i, pipeline in enumerate(pipelines):
        pipeline.index = i
    if tail is not None:
        left.operators.append(tail)
    return left


def pipeline_of(pipelines: List[Pipeline], operator: Operator) -> Optional[Pipeline]:
    """The pipeline whose output ticks include ``operator``'s, if any."""
    for pipeline in pipelines:
        if pipeline.contains(operator):
            return pipeline
    return None


def current_pipeline(pipelines: List[Pipeline]) -> Optional[Pipeline]:
    """The earliest pipeline that has started but not finished."""
    for pipeline in pipelines:
        if pipeline.started() and not pipeline.finished():
            return pipeline
    for pipeline in pipelines:
        if not pipeline.finished():
            return pipeline
    return None
