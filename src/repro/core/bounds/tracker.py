"""The two bounds trackers: incremental production + full-recompute oracle.

Both trackers execute the ``paper2005`` rule set natively (see
:mod:`repro.core.bounds.paper2005` — :func:`_derive` spells the rules out
once, :func:`_compile_derive` specializes them per node):

* :class:`BoundsTracker` — the production tracker.  It caches every static
  quantity at construction (catalog cardinalities, histogram bucket sums,
  predicate shapes, dispatch tags), compiles one visitor closure per node
  with its rule, statics and children bound in, and, once
  :meth:`BoundsTracker.attach`\\ ed to an
  :class:`~repro.engine.monitor.ExecutionMonitor`, consumes the monitor's
  event stream to maintain a running ``Curr`` and a dirty set, so each
  :meth:`~BoundsTracker.snapshot` only re-derives bounds for subtrees
  whose runtime counters actually changed.
* :class:`ReferenceBoundsTracker` — the full-recompute oracle: it re-walks
  the whole plan and re-resolves every statistic on every call, exactly like
  the original implementation.  Equivalence tests assert the incremental
  tracker is bit-identical to it at every sampled instant; the overhead
  benchmark uses it as the per-sample cost baseline.

Overlay providers (``bounds=["paper2005", "degree_seq"]``) plug in as a
snapshot post-step: their per-node caps are composed once at construction
(they declare the ``"static"`` maintenance contract, so nothing about them
changes while the query runs and the incremental dirty-set memo stays
valid), and each snapshot intersects them into a *copy* of the per-node
map before re-summing the totals.  With the default stack the caps map is
empty and the snapshot path is exactly the pre-overlay code.  Both
trackers run the identical post-step over bit-identical inputs, so the
incremental/reference equivalence guarantee survives with overlays active.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bounds.model import BoundRefinement, BoundsSnapshot, NodeBounds
from repro.core.bounds.paper2005 import (
    _AGG_HASH,
    _HASH_JOIN,
    _LIMIT,
    _NL_JOIN,
    _SCAN,
    _SORT,
    _TOPN,
    _classify,
    _compile_derive,
    _compile_derive_std,
    _derive,
    _static_payload,
)
from repro.core.bounds.providers import (
    apply_caps,
    compose_caps,
    resolve_providers,
)
from repro.engine.monitor import (
    EVENT_RESET,
    EVENT_TICK,
    ExecutionMonitor,
)
from repro.engine.operators.base import Operator
from repro.engine.plan import Plan
from repro.storage.catalog import Catalog


def _compose(
    plan: Plan,
    catalog: Optional[Catalog],
    bounds: Optional[Sequence[str]],
) -> Tuple[
    Tuple[object, ...],
    Dict[int, Tuple[Optional[float], Optional[float], str]],
    Dict[int, str],
]:
    """Shared constructor tail: resolve the stack, compose the static caps."""
    providers = resolve_providers(bounds)
    caps = compose_caps(plan, catalog, providers)
    describe = (
        {op.operator_id: type(op).__name__ for op in plan.operators()}
        if caps
        else {}
    )
    return providers, caps, describe


class BoundsTracker:
    """Incremental :class:`BoundsSnapshot` producer for a plan.

    Construction caches every static quantity and compiles one specialized
    visitor closure per node (see :func:`_compile_derive`).  :meth:`attach`
    subscribes to a monitor's event stream; from then on each
    tick/finish/rewind marks the event's operator and its ancestors dirty,
    and :meth:`snapshot` re-derives bounds only for dirty subtrees whose
    execution context changed — clean subtrees are answered from the memo in
    O(1).  Unattached, every snapshot is a full recompute (still benefiting
    from the static caches and the compiled visitors).
    """

    def __init__(
        self,
        plan: Plan,
        catalog: Optional[Catalog] = None,
        bounds: Optional[Sequence[str]] = None,
    ) -> None:
        self.plan = plan
        self.catalog = catalog
        self.providers, self._caps, self._describe = _compose(
            plan, catalog, bounds
        )
        #: overlay refinements applied by the most recent snapshot
        self.last_refinements: List[BoundRefinement] = []
        # -- static caches (never change during execution) ----------------------
        self._ops: List[Operator] = list(plan.operators())
        self._count = len(self._ops)
        self._idx: Dict[int, int] = {
            op.operator_id: i for i, op in enumerate(self._ops)
        }
        self._kinds: List[int] = [_classify(op) for op in self._ops]
        self._statics: List[object] = [
            _static_payload(op, kind, catalog)
            for op, kind in zip(self._ops, self._kinds)
        ]
        self._parent_idx: List[int] = [-1] * self._count
        self._subtree_idx: List[List[int]] = []
        for i, op in enumerate(self._ops):
            for child in op.children:
                self._parent_idx[self._idx[child.operator_id]] = i
            self._subtree_idx.append([
                self._idx[descendant.operator_id]
                for descendant in op.walk()
                if descendant is not op
            ])
        self._root_idx = self._idx[plan.root.operator_id]
        self._all_true = (True,) * self._count
        self._all_false = (False,) * self._count
        # -- incremental runtime state ------------------------------------------
        # The compiled visitors capture these list/dict objects by reference:
        # they must only ever be mutated in place, never rebound.
        self._monitor: Optional[ExecutionMonitor] = None
        self._curr = 0
        self._dirty: List[bool] = [True] * self._count
        self._any_dirty = True
        self._ctx_valid: List[bool] = [False] * self._count
        self._total_lo: List[float] = [0.0] * self._count
        self._total_hi: List[float] = [0.0] * self._count
        self._node_bounds: List[Optional[NodeBounds]] = [None] * self._count
        self._per_node: Dict[int, NodeBounds] = {}
        self._visitors: List[Callable] = [None] * self._count
        self._build_visitor(plan.root)
        self._root_visit = self._visitors[self._root_idx]

    # -- monitor wiring ------------------------------------------------------------

    def attach(self, monitor: ExecutionMonitor) -> None:
        """Feed this tracker from ``monitor``'s event stream.

        Resets all runtime state: attach before the monitored execution
        begins (the runner does this for every run).
        """
        self.detach()
        self._monitor = monitor
        # The batch channel: per-event work here is additive (curr) or
        # idempotent (dirty marking), so coalesced ticks from the fused
        # engine's record_batch are exact — and the interpreted engine
        # delivers the same events with n == 1.
        monitor.add_batch_listener(self._on_batch)
        self._reset_runtime()

    def detach(self) -> None:
        if self._monitor is not None:
            self._monitor.remove_batch_listener(self._on_batch)
            self._monitor = None

    @property
    def curr(self) -> int:
        """Running counted-getnext total (only meaningful while attached)."""
        return self._curr

    def _reset_runtime(self) -> None:
        self._curr = 0
        self._dirty[:] = self._all_true
        self._any_dirty = True
        self._ctx_valid[:] = self._all_false
        self._node_bounds[:] = (None,) * self._count
        self._per_node.clear()

    def _on_event(self, operator_id: int, event: str) -> None:
        self._on_batch(operator_id, event, 1 if event == EVENT_TICK else 0)

    def _on_batch(self, operator_id: int, event: str, n: int) -> None:
        if event == EVENT_RESET:
            self._reset_runtime()
            return
        i = self._idx.get(operator_id)
        if i is None:
            return
        if event == EVENT_TICK:
            self._curr += n
        # tick, finish and rewind all invalidate the node and its ancestors;
        # stop as soon as an already-dirty ancestor is found (its own
        # ancestors are dirty by induction).
        dirty = self._dirty
        parent = self._parent_idx
        while i >= 0 and not dirty[i]:
            dirty[i] = True
            i = parent[i]
        self._any_dirty = True

    # -- public ------------------------------------------------------------------

    def snapshot(self) -> BoundsSnapshot:
        if self._monitor is None:
            # No event feed: nothing tells us what changed, so everything is
            # presumed dirty and curr is re-summed from live counters.
            self._dirty[:] = self._all_true
            self._any_dirty = True
            curr = sum(op.rows_produced for op in self._ops)
        else:
            curr = self._curr
        if self._any_dirty:
            self._root_visit(1.0, 1.0, True, True)
            self._dirty[:] = self._all_false
            self._any_dirty = False
        if self._caps:
            # Overlay post-step: intersect the static caps into a copy of
            # the per-node map (the memo keeps the pure paper2005 entries)
            # and re-sum.  fsum over the map's values equals fsum over the
            # totals lists — after the first visit the map has exactly one
            # entry per operator, holding the same floats.
            per_node = dict(self._per_node)
            self.last_refinements = apply_caps(
                per_node, self._caps, self._describe
            )
            lower = math.fsum(entry.lower for entry in per_node.values())
            upper = math.fsum(entry.upper for entry in per_node.values())
            lower = max(lower, float(curr))
            upper = max(upper, lower)
            snap = BoundsSnapshot.__new__(BoundsSnapshot)
            fields = snap.__dict__
            fields["curr"] = curr
            fields["lower"] = lower
            fields["upper"] = upper
            fields["per_node"] = per_node
            return snap
        # math.fsum is exactly rounded and therefore order-independent: the
        # incremental and reference trackers agree bit-for-bit even though
        # they accumulate per-node entries in different orders.
        lower = math.fsum(self._total_lo)
        upper = math.fsum(self._total_hi)
        # The work already done is itself a lower bound on the total.
        lower = max(lower, float(curr))
        upper = max(upper, lower)
        # A frozen dataclass funnels __init__ through object.__setattr__;
        # populating __dict__ directly halves the cost of this hot exit
        # path and yields an indistinguishable instance.
        snap = BoundsSnapshot.__new__(BoundsSnapshot)
        fields = snap.__dict__
        fields["curr"] = curr
        fields["lower"] = lower
        fields["upper"] = upper
        fields["per_node"] = dict(self._per_node)
        return snap

    def snapshot_full(self) -> BoundsSnapshot:
        """Force a full recompute (bypasses the dirty-set memo)."""
        self._dirty[:] = self._all_true
        self._any_dirty = True
        return self.snapshot()

    def dirty_flags(self) -> Tuple[bool, ...]:
        """The current dirty-flag vector (pre-order), for diagnostics and
        benchmark replay (see :meth:`restore_dirty`)."""
        return tuple(self._dirty)

    def restore_dirty(self, flags: Tuple[bool, ...]) -> None:
        """Restore a vector captured by :meth:`dirty_flags`.

        The overhead benchmark uses this to re-run the exact per-sample
        recompute several times at one paused instant: a second plain
        :meth:`snapshot` would be answered from the memo and measure
        nothing.
        """
        if len(flags) != self._count:
            raise ValueError("dirty-flag vector does not match this plan")
        self._dirty[:] = flags
        self._any_dirty = True in flags

    # -- compiled recursion --------------------------------------------------------

    def _build_visitor(self, node: Operator, standard: bool = True) -> Callable:
        """Compile the visitor closure for ``node`` (children first).

        The visitor wraps the node's specialized derive rule with the memo
        check, the finished-subtree freeze and the total-bounds
        bookkeeping; all per-node state lives in closure cells or captured
        lists, so a visit touches no ``self``.

        ``standard`` tracks, at compile time, whether this node can only
        ever be visited under the root context ``(1.0, 1.0, True, True)``.
        The root is; blocking drains (sort, top-n, hash aggregate, hash-join
        build) re-impose it on their child whatever their own context is;
        streaming edges preserve it; only a LIMIT's child (loses
        ``full_scan``) and a ⋈NL's inner (loses ``single_exec``) break it.
        Standard nodes get a leaner visitor: the 4-field context memo
        degenerates to the dirty bit and the derive rule comes from
        :func:`_compile_derive_std` with the context constants folded.
        """
        i = self._idx[node.operator_id]
        kind = self._kinds[i]
        children = node.children
        if kind == _SORT or kind == _TOPN or kind == _AGG_HASH:
            child_standard = [True] * len(children)
        elif kind == _HASH_JOIN:
            child_standard = [True, standard]
        elif kind == _NL_JOIN:
            child_standard = [standard, False]
        elif kind == _LIMIT:
            child_standard = [False] * len(children)
        else:
            child_standard = [standard] * len(children)
        child_visits = [
            self._build_visitor(child, child_std)
            for child, child_std in zip(children, child_standard)
        ]
        dirty = self._dirty
        ctx_valid = self._ctx_valid
        node_bounds = self._node_bounds
        per_node = self._per_node
        total_lo = self._total_lo
        total_hi = self._total_hi
        op_id = node.operator_id
        subtree = [
            (j, self._ops[j], self._ops[j].operator_id)
            for j in self._subtree_idx[i]
        ]

        def freeze() -> None:
            # A finished node is never pulled again, so nothing below it can
            # do further work either: freeze the whole subtree at its
            # current tick counts.  (This also nails the case of a finished
            # LIMIT whose descendants stopped mid-stream without finishing.)
            for j, sub_op, sub_id in subtree:
                ticks = float(sub_op.rows_produced)
                entry = node_bounds[j]
                if entry is None or entry.lower != ticks or entry.upper != ticks:
                    entry = NodeBounds.__new__(NodeBounds)
                    entry.__dict__["lower"] = ticks
                    entry.__dict__["upper"] = ticks
                    node_bounds[j] = entry
                    per_node[sub_id] = entry
                total_lo[j] = ticks
                total_hi[j] = ticks
                # The frozen entries bypass the memo bookkeeping; drop the
                # descendants' contexts so a later un-freeze (⋈NL rewind)
                # can never wrongly reuse pre-freeze memos.
                ctx_valid[j] = False

        if standard and kind == _SCAN:
            n = self._statics[i]
            scan_memo = [0.0, 0.0]

            def visit(
                exec_lower: float,
                exec_upper: float,
                single_exec: bool,
                full_scan: bool,
            ) -> Tuple[float, float]:
                # A scan is a leaf (nothing to freeze) and its standard
                # per-pass bounds are the constant (n, n), so the whole
                # derive step folds away.
                if not dirty[i] and ctx_valid[i]:
                    return scan_memo[0], scan_memo[1]
                if node.finished:
                    lower = upper = float(node.rows_produced)
                else:
                    lower = upper = n
                ticks = float(node.rows_produced)
                total_lower = lower if lower >= ticks else ticks
                total_upper = upper if upper >= total_lower else total_lower
                entry = node_bounds[i]
                if (
                    entry is None
                    or entry.lower != total_lower
                    or entry.upper != total_upper
                ):
                    entry = NodeBounds.__new__(NodeBounds)
                    entry.__dict__["lower"] = total_lower
                    entry.__dict__["upper"] = total_upper
                    node_bounds[i] = entry
                    per_node[op_id] = entry
                total_lo[i] = total_lower
                total_hi[i] = total_upper
                ctx_valid[i] = True
                scan_memo[0] = lower
                scan_memo[1] = upper
                return lower, upper

            self._visitors[i] = visit
            return visit

        if standard:
            derive_std = _compile_derive_std(
                node, kind, self._statics[i], child_visits
            )
            # memoized per-pass return: lower, upper
            memo_std = [0.0, 0.0]

            def visit(
                exec_lower: float,
                exec_upper: float,
                single_exec: bool,
                full_scan: bool,
            ) -> Tuple[float, float]:
                # The context is compile-time constant for this node, so a
                # clean subtree needs no context comparison at all.
                if not dirty[i] and ctx_valid[i]:
                    return memo_std[0], memo_std[1]
                if node.finished:
                    freeze()
                    lower = upper = float(node.rows_produced)
                else:
                    lower, upper = derive_std()
                ticks = float(node.rows_produced)
                # Folded from max(lower * 1.0, ticks): `max` returns its
                # first argument on ties, so the conditional is
                # value-identical.
                total_lower = lower if lower >= ticks else ticks
                total_upper = upper if upper >= total_lower else total_lower
                entry = node_bounds[i]
                if (
                    entry is None
                    or entry.lower != total_lower
                    or entry.upper != total_upper
                ):
                    entry = NodeBounds.__new__(NodeBounds)
                    entry.__dict__["lower"] = total_lower
                    entry.__dict__["upper"] = total_upper
                    node_bounds[i] = entry
                    per_node[op_id] = entry
                total_lo[i] = total_lower
                total_hi[i] = total_upper
                ctx_valid[i] = True
                memo_std[0] = lower
                memo_std[1] = upper
                return lower, upper

            self._visitors[i] = visit
            return visit

        derive = _compile_derive(node, kind, self._statics[i], child_visits)
        # memoized context and per-pass return: el, eu, se, fs, lower, upper
        memo = [0.0, 0.0, False, False, 0.0, 0.0]

        def visit(
            exec_lower: float,
            exec_upper: float,
            single_exec: bool,
            full_scan: bool,
        ) -> Tuple[float, float]:
            if (
                not dirty[i]
                and ctx_valid[i]
                and memo[0] == exec_lower
                and memo[1] == exec_upper
                and memo[2] == single_exec
                and memo[3] == full_scan
            ):
                # Nothing in this subtree changed and it executes under the
                # same context: the memoized per-pass bounds and every
                # per-node entry below are still exact.
                return memo[4], memo[5]
            if single_exec and node.finished:
                freeze()
                lower = upper = float(node.rows_produced)
            else:
                lower, upper = derive(
                    exec_lower, exec_upper, single_exec, full_scan
                )
            ticks = float(node.rows_produced)
            total_lower = max(lower * exec_lower, ticks)
            total_upper = max(upper * exec_upper, total_lower)
            entry = node_bounds[i]
            if (
                entry is None
                or entry.lower != total_lower
                or entry.upper != total_upper
            ):
                entry = NodeBounds.__new__(NodeBounds)
                entry.__dict__["lower"] = total_lower
                entry.__dict__["upper"] = total_upper
                node_bounds[i] = entry
                per_node[op_id] = entry
            total_lo[i] = total_lower
            total_hi[i] = total_upper
            ctx_valid[i] = True
            memo[0] = exec_lower
            memo[1] = exec_upper
            memo[2] = single_exec
            memo[3] = full_scan
            memo[4] = lower
            memo[5] = upper
            return lower, upper

        self._visitors[i] = visit
        return visit


class ReferenceBoundsTracker:
    """Full-recompute oracle: re-walks the plan and re-resolves statistics
    on every snapshot, exactly like the pre-incremental implementation.

    Kept as the ground truth for equivalence tests and as the baseline the
    sampling-overhead benchmark measures the incremental tracker against.
    """

    def __init__(
        self,
        plan: Plan,
        catalog: Optional[Catalog] = None,
        bounds: Optional[Sequence[str]] = None,
    ) -> None:
        self.plan = plan
        self.catalog = catalog
        self.providers, self._caps, self._describe = _compose(
            plan, catalog, bounds
        )
        self.last_refinements: List[BoundRefinement] = []

    def snapshot(self) -> BoundsSnapshot:
        per_node: Dict[int, NodeBounds] = {}
        self._visit(self.plan.root, 1.0, 1.0, True, True, per_node)
        curr = sum(op.rows_produced for op in self.plan.operators())
        if self._caps:
            self.last_refinements = apply_caps(
                per_node, self._caps, self._describe
            )
        lower = math.fsum(bounds.lower for bounds in per_node.values())
        upper = math.fsum(bounds.upper for bounds in per_node.values())
        # The work already done is itself a lower bound on the total.
        lower = max(lower, float(curr))
        upper = max(upper, lower)
        return BoundsSnapshot(curr, lower, upper, per_node)

    def _visit(
        self,
        node: Operator,
        exec_lower: float,
        exec_upper: float,
        single_exec: bool,
        full_scan: bool,
        out: Dict[int, NodeBounds],
    ) -> Tuple[float, float]:
        produced = node.rows_produced if single_exec else 0
        if node.finished and single_exec:
            for descendant in node.walk():
                if descendant is node:
                    continue
                ticks = float(descendant.rows_produced)
                out[descendant.operator_id] = NodeBounds(ticks, ticks)
            lower = upper = float(produced)
        else:
            kind = _classify(node)

            def visit(
                child: Operator,
                child_exec_lower: float,
                child_exec_upper: float,
                child_single_exec: bool,
                child_full_scan: bool,
            ) -> Tuple[float, float]:
                return self._visit(
                    child,
                    child_exec_lower,
                    child_exec_upper,
                    child_single_exec,
                    child_full_scan,
                    out,
                )

            lower, upper = _derive(
                node,
                kind,
                _static_payload(node, kind, self.catalog),
                produced,
                single_exec,
                full_scan,
                exec_lower,
                exec_upper,
                visit,
            )
        ticks = float(node.rows_produced)
        total_lower = max(lower * exec_lower, ticks)
        total_upper = max(upper * exec_upper, total_lower)
        out[node.operator_id] = NodeBounds(total_lower, total_upper)
        return lower, upper
