"""Runtime lower/upper bounds on operator cardinalities (§5.1).

At any instant during execution the :class:`BoundsTracker` computes, for
every operator, guaranteed bounds on the *total* number of counted getnext
calls that operator will have performed by the end of the query.  Summed
over the plan, these give ``LB`` and ``UB`` with the invariant

    Curr ≤ LB ≤ total(Q) ≤ UB

which pmax (``Curr/LB``) and safe (``Curr/√(LB·UB)``) consume directly.

The package splits along the provider seam:

* :mod:`repro.core.bounds.model` — :class:`NodeBounds`,
  :class:`BoundsSnapshot`, :class:`BoundRefinement`;
* :mod:`repro.core.bounds.paper2005` — the paper's §5.1 rule set
  (:func:`~repro.core.bounds.paper2005._derive` spells it out once, the
  ``_compile_derive`` variants specialize it per node);
* :mod:`repro.core.bounds.providers` — the :class:`BoundProvider`
  protocol, the registry (:func:`provider_names`, :func:`make_provider`,
  :func:`resolve_providers`) and the composition layer that intersects
  overlay providers' static per-node caps;
* :mod:`repro.core.bounds.degree_seq` — the ``degree_seq`` overlay:
  degree-sequence and Lp-norm join bounds from catalog degree statistics;
* :mod:`repro.core.bounds.tracker` — the incremental
  :class:`BoundsTracker` and the full-recompute
  :class:`ReferenceBoundsTracker`.

With the default stack (``bounds=["paper2005"]``) the trackers behave
exactly as the pre-split monolith did — same rules, same floats, same
snapshot code path.
"""

from repro.core.bounds.model import BoundRefinement, BoundsSnapshot, NodeBounds
from repro.core.bounds.providers import (
    DEFAULT_BOUNDS,
    BoundProvider,
    Paper2005Provider,
    make_provider,
    provider_names,
    resolve_providers,
)
from repro.core.bounds.tracker import BoundsTracker, ReferenceBoundsTracker

__all__ = [
    "BoundProvider",
    "BoundRefinement",
    "BoundsSnapshot",
    "BoundsTracker",
    "DEFAULT_BOUNDS",
    "NodeBounds",
    "Paper2005Provider",
    "ReferenceBoundsTracker",
    "make_provider",
    "provider_names",
    "resolve_providers",
]
