"""Degree-sequence join bounds — the ``degree_seq`` overlay provider.

The paper's general-join rule upper-bounds ``R ⋈ S`` by ``|R|·|S|`` —
catastrophically loose under skew, exactly where pmax and safe are
weakest.  Deeds & Balazinska (arXiv:2201.04166) bound the same join by
pairing the two key columns' descending degree sequences, and Abo Khamis &
Olteanu (arXiv:2306.14075) generalize to Lp norms of those sequences; both
are provably sound from cheap single-relation statistics, which is all the
paper's framework permits (§2.3).

This provider grounds each join input in a base table by walking through
filters (a σ can only *remove* rows, so the base column's degree sequence
dominates the filtered input's), reads the catalog's degree statistics for
the join key columns, and emits a static per-node upper bound:

* both sides grounded → ``min(degree-sequence pairing, ‖·‖₂·‖·‖₂)``;
* one side grounded → Hölder's one-sided form,
  ``|other side's base table| · max_degree(grounded key)``;
* probe-preserving (outer) hash joins additionally emit one row per probe
  row, so the probe side's base cardinality is added on top.

Degenerate inputs — no catalog, a side that does not ground to a base
table, a missing degree statistic, or a statistic whose recorded row count
no longer matches the live table (stale) — yield "no opinion" (None), not
``(0, inf)`` noise; staleness additionally warns once per column.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.bounds.paper2005 import (
    _HASH_JOIN,
    _INL_JOIN,
    _MERGE_JOIN,
    _NL_JOIN,
    _classify,
)
from repro.core.bounds.providers import BoundProvider
from repro.core.observe import warn_once
from repro.engine.expressions import ColumnRef, as_column_equality
from repro.engine.operators.base import Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.index_seek import IndexSeek
from repro.engine.operators.scan import TableScan
from repro.engine.operators.sort import Sort
from repro.stats.degree import (
    DegreeStatistic,
    degree_sequence_join_bound,
    lp_join_bound,
)
from repro.storage.catalog import Catalog

#: a join side grounded in a base table: (table, key degree stat or None)
_Side = Tuple[object, Optional[DegreeStatistic]]


def _ground_side(
    node: Operator, key: Optional[str], catalog: Catalog
) -> Optional[_Side]:
    """Ground one join input in a base table and fetch its key's degrees.

    Walks through filters (row-removing, degree-dominated) and sorts
    (row-preserving) to a table scan or index seek.  Returns ``(table, stat)`` — ``stat`` is None when the
    key column is unknown for this side, the statistic is missing, or it
    is stale — or None when the side does not reach a base table at all.
    """
    walk = node
    # σ removes rows (degree-dominated); sort reorders them (degree
    # multiset unchanged) — both are transparent to degree bounds.
    while isinstance(walk, (Filter, Sort)):
        walk = walk.child
    if isinstance(walk, TableScan):
        table = walk.table
    elif isinstance(walk, IndexSeek):
        table = walk.index.table
    else:
        return None
    if key is None or not walk.schema.has_column(key):
        return table, None
    bare = key.split(".")[-1]
    statistic = catalog.degree_statistic(table.name, bare)
    if not isinstance(statistic, DegreeStatistic):
        return table, None
    if statistic.row_count != len(table):
        warn_once(
            "bounds-degree_seq-stale:%s.%s" % (table.name, bare),
            "degree statistic on %s.%s was built over %d rows but the "
            "table now has %d; ignoring it (re-run the statistics "
            "manager to refresh)"
            % (table.name, bare, statistic.row_count, len(table)),
        )
        return table, None
    return table, statistic


def _column_name(expression: object) -> Optional[str]:
    if isinstance(expression, ColumnRef):
        return expression.name
    return None


class DegreeSequenceProvider(BoundProvider):
    """Static join-output caps from per-column degree sequences."""

    name = "degree_seq"
    maintenance = "static"

    def node_bounds(
        self, node: Operator, catalog: Optional[Catalog]
    ) -> Optional[Tuple[Optional[float], Optional[float]]]:
        if catalog is None:
            return None
        kind = _classify(node)
        if kind == _HASH_JOIN:
            build = _ground_side(
                node.build_child, _column_name(node.build_key), catalog
            )
            probe = _ground_side(
                node.probe_child, _column_name(node.probe_key), catalog
            )
            upper = self._pair_bound(build, probe)
            if upper is None:
                return None
            if node.preserve_probe:
                # One extra NULL-padded row per unmatched probe row, at most.
                if probe is None:
                    return None
                upper += float(len(probe[0]))
            return None, upper
        if kind == _MERGE_JOIN:
            upper = self._pair_bound(
                _ground_side(node.left, _column_name(node.left_key), catalog),
                _ground_side(node.right, _column_name(node.right_key), catalog),
            )
            return None if upper is None else (None, upper)
        if kind == _INL_JOIN:
            index = node.index
            inner_stat = catalog.degree_statistic(
                index.table.name, index.column
            )
            if not isinstance(inner_stat, DegreeStatistic):
                inner_stat = None
            elif inner_stat.row_count != len(index.table):
                warn_once(
                    "bounds-degree_seq-stale:%s.%s"
                    % (index.table.name, index.column),
                    "degree statistic on %s.%s was built over %d rows but "
                    "the table now has %d; ignoring it (re-run the "
                    "statistics manager to refresh)"
                    % (
                        index.table.name,
                        index.column,
                        inner_stat.row_count,
                        len(index.table),
                    ),
                )
                inner_stat = None
            upper = self._pair_bound(
                _ground_side(node.child, _column_name(node.outer_key), catalog),
                (index.table, inner_stat),
            )
            return None if upper is None else (None, upper)
        if kind == _NL_JOIN:
            if node.predicate is None:
                return None
            equality = as_column_equality(node.predicate)
            if equality is None:
                return None
            left_name, right_name = equality
            # The predicate binds against the joined schema; sort the two
            # columns onto their sides (each side must own exactly one).
            outer, inner = node.left, node.right
            if outer.schema.has_column(left_name) and inner.schema.has_column(
                right_name
            ):
                outer_key, inner_key = left_name, right_name
            elif outer.schema.has_column(right_name) and inner.schema.has_column(
                left_name
            ):
                outer_key, inner_key = right_name, left_name
            else:
                return None
            upper = self._pair_bound(
                _ground_side(outer, outer_key, catalog),
                _ground_side(inner, inner_key, catalog),
            )
            return None if upper is None else (None, upper)
        return None

    @staticmethod
    def _pair_bound(
        a: Optional[_Side], b: Optional[_Side]
    ) -> Optional[float]:
        """Join-output bound from two grounded sides (None = no opinion)."""
        if a is None or b is None:
            return None
        table_a, stat_a = a
        table_b, stat_b = b
        if stat_a is not None and stat_b is not None:
            # Full sequences on both sides: the descending pairing, with the
            # Lp-norm product as the (never tighter, always sound) general
            # form it specializes.
            return min(
                degree_sequence_join_bound(stat_a, stat_b),
                lp_join_bound(stat_a, stat_b),
            )
        if stat_a is not None:
            return float(len(table_b)) * float(stat_a.max_degree)
        if stat_b is not None:
            return float(len(table_a)) * float(stat_b.max_degree)
        return None
