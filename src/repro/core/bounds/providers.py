"""The pluggable bound-provider stack: protocol, registry, composition.

A :class:`BoundProvider` contributes per-node ``(lb, ub)`` bounds on a
node's *total* counted getnext calls.  ``paper2005`` — the paper's §5.1
rule set — is the recursive base every stack must contain; every other
provider is an *overlay*: it states static per-node bounds at construction
time and the trackers intersect them with the paper bounds at snapshot
time (tightest lower and upper bound win, with a soundness guard that
never lets the intersection invert ``LB ≤ UB``).

Incremental-maintenance contract: a provider declares how its
contributions behave during a run via ``maintenance``:

* ``"recursive"`` — the provider is the tracker-native rule set
  (``paper2005`` only; executed by the compiled visitors);
* ``"static"`` — contributions are fixed at construction and never change
  while the query runs, so the incremental tracker's dirty-set memo stays
  valid with the overlay applied as a snapshot post-step.

Only these two contracts exist; the trackers reject anything else rather
than silently produce stale bounds.

Overlay bounds apply only to nodes that provably execute under the
standard context (one full scan — see
:func:`repro.core.bounds.paper2005.standard_flags`): there a node's total
equals its single-pass output, so a sound cardinality bound on the output
is a sound bound on the total.  A provider with nothing sound to say about
a node returns ``None`` ("no opinion") — never ``(0, inf)`` noise; if a
requested provider has no opinion on an entire plan that contains join
nodes, composition emits a one-time :func:`~repro.core.observe.warn_once`
so silent degradation (missing or stale statistics) is visible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bounds.model import BoundRefinement, NodeBounds
from repro.core.bounds.paper2005 import (
    _HASH_JOIN,
    _INL_JOIN,
    _MERGE_JOIN,
    _NL_JOIN,
    _classify,
    standard_flags,
)
from repro.core.observe import warn_once
from repro.engine.operators.base import Operator
from repro.engine.plan import Plan
from repro.errors import BoundsConfigError
from repro.storage.catalog import Catalog

#: the default stack: the paper's own rules, nothing stacked on top
DEFAULT_BOUNDS: Tuple[str, ...] = ("paper2005",)

#: maintenance contracts the trackers understand
MAINTENANCE_CONTRACTS = ("recursive", "static")

#: dispatch tags of operators an overlay provider could possibly tighten
_JOIN_KINDS = (_HASH_JOIN, _MERGE_JOIN, _INL_JOIN, _NL_JOIN)


class BoundProvider:
    """One source of per-node ``(lb, ub)`` total-getnext bounds."""

    #: registry name (``bounds=["paper2005", ...]`` selects by it)
    name: str = ""
    #: incremental-maintenance contract (see module docstring)
    maintenance: str = "static"

    def node_bounds(
        self, node: Operator, catalog: Optional[Catalog]
    ) -> Optional[Tuple[Optional[float], Optional[float]]]:
        """Static bounds on ``node``'s total output, or None for no opinion.

        Either element may be None (no opinion on that side).  Called once
        per standard-context node at tracker construction; must not depend
        on runtime state.
        """
        raise NotImplementedError


class Paper2005Provider(BoundProvider):
    """The paper's §5.1 rule set, as a named registry entry.

    The trackers execute these rules natively (compiled per-node visitors /
    the reference interpreter); this class exists so the default stack is
    expressed in the same vocabulary as its overlays.  ``node_bounds`` is
    never consulted.
    """

    name = "paper2005"
    maintenance = "recursive"

    def node_bounds(
        self, node: Operator, catalog: Optional[Catalog]
    ) -> Optional[Tuple[Optional[float], Optional[float]]]:
        return None


def _registry():
    # Deferred: degree_seq imports repro.stats.degree, keep the registry
    # import-light until a provider is actually requested.
    from repro.core.bounds.degree_seq import DegreeSequenceProvider

    return {
        Paper2005Provider.name: Paper2005Provider,
        DegreeSequenceProvider.name: DegreeSequenceProvider,
    }


def provider_names() -> List[str]:
    """All registered bound-provider names, sorted."""
    return sorted(_registry())


def make_provider(name: str) -> BoundProvider:
    """Instantiate a registered provider by name."""
    factory = _registry().get(name)
    if factory is None:
        raise BoundsConfigError(
            "unknown bound provider %r (choose from: %s)"
            % (name, ", ".join(provider_names()))
        )
    return factory()


def resolve_providers(
    bounds: Optional[Sequence[str]],
) -> Tuple[BoundProvider, ...]:
    """Validate a ``bounds=`` stack and instantiate its providers.

    ``None`` means the default stack.  The stack must be non-empty, free of
    duplicates, contain only registered names, and include ``paper2005``
    (overlays tighten the recursive base; they cannot replace it).
    """
    names = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
    if not names:
        raise BoundsConfigError("bounds must name at least one provider")
    if len(set(names)) != len(names):
        raise BoundsConfigError("duplicate bound providers: %s" % (list(names),))
    if Paper2005Provider.name not in names:
        raise BoundsConfigError(
            "bounds must include %r (overlay providers tighten the paper "
            "rules, they do not replace them)" % (Paper2005Provider.name,)
        )
    providers = tuple(make_provider(name) for name in names)
    for provider in providers:
        if provider.maintenance not in MAINTENANCE_CONTRACTS:
            raise BoundsConfigError(
                "provider %r declares unknown maintenance contract %r "
                "(supported: %s)"
                % (provider.name, provider.maintenance, MAINTENANCE_CONTRACTS)
            )
    return providers


def compose_caps(
    plan: Plan,
    catalog: Optional[Catalog],
    providers: Iterable[BoundProvider],
    tolerate_missing: bool = True,
) -> Dict[int, Tuple[Optional[float], Optional[float], str]]:
    """Intersect the overlay providers' static opinions per node.

    Returns ``operator_id -> (lb, ub, provider)`` where ``provider`` names
    the overlay whose upper bound won the intersection (tightest bound
    wins on each side independently).  Only standard-context nodes are
    consulted — see the module docstring for why.
    """
    overlays = [p for p in providers if p.maintenance == "static"]
    if not overlays:
        return {}
    flags = standard_flags(plan.root)
    has_joins = any(
        _classify(node) in _JOIN_KINDS for node in plan.operators()
    )
    caps: Dict[int, Tuple[Optional[float], Optional[float], str]] = {}
    opinionated = set()
    for node in plan.operators():
        if not flags[node.operator_id]:
            continue
        best_lb: Optional[float] = None
        best_ub: Optional[float] = None
        best_name = ""
        for provider in overlays:
            opinion = provider.node_bounds(node, catalog)
            if opinion is None:
                continue
            opinionated.add(provider.name)
            lb, ub = opinion
            if lb is not None and (best_lb is None or lb > best_lb):
                best_lb = float(lb)
            if ub is not None and (best_ub is None or ub < best_ub):
                best_ub = float(ub)
                best_name = provider.name
        if best_lb is not None or best_ub is not None:
            caps[node.operator_id] = (best_lb, best_ub, best_name)
    if tolerate_missing and has_joins:
        for provider in overlays:
            if provider.name not in opinionated:
                warn_once(
                    "bounds-provider-degraded:%s" % (provider.name,),
                    "bound provider %r has no opinion on this plan "
                    "(missing or stale degree statistics?); falling back "
                    "to the paper2005 bounds alone" % (provider.name,),
                )
    return caps


def apply_caps(
    per_node: Dict[int, NodeBounds],
    caps: Dict[int, Tuple[Optional[float], Optional[float], str]],
    describe: Dict[int, str],
) -> List[BoundRefinement]:
    """Intersect static caps into ``per_node`` (mutated in place).

    Tightest bound wins on each side; the soundness guard never lets the
    intersection invert ``LB ≤ UB`` — a (hypothetically unsound) cap that
    would push UB below LB is clamped back to LB, so downstream consumers
    keep the invariant ``Curr ≤ LB ≤ UB`` whatever a provider said.
    Returns the refinements actually applied (upper bound tightened), for
    the ``bound_refined`` observability event.
    """
    refinements: List[BoundRefinement] = []
    for op_id, (cap_lb, cap_ub, provider) in caps.items():
        entry = per_node.get(op_id)
        if entry is None:
            continue
        lower, upper = entry.lower, entry.upper
        new_lower = lower if (cap_lb is None or cap_lb <= lower) else cap_lb
        new_upper = upper if (cap_ub is None or cap_ub >= upper) else cap_ub
        if new_upper < new_lower:
            new_upper = new_lower
        if new_lower != lower or new_upper != upper:
            per_node[op_id] = NodeBounds(new_lower, new_upper)
            if new_upper < upper:
                refinements.append(
                    BoundRefinement(
                        operator_id=op_id,
                        operator=describe.get(op_id, ""),
                        provider=provider,
                        upper_before=upper,
                        upper_after=new_upper,
                    )
                )
    return refinements
