"""The paper's §5.1 cardinality-bound rules — the ``paper2005`` provider.

This module is the single rule set both trackers execute, split three ways
for the hot path but value-identical by construction:

* :func:`derive` spells every operator rule out once (the reference
  tracker interprets it on every visit);
* :func:`compile_derive` specializes one rule per node at construction
  (the incremental tracker's general-context visitors);
* :func:`compile_derive_std` additionally folds the standard execution
  context ``(1.0, 1.0, True, True)`` into the closure for nodes that
  provably always run under it.

Rules implemented (refined on every inspection):

* scanned leaves contribute their exact catalog cardinality;
* index seeks use histogram bucket bounds when a statistic exists (footnote
  2 of the paper), otherwise the index's exact range count;
* σ's lower bound is the rows returned so far; its upper bound is what its
  child can still deliver — and when the filter is a single range predicate
  directly over a base-table scan, the table's own histogram tightens both
  ends (the buckets were built over exactly that data, so fully-covered
  buckets are guaranteed matches: the footnote-2 refinement);
* π / sort / merge-pass-through keep their child's bounds; a finished sort
  pins the cardinality of the pipeline it drives;
* γ lower-bounds by groups seen so far (scalar aggregates are exactly 1);
* linear joins (declared, e.g. FK joins) upper-bound by the larger input;
  general joins by the product;
* the inner subtree of a ⋈NL is multiplied by the outer's output bounds
  (each outer row rescans it), and per-pass runtime refinements are
  disabled there (counters are cumulative across rescans);
* below a LIMIT, "will be fully scanned" no longer holds, so descendants
  fall back to produced-so-far lower bounds — the effect stops at blocking
  operators, which always drain their input;
* a finished operator's bounds collapse to its exact count.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.engine.operators.aggregate import HashAggregate, StreamAggregate
from repro.engine.operators.base import Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.index_seek import IndexSeek
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.misc import Distinct, Limit, UnionAll
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.project import Project
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.sort import Sort
from repro.engine.operators.topn import TopN
from repro.stats.histogram import Histogram
from repro.storage.catalog import Catalog

# -- operator dispatch tags --------------------------------------------------------

_SCAN = 0
_SEEK = 1
_FILTER = 2
_PROJECT = 3
_SORT = 4
_TOPN = 5
_DISTINCT = 6
_AGG_HASH = 7
_AGG_STREAM = 8
_HASH_JOIN = 9
_MERGE_JOIN = 10
_INL_JOIN = 11
_NL_JOIN = 12
_LIMIT = 13
_UNION = 14
_OTHER = 15


def _classify(node: Operator) -> int:
    """Map an operator to its bounds-rule tag (mirrors the rule order)."""
    if isinstance(node, (TableScan, RowSource)):
        return _SCAN
    if isinstance(node, IndexSeek):
        return _SEEK
    if isinstance(node, Filter):
        return _FILTER
    if isinstance(node, Sort):
        return _SORT
    if isinstance(node, Project):
        return _PROJECT
    if isinstance(node, TopN):
        return _TOPN
    if isinstance(node, Distinct):
        return _DISTINCT
    if isinstance(node, HashAggregate):
        return _AGG_HASH
    if isinstance(node, StreamAggregate):
        return _AGG_STREAM
    if isinstance(node, HashJoin):
        return _HASH_JOIN
    if isinstance(node, MergeJoin):
        return _MERGE_JOIN
    if isinstance(node, IndexNestedLoopsJoin):
        return _INL_JOIN
    if isinstance(node, NestedLoopsJoin):
        return _NL_JOIN
    if isinstance(node, Limit):
        return _LIMIT
    if isinstance(node, UnionAll):
        return _UNION
    return _OTHER


def _static_payload(node: Operator, kind: int, catalog: Optional[Catalog]):
    """Resolve everything about ``node``'s bounds that cannot change at
    runtime: base cardinalities, histogram bucket sums, inner-table sizes.

    The incremental tracker calls this once per node at construction; the
    reference tracker re-resolves it on every visit (the seed behavior the
    overhead benchmark measures against).
    """
    if kind == _SCAN:
        return float(node.base_cardinality())
    if kind == _SEEK:
        statistic = None
        if catalog is not None:
            statistic = catalog.statistic(node.index.table.name, node.index.column)
        if isinstance(statistic, Histogram):
            return statistic.range_bounds(node.low, node.high)
        exact = node.exact_match_count()
        return exact, exact
    if kind == _FILTER:
        return _filter_histogram_bounds(node, catalog)
    if kind == _INL_JOIN:
        return float(len(node.index.table))
    return None


def _filter_histogram_bounds(
    node: Filter, catalog: Optional[Catalog]
) -> Optional[Tuple[int, int]]:
    """Guaranteed output bounds for a range filter over a base scan.

    Applies only when the filter's predicate is a single range-shaped
    comparison on a column of the table its child scans: the catalog
    histogram was built over exactly those rows, so bucket arithmetic
    yields *guaranteed* bounds on the matching row count (footnote 2).
    """
    from repro.engine.expressions import as_column_range

    if catalog is None or not isinstance(node.child, TableScan):
        return None
    shape = as_column_range(node.predicate)
    if shape is None:
        return None
    column, low, high, low_inclusive, high_inclusive = shape
    if not (low_inclusive and high_inclusive):
        # Bucket bounds are inclusive; exclusive ends would need value
        # adjustment per type — skip rather than risk unsoundness.
        return None
    table_name = node.child.table.name
    bare = column.split(".")[-1]
    if not node.child.schema.has_column(column):
        return None
    statistic = catalog.statistic(table_name, bare)
    if not isinstance(statistic, Histogram):
        return None
    return statistic.range_bounds(low, high)


def _join_output_bounds(
    node: Operator, produced: int, left_upper: float, right_upper: float
) -> Tuple[float, float]:
    if node.is_linear:
        upper = max(left_upper, right_upper)
    else:
        upper = left_upper * right_upper
    return float(produced), max(upper, float(produced))


#: ``visit(child, exec_lower, exec_upper, single_exec, full_scan)``
_Visit = Callable[[Operator, float, float, bool, bool], Tuple[float, float]]


def _derive(
    node: Operator,
    kind: int,
    static,
    produced: int,
    single_exec: bool,
    full_scan: bool,
    exec_lower: float,
    exec_upper: float,
    visit: _Visit,
) -> Tuple[float, float]:
    """Per-pass output bounds for one (unfinished) node.

    This is the single rule set both trackers execute, so their results are
    bit-identical by construction.  ``visit`` recurses into a child with
    explicit execution context; ``static`` is the payload of
    :func:`_static_payload` for this node.
    """
    if kind == _SCAN:
        n = static
        if full_scan:
            return n, n
        return float(produced), n

    if kind == _SEEK:
        lower, upper = static
        if not full_scan:
            lower = 0
        return max(float(lower), float(produced)), max(float(upper), float(produced))

    if kind == _FILTER:
        child_lower, child_upper = visit(
            node.child, exec_lower, exec_upper, single_exec, full_scan
        )
        consumed = node.child.rows_produced if single_exec else 0
        remaining = max(0.0, child_upper - consumed)
        # +1: a row the child just produced may be in flight inside this
        # filter (observers fire inside the child's get_next, before the
        # filter has decided the row's fate).
        in_flight = 1.0 if single_exec and consumed > produced else 0.0
        lower = float(produced)
        upper = float(produced) + remaining + in_flight
        if static is not None and single_exec and full_scan:
            hist_lower, hist_upper = static
            lower = max(lower, float(hist_lower))
            upper = min(upper, max(float(hist_upper), lower))
        return lower, upper

    if kind == _SORT or kind == _PROJECT:
        if kind == _SORT:
            # A blocking consumer drains its input no matter what happens
            # above it, so the child keeps the full-scan guarantee a LIMIT
            # higher up would otherwise cancel — and, because blocking state
            # is spooled across NL-join rescans, the drained subtree executes
            # exactly once regardless of the rescan count.
            child_lower, child_upper = visit(node.child, 1.0, 1.0, True, True)
            # Spooled once even under rescans: the materialized count is
            # this node's exact per-pass output — but a LIMIT above may
            # still cut the emission short, so it is only a lower bound
            # when the full-scan guarantee is gone.
            materialized = node.materialized_count()
            if materialized is not None:
                if full_scan:
                    return float(materialized), float(materialized)
                return float(produced), float(materialized)
        else:
            child_lower, child_upper = visit(
                node.child, exec_lower, exec_upper, single_exec, full_scan
            )
        if not full_scan:
            return float(produced), child_upper
        return max(child_lower, float(produced)), child_upper

    if kind == _TOPN:
        child_lower, child_upper = visit(node.child, 1.0, 1.0, True, True)
        materialized = node.materialized_count()
        if materialized is not None:
            if full_scan:
                return float(materialized), float(materialized)
            return float(produced), float(materialized)
        upper = min(float(node.limit), child_upper)
        lower = float(produced)
        if full_scan:
            lower = max(lower, min(float(node.limit), child_lower))
        return lower, max(upper, lower)

    if kind == _DISTINCT:
        _, child_upper = visit(
            node.child, exec_lower, exec_upper, single_exec, full_scan
        )
        return float(produced), max(child_upper, float(produced))

    if kind == _AGG_HASH or kind == _AGG_STREAM:
        if kind == _AGG_HASH:
            _, child_upper = visit(node.child, 1.0, 1.0, True, True)
        else:
            _, child_upper = visit(
                node.child, exec_lower, exec_upper, single_exec, full_scan
            )
        if not node.group_by:
            return (1.0 if full_scan else float(produced)), 1.0
        groups = 0.0
        if kind == _AGG_HASH:
            # Also spooled once: group counts are per-pass exact.
            if node.input_consumed:
                exact = float(node.groups_seen())
                if full_scan:
                    return exact, exact
                return float(produced), exact
            groups = float(node.groups_seen())
        lower = max(groups, float(produced)) if full_scan else float(produced)
        return lower, max(child_upper, lower, groups)

    if kind == _HASH_JOIN:
        build_lower, build_upper = visit(node.build_child, 1.0, 1.0, True, True)
        probe_lower, probe_upper = visit(
            node.probe_child, exec_lower, exec_upper, single_exec, full_scan
        )
        lower, upper = _join_output_bounds(node, produced, build_upper, probe_upper)
        if node.preserve_probe:
            # Probe-side outer join: every probe row emits at least one
            # output row (a match or a NULL-padded copy).
            if full_scan:
                lower = max(lower, probe_lower)
            upper = upper + probe_upper
        return lower, upper

    if kind == _MERGE_JOIN:
        left_lower, left_upper = visit(
            node.left, exec_lower, exec_upper, single_exec, full_scan
        )
        right_lower, right_upper = visit(
            node.right, exec_lower, exec_upper, single_exec, full_scan
        )
        return _join_output_bounds(node, produced, left_upper, right_upper)

    if kind == _INL_JOIN:
        outer_lower, outer_upper = visit(
            node.child, exec_lower, exec_upper, single_exec, full_scan
        )
        inner_size = static
        if node.is_linear:
            upper = max(outer_upper, inner_size)
        else:
            upper = outer_upper * inner_size
        return float(produced), max(upper, float(produced))

    if kind == _NL_JOIN:
        outer_lower, outer_upper = visit(
            node.left, exec_lower, exec_upper, single_exec, full_scan
        )
        # The inner subtree runs once per outer row; its counters are
        # cumulative across rescans, so per-pass refinement is off.  If a
        # LIMIT above can cut the join mid-stream, the latest rescan may
        # be incomplete, so only outer_lower - 1 passes are guaranteed.
        guaranteed_passes = outer_lower if full_scan else max(0.0, outer_lower - 1)
        inner_lower, inner_upper = visit(
            node.right,
            exec_lower * guaranteed_passes,
            exec_upper * outer_upper,
            False,
            True,
        )
        return _join_output_bounds(node, produced, outer_upper, inner_upper)

    if kind == _LIMIT:
        # Descendants may be cut off mid-stream: drop their full-scan
        # lower bounds (blocking descendants re-enable it themselves via
        # `finished`/materialized refinements).
        _, child_upper = visit(
            node.child, exec_lower, exec_upper, single_exec, False
        )
        upper = min(float(node.limit), max(0.0, child_upper - node.offset))
        return float(produced), max(upper, float(produced))

    if kind == _UNION:
        lowers, uppers = 0.0, 0.0
        for child in node.children:
            child_lower, child_upper = visit(
                child, exec_lower, exec_upper, single_exec, full_scan
            )
            lowers += child_lower
            uppers += child_upper
        return max(lowers, float(produced)), max(uppers, float(produced))

    # Unknown operator: be conservative.
    lowers, uppers = 0.0, 0.0
    for child in node.children:
        child_lower, child_upper = visit(
            child, exec_lower, exec_upper, single_exec, full_scan
        )
        lowers += child_lower
        uppers += child_upper
    return float(produced), max(uppers, float(produced))


def _compile_derive(node, kind, static, child_visits):
    """Construction-time twin of :func:`_derive`.

    Returns a closure ``derive(exec_lower, exec_upper, single_exec,
    full_scan) -> (lower, upper)`` with this node's single rule
    specialized: statics, child visitors and immutable flags are bound as
    closure cells, so the per-sample hot path runs no dispatch, no adapter
    hops and no array indexing.  Every float expression here must mirror
    :func:`_derive` operation for operation — the equivalence suite asserts
    the compiled tracker stays bit-identical to the reference at every
    sampled instant.
    """
    if kind == _SCAN:
        n = static

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            if full_scan:
                return n, n
            return (float(node.rows_produced) if single_exec else 0.0), n

        return derive

    if kind == _SEEK:
        static_lower, static_upper = static
        upper_f = float(static_upper)

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            produced = node.rows_produced if single_exec else 0
            lower = static_lower if full_scan else 0
            return max(float(lower), float(produced)), max(upper_f, float(produced))

        return derive

    if kind == _FILTER:
        child = node.child
        child_visit = child_visits[0]
        if static is None:

            def derive(exec_lower, exec_upper, single_exec, full_scan):
                _, child_upper = child_visit(
                    exec_lower, exec_upper, single_exec, full_scan
                )
                produced = node.rows_produced if single_exec else 0
                consumed = child.rows_produced if single_exec else 0
                remaining = max(0.0, child_upper - consumed)
                in_flight = 1.0 if single_exec and consumed > produced else 0.0
                return float(produced), float(produced) + remaining + in_flight

            return derive
        hist_lower, hist_upper = float(static[0]), float(static[1])

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            _, child_upper = child_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            consumed = child.rows_produced if single_exec else 0
            remaining = max(0.0, child_upper - consumed)
            in_flight = 1.0 if single_exec and consumed > produced else 0.0
            lower = float(produced)
            upper = float(produced) + remaining + in_flight
            if single_exec and full_scan:
                lower = max(lower, hist_lower)
                upper = min(upper, max(hist_upper, lower))
            return lower, upper

        return derive

    if kind == _SORT:
        child_visit = child_visits[0]

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            child_lower, child_upper = child_visit(1.0, 1.0, True, True)
            produced = node.rows_produced if single_exec else 0
            materialized = node.materialized_count()
            if materialized is not None:
                if full_scan:
                    return float(materialized), float(materialized)
                return float(produced), float(materialized)
            if not full_scan:
                return float(produced), child_upper
            return max(child_lower, float(produced)), child_upper

        return derive

    if kind == _PROJECT:
        child_visit = child_visits[0]

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            child_lower, child_upper = child_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            if not full_scan:
                return float(produced), child_upper
            return max(child_lower, float(produced)), child_upper

        return derive

    if kind == _TOPN:
        child_visit = child_visits[0]
        limit_f = float(node.limit)

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            child_lower, child_upper = child_visit(1.0, 1.0, True, True)
            produced = node.rows_produced if single_exec else 0
            materialized = node.materialized_count()
            if materialized is not None:
                if full_scan:
                    return float(materialized), float(materialized)
                return float(produced), float(materialized)
            upper = min(limit_f, child_upper)
            lower = float(produced)
            if full_scan:
                lower = max(lower, min(limit_f, child_lower))
            return lower, max(upper, lower)

        return derive

    if kind == _DISTINCT:
        child_visit = child_visits[0]

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            _, child_upper = child_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            return float(produced), max(child_upper, float(produced))

        return derive

    if kind == _AGG_HASH or kind == _AGG_STREAM:
        child_visit = child_visits[0]
        grouped = bool(node.group_by)
        hashed = kind == _AGG_HASH

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            if hashed:
                _, child_upper = child_visit(1.0, 1.0, True, True)
            else:
                _, child_upper = child_visit(
                    exec_lower, exec_upper, single_exec, full_scan
                )
            produced = node.rows_produced if single_exec else 0
            if not grouped:
                return (1.0 if full_scan else float(produced)), 1.0
            groups = 0.0
            if hashed:
                if node.input_consumed:
                    exact = float(node.groups_seen())
                    if full_scan:
                        return exact, exact
                    return float(produced), exact
                groups = float(node.groups_seen())
            lower = max(groups, float(produced)) if full_scan else float(produced)
            return lower, max(child_upper, lower, groups)

        return derive

    if kind == _HASH_JOIN:
        build_visit, probe_visit = child_visits
        linear = node.is_linear
        preserve = node.preserve_probe

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            _, build_upper = build_visit(1.0, 1.0, True, True)
            probe_lower, probe_upper = probe_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            if linear:
                upper = max(build_upper, probe_upper)
            else:
                upper = build_upper * probe_upper
            lower = float(produced)
            upper = max(upper, lower)
            if preserve:
                if full_scan:
                    lower = max(lower, probe_lower)
                upper = upper + probe_upper
            return lower, upper

        return derive

    if kind == _MERGE_JOIN:
        left_visit, right_visit = child_visits
        linear = node.is_linear

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            _, left_upper = left_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            _, right_upper = right_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            if linear:
                upper = max(left_upper, right_upper)
            else:
                upper = left_upper * right_upper
            return float(produced), max(upper, float(produced))

        return derive

    if kind == _INL_JOIN:
        child_visit = child_visits[0]
        inner_size = static
        linear = node.is_linear

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            _, outer_upper = child_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            if linear:
                upper = max(outer_upper, inner_size)
            else:
                upper = outer_upper * inner_size
            return float(produced), max(upper, float(produced))

        return derive

    if kind == _NL_JOIN:
        outer_visit, inner_visit = child_visits
        linear = node.is_linear

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            outer_lower, outer_upper = outer_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            produced = node.rows_produced if single_exec else 0
            guaranteed = outer_lower if full_scan else max(0.0, outer_lower - 1)
            _, inner_upper = inner_visit(
                exec_lower * guaranteed, exec_upper * outer_upper, False, True
            )
            if linear:
                upper = max(outer_upper, inner_upper)
            else:
                upper = outer_upper * inner_upper
            return float(produced), max(upper, float(produced))

        return derive

    if kind == _LIMIT:
        child_visit = child_visits[0]
        limit_f = float(node.limit)
        offset = node.offset

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            _, child_upper = child_visit(
                exec_lower, exec_upper, single_exec, False
            )
            produced = node.rows_produced if single_exec else 0
            upper = min(limit_f, max(0.0, child_upper - offset))
            return float(produced), max(upper, float(produced))

        return derive

    if kind == _UNION:

        def derive(exec_lower, exec_upper, single_exec, full_scan):
            lowers, uppers = 0.0, 0.0
            for child_visit in child_visits:
                child_lower, child_upper = child_visit(
                    exec_lower, exec_upper, single_exec, full_scan
                )
                lowers += child_lower
                uppers += child_upper
            produced = node.rows_produced if single_exec else 0
            return max(lowers, float(produced)), max(uppers, float(produced))

        return derive

    def derive(exec_lower, exec_upper, single_exec, full_scan):
        lowers, uppers = 0.0, 0.0
        for child_visit in child_visits:
            child_lower, child_upper = child_visit(
                exec_lower, exec_upper, single_exec, full_scan
            )
            lowers += child_lower
            uppers += child_upper
        produced = node.rows_produced if single_exec else 0
        return float(produced), max(uppers, float(produced))

    return derive


def _compile_derive_std(node, kind, static, child_visits):
    """Like :func:`_compile_derive`, but for a node that provably always
    executes under the standard context ``(exec_lower=1.0, exec_upper=1.0,
    single_exec=True, full_scan=True)`` — the root's context, preserved by
    every edge except a LIMIT's or a ⋈NL inner's (see
    :meth:`BoundsTracker._build_visitor`).

    Returns a zero-argument ``derive_std() -> (lower, upper)`` with the
    context constants folded: ``x * 1.0 == x`` exactly under IEEE 754 and
    ``single_exec``/``full_scan`` branches are resolved at compile time, so
    every fold is value-preserving and the results stay bit-identical to
    :func:`_derive`.
    """
    if kind == _SCAN:
        n = static

        def derive_std():
            return n, n

        return derive_std

    if kind == _SEEK:
        lower_f = float(static[0])
        upper_f = float(static[1])

        def derive_std():
            produced = float(node.rows_produced)
            return max(lower_f, produced), max(upper_f, produced)

        return derive_std

    if kind == _FILTER:
        child = node.child
        child_visit = child_visits[0]
        if static is None:

            def derive_std():
                _, child_upper = child_visit(1.0, 1.0, True, True)
                produced = node.rows_produced
                consumed = child.rows_produced
                remaining = max(0.0, child_upper - consumed)
                in_flight = 1.0 if consumed > produced else 0.0
                produced_f = float(produced)
                return produced_f, produced_f + remaining + in_flight

            return derive_std
        hist_lower, hist_upper = float(static[0]), float(static[1])

        def derive_std():
            _, child_upper = child_visit(1.0, 1.0, True, True)
            produced = node.rows_produced
            consumed = child.rows_produced
            remaining = max(0.0, child_upper - consumed)
            in_flight = 1.0 if consumed > produced else 0.0
            produced_f = float(produced)
            lower = max(produced_f, hist_lower)
            upper = min(produced_f + remaining + in_flight, max(hist_upper, lower))
            return lower, upper

        return derive_std

    if kind == _SORT:
        child_visit = child_visits[0]

        def derive_std():
            child_lower, child_upper = child_visit(1.0, 1.0, True, True)
            materialized = node.materialized_count()
            if materialized is not None:
                exact = float(materialized)
                return exact, exact
            return max(child_lower, float(node.rows_produced)), child_upper

        return derive_std

    if kind == _PROJECT:
        child_visit = child_visits[0]

        def derive_std():
            child_lower, child_upper = child_visit(1.0, 1.0, True, True)
            return max(child_lower, float(node.rows_produced)), child_upper

        return derive_std

    if kind == _TOPN:
        child_visit = child_visits[0]
        limit_f = float(node.limit)

        def derive_std():
            child_lower, child_upper = child_visit(1.0, 1.0, True, True)
            materialized = node.materialized_count()
            if materialized is not None:
                exact = float(materialized)
                return exact, exact
            upper = min(limit_f, child_upper)
            lower = max(float(node.rows_produced), min(limit_f, child_lower))
            return lower, max(upper, lower)

        return derive_std

    if kind == _DISTINCT:
        child_visit = child_visits[0]

        def derive_std():
            _, child_upper = child_visit(1.0, 1.0, True, True)
            produced = float(node.rows_produced)
            return produced, max(child_upper, produced)

        return derive_std

    if kind == _AGG_HASH or kind == _AGG_STREAM:
        child_visit = child_visits[0]
        grouped = bool(node.group_by)
        hashed = kind == _AGG_HASH

        def derive_std():
            _, child_upper = child_visit(1.0, 1.0, True, True)
            if not grouped:
                return 1.0, 1.0
            groups = 0.0
            if hashed:
                if node.input_consumed:
                    exact = float(node.groups_seen())
                    return exact, exact
                groups = float(node.groups_seen())
            lower = max(groups, float(node.rows_produced))
            return lower, max(child_upper, lower, groups)

        return derive_std

    if kind == _HASH_JOIN:
        build_visit, probe_visit = child_visits
        linear = node.is_linear
        preserve = node.preserve_probe

        def derive_std():
            _, build_upper = build_visit(1.0, 1.0, True, True)
            probe_lower, probe_upper = probe_visit(1.0, 1.0, True, True)
            if linear:
                upper = max(build_upper, probe_upper)
            else:
                upper = build_upper * probe_upper
            lower = float(node.rows_produced)
            upper = max(upper, lower)
            if preserve:
                lower = max(lower, probe_lower)
                upper = upper + probe_upper
            return lower, upper

        return derive_std

    if kind == _MERGE_JOIN:
        left_visit, right_visit = child_visits
        linear = node.is_linear

        def derive_std():
            _, left_upper = left_visit(1.0, 1.0, True, True)
            _, right_upper = right_visit(1.0, 1.0, True, True)
            if linear:
                upper = max(left_upper, right_upper)
            else:
                upper = left_upper * right_upper
            produced = float(node.rows_produced)
            return produced, max(upper, produced)

        return derive_std

    if kind == _INL_JOIN:
        child_visit = child_visits[0]
        inner_size = static
        linear = node.is_linear

        def derive_std():
            _, outer_upper = child_visit(1.0, 1.0, True, True)
            if linear:
                upper = max(outer_upper, inner_size)
            else:
                upper = outer_upper * inner_size
            produced = float(node.rows_produced)
            return produced, max(upper, produced)

        return derive_std

    if kind == _NL_JOIN:
        outer_visit, inner_visit = child_visits
        linear = node.is_linear

        def derive_std():
            outer_lower, outer_upper = outer_visit(1.0, 1.0, True, True)
            _, inner_upper = inner_visit(outer_lower, outer_upper, False, True)
            if linear:
                upper = max(outer_upper, inner_upper)
            else:
                upper = outer_upper * inner_upper
            produced = float(node.rows_produced)
            return produced, max(upper, produced)

        return derive_std

    if kind == _LIMIT:
        child_visit = child_visits[0]
        limit_f = float(node.limit)
        offset = node.offset

        def derive_std():
            _, child_upper = child_visit(1.0, 1.0, True, False)
            upper = min(limit_f, max(0.0, child_upper - offset))
            produced = float(node.rows_produced)
            return produced, max(upper, produced)

        return derive_std

    if kind == _UNION:

        def derive_std():
            lowers, uppers = 0.0, 0.0
            for child_visit in child_visits:
                child_lower, child_upper = child_visit(1.0, 1.0, True, True)
                lowers += child_lower
                uppers += child_upper
            produced = float(node.rows_produced)
            return max(lowers, produced), max(uppers, produced)

        return derive_std

    def derive_std():
        uppers = 0.0
        for child_visit in child_visits:
            _, child_upper = child_visit(1.0, 1.0, True, True)
            uppers += child_upper
        produced = float(node.rows_produced)
        return produced, max(uppers, produced)

    return derive_std


def standard_flags(root: Operator) -> Dict[int, bool]:
    """Which nodes provably always execute under the standard context.

    Mirrors the compile-time ``standard`` propagation of
    :meth:`BoundsTracker._build_visitor`: the root does; blocking drains
    (sort, top-n, hash aggregate, hash-join build) re-impose it; a LIMIT's
    child loses ``full_scan`` and a ⋈NL's inner loses ``single_exec``.
    Extra bound providers only cap standard nodes — there a node's total
    counted getnext calls equal its single full-scan output, so a sound
    cardinality bound on the output is a sound bound on the total.
    """
    flags: Dict[int, bool] = {}

    def walk(node: Operator, standard: bool) -> None:
        flags[node.operator_id] = standard
        kind = _classify(node)
        children = node.children
        if kind == _SORT or kind == _TOPN or kind == _AGG_HASH:
            child_standard = [True] * len(children)
        elif kind == _HASH_JOIN:
            child_standard = [True, standard]
        elif kind == _NL_JOIN:
            child_standard = [standard, False]
        elif kind == _LIMIT:
            child_standard = [False] * len(children)
        else:
            child_standard = [standard] * len(children)
        for child, child_std in zip(children, child_standard):
            walk(child, child_std)

    walk(root, True)
    return flags
