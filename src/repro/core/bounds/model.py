"""Shared value types of the bounds layer.

:class:`NodeBounds` and :class:`BoundsSnapshot` are the only objects the
rest of the system sees: estimators consume snapshot ``lower``/``upper``
aggregates, the differential suites compare them field by field, and the
workmodels re-express them in weighted units.  :class:`BoundRefinement`
records that a non-default bound provider tightened one node's upper bound
(the ``bound_refined`` observability event carries it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class NodeBounds:
    """Bounds on one node's total counted getnext calls."""

    lower: float
    upper: float


@dataclass(frozen=True)
class BoundsSnapshot:
    """Plan-wide bounds at one instant.

    ``curr`` is an integer tick count under the GetNext model but a float
    once re-expressed in weighted work units (see
    :class:`repro.core.workmodels.WeightedWork`).
    """

    curr: float
    lower: float
    upper: float
    per_node: Dict[int, NodeBounds]

    @property
    def ratio(self) -> float:
        """UB/LB — safe's worst-case ratio error is √(this)."""
        if self.lower <= 0:
            return float("inf")
        return self.upper / self.lower


@dataclass(frozen=True)
class BoundRefinement:
    """One node whose upper bound a non-default provider tightened."""

    operator_id: int
    operator: str
    provider: str
    upper_before: float
    upper_after: float
