"""The progress runner: execute a plan while sampling every estimator.

Supports both models of work from §2.2: the GetNext model (default) and the
bytes-processed model — pass a :class:`repro.core.workmodels.WorkModel`; all
quantities (Curr, LB, UB, the true progress) are then expressed in weighted
units, with the estimator formulas unchanged.

Evaluation protocol (the one behind every figure and table in the paper):

1. run the plan once on a private monitor to learn the oracle ``total(Q)``;
2. re-run it with an observer that, every few ticks, assembles an
   :class:`Observation` (Curr, runtime bounds, pipeline state) and records
   each estimator's answer next to the true progress;
3. hand back a :class:`ProgressTrace` for metric extraction.

The estimators never see the oracle; it is used only to label samples with
the true progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import BoundsTracker
from repro.core.estimators.base import Observation, ProgressEstimator
from repro.core.metrics import ProgressTrace, TraceSample
from repro.core.model import mu as compute_mu
from repro.core.pipelines import Pipeline, decompose
from repro.engine.executor import measure_total_work
from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan
from repro.errors import ProgressError
from repro.stats.estimate import CardinalityEstimator
from repro.storage.catalog import Catalog


@dataclass
class ProgressReport:
    """Everything one instrumented run produced."""

    plan_name: str
    total: int
    mu: Optional[float]
    trace: ProgressTrace
    #: name of the work model the quantities are expressed in
    work_model: str = "getnext"

    def summary(self) -> Dict[str, Dict[str, float]]:
        return self.trace.summary()


class ProgressRunner:
    """Runs plans under progress instrumentation."""

    def __init__(
        self,
        plan: Plan,
        estimators: Sequence[ProgressEstimator],
        catalog: Optional[Catalog] = None,
        target_samples: int = 200,
        work_model=None,
    ) -> None:
        if not estimators:
            raise ProgressError("at least one estimator is required")
        names = [estimator.name for estimator in estimators]
        if len(set(names)) != len(names):
            raise ProgressError("estimator names must be unique: %s" % (names,))
        self.plan = plan
        self.estimators = list(estimators)
        self.catalog = catalog
        self.target_samples = max(1, target_samples)
        self.work_model = work_model

    def run(self) -> ProgressReport:
        weighted = None
        if self.work_model is not None and self.work_model.name != "getnext":
            from repro.core.workmodels import WeightedWork

            weighted = WeightedWork(self.plan, self.work_model)
        total_ticks = measure_total_work(self.plan)
        total: float = float(total_ticks)
        if weighted is not None:
            total = weighted.total()
        try:
            mu_value: Optional[float] = compute_mu(self.plan, total=total_ticks)
        except ProgressError:
            mu_value = None

        estimates = (
            CardinalityEstimator(self.catalog).estimate_plan(self.plan)
            if self.catalog is not None
            else None
        )
        pipelines: List[Pipeline] = decompose(self.plan)
        tracker = BoundsTracker(self.plan, self.catalog)
        scanned_leaves = self.plan.scanned_leaves()
        for estimator in self.estimators:
            estimator.prepare(self.plan)

        trace = ProgressTrace(total=total)
        cadence = max(1, total_ticks // self.target_samples)

        def sample(monitor: ExecutionMonitor) -> None:
            snapshot = tracker.snapshot()
            if weighted is not None:
                curr = weighted.current()
                snapshot = weighted.weighted_bounds(snapshot)
            else:
                curr = monitor.total_ticks
            observation = Observation(
                curr=curr,
                bounds=snapshot,
                pipelines=pipelines,
                estimates=estimates,
                leaf_input_consumed=sum(
                    leaf.rows_produced for leaf in scanned_leaves
                ),
            )
            trace.samples.append(
                TraceSample(
                    curr=curr,
                    actual=curr / total if total else 1.0,
                    estimates={
                        estimator.name: estimator.estimate(observation)
                        for estimator in self.estimators
                    },
                    lower_bound=observation.bounds.lower,
                    upper_bound=observation.bounds.upper,
                )
            )

        monitor = ExecutionMonitor()
        monitor.add_observer(sample, every=cadence)
        context = ExecutionContext(monitor)
        for _ in self.plan.root.iterate(context):
            pass
        if not trace.samples or trace.samples[-1].actual < 1.0:
            sample(monitor)
        model_name = self.work_model.name if self.work_model else "getnext"
        return ProgressReport(self.plan.name, int(total), mu_value, trace,
                              model_name)


def run_with_estimators(
    plan: Plan,
    estimators: Sequence[ProgressEstimator],
    catalog: Optional[Catalog] = None,
    target_samples: int = 200,
) -> ProgressReport:
    """One-call convenience wrapper around :class:`ProgressRunner`."""
    return ProgressRunner(plan, estimators, catalog, target_samples).run()
