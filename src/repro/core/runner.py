"""The progress runner: execute a plan while sampling every estimator.

Supports both models of work from §2.2: the GetNext model (default) and the
bytes-processed model — pass a :class:`repro.core.workmodels.WorkModel`; all
quantities (Curr, LB, UB, the true progress) are then expressed in weighted
units, with the estimator formulas unchanged.

Evaluation protocol (the one behind every figure and table in the paper):

1. run the plan **once**, with an observer that every few ticks assembles an
   :class:`Observation` (Curr, runtime bounds, pipeline state) and records
   each estimator's answer;
2. when the run completes, its own final counter *is* the oracle
   ``total(Q)`` (§2.2 — total work is the number of getnext calls the run
   performs, a deterministic property of the plan), so the
   :class:`TraceBuilder` back-fills ``actual = curr / total`` over the raw
   samples and seals them into a :class:`ProgressTrace`.

The estimators never see the truth; it is only attached to samples after
the fact.  Because ``total(Q)`` is unknown *during* the run, the sampling
cadence cannot be derived from it: instead it is seeded from the static
lower bound on total work (the scanned input cardinality — µ's
denominator) and doubles geometrically whenever the retained sample count
outgrows ~2× ``target_samples``, decimating already-taken samples down to
the multiples of the new cadence.  Samples forced by pipeline-boundary
transitions and the terminal sample are pinned and never decimated.

``protocol="two_pass"`` (env ``$REPRO_PROTOCOL``) keeps the legacy
behaviour reachable: an oracle pre-run measures ``total(Q)`` first, so live
events and probes carry eager truth labels.  Both protocols share the same
sampling policy and seal traces from the same end-of-run counters, so their
sealed traces are bit-identical — the differential suite in
``tests/core/test_protocols.py`` holds them to that.

The instrumented run is wired for efficiency and observability: the
:class:`~repro.core.bounds.BoundsTracker` is attached to the monitor's event
stream (so each sample re-derives bounds only for subtrees that changed),
blocking-operator transitions force a sample via the monitor's
pipeline-boundary hook, every estimator call is wall-time profiled into a
:class:`~repro.core.observe.RunProfile`, and structured
:class:`~repro.core.observe.ProgressEvent`\\ s stream to any attached sinks
(e.g. a :class:`~repro.core.observe.JsonlTraceWriter`).
"""

from __future__ import annotations

import threading
import time
import warnings
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import BoundsTracker
from repro.core.estimators.base import Observation, ProgressEstimator
from repro.core.metrics import ProgressTrace, TraceSample
from repro.core.model import mu as compute_mu
from repro.core.model import scanned_input_cardinality
from repro.core.observe import (
    PipelineSnapshot,
    ProgressEvent,
    ProgressEventSink,
    RunProfile,
    emit_to_all,
)
from repro.core.pipelines import Pipeline, decompose
from repro.engine.executor import (
    _engine_choice,
    measure_total_work,
    pipeline_boundary_operators,
)
from repro.engine.monitor import EVENT_TICK, ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan
from repro.errors import ProgressError
from repro.options import PROTOCOLS, ExecutionOptions
from repro.stats.estimate import CardinalityEstimator
from repro.storage.catalog import Catalog


def _protocol_choice(protocol: Optional[str]) -> str:
    """Internal resolution: explicit value → ``$REPRO_PROTOCOL`` → single_pass."""
    return ExecutionOptions(protocol=protocol).resolve().protocol


def default_protocol() -> str:
    """Deprecated: the default protocol now resolves through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call.
    """
    warnings.warn(
        "default_protocol() is deprecated; use "
        "repro.api.ExecutionOptions().resolve().protocol instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _protocol_choice(None)


def resolve_protocol(protocol: Optional[str] = None) -> str:
    """Deprecated: ``protocol=`` keywords now resolve through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call and delegates to the same
    resolution path, so behaviour is unchanged.
    """
    warnings.warn(
        "resolve_protocol() is deprecated; use "
        "repro.api.ExecutionOptions(protocol=...).resolve().protocol instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _protocol_choice(protocol)


#: oracle ``total(Q)`` per plan object, for the two_pass compat path —
#: measuring it runs the whole query, so tracing N estimators (or N runs)
#: over one plan should pay that price once.  Keyed weakly: a collected plan
#: drops its entry.  Totals do not depend on the engine or on scan order (a
#: reshuffling RandomOrderScan changes row order, never row counts), so one
#: entry serves every run.
_TOTAL_WORK_CACHE: "weakref.WeakKeyDictionary[Plan, int]" = (
    weakref.WeakKeyDictionary()
)
#: serializes cache access — service workers consult it concurrently
_TOTAL_WORK_LOCK = threading.Lock()


def _cached_total_work(
    plan: Plan,
    engine: Optional[str] = None,
    *,
    monitor_factory: Optional[Callable[[], ExecutionMonitor]] = None,
) -> int:
    """``measure_total_work`` with a per-plan-object memo.

    ``monitor_factory`` supplies the private oracle monitor (the service
    passes one that checks cancellation/deadlines on every record).  The
    measurement itself runs outside the lock — concurrent first callers may
    both measure, but the result is deterministic so last-write-wins is
    harmless, and a query-length critical section would serialize the
    service's workers.
    """
    with _TOTAL_WORK_LOCK:
        try:
            return _TOTAL_WORK_CACHE[plan]
        except (KeyError, TypeError):
            pass
    monitor = monitor_factory() if monitor_factory is not None else None
    total = measure_total_work(plan, engine=engine, monitor=monitor)
    with _TOTAL_WORK_LOCK:
        try:
            _TOTAL_WORK_CACHE[plan] = total
        except TypeError:
            pass
    return total


def __getattr__(name: str):
    # Deprecation shim: implicit oracle runs are gone with the single-pass
    # protocol, but the helper stays importable for one release.
    if name == "cached_total_work":
        warnings.warn(
            "cached_total_work is deprecated: the default single-pass "
            "protocol labels truth from the instrumented run itself, so "
            "implicit oracle runs are no longer part of evaluation. Call "
            "measure_total_work() for an explicit oracle measurement, or "
            "opt into protocol='two_pass' (env REPRO_PROTOCOL) for the "
            "legacy behaviour.",
            DeprecationWarning,
            stacklevel=2,
        )
        return _cached_total_work
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


class TraceBuilder:
    """Accumulates raw samples during a run; labels truth at seal time.

    The builder is the single-pass protocol's answer to "how do you sample
    ~``target_samples`` evenly when total work is unknown?": it starts at a
    cadence seeded from the static lower bound on ``total(Q)`` and, every
    time the retained unpinned samples exceed ``2 × target_samples``,
    doubles the cadence and decimates — keeping exactly the samples whose
    tick is a multiple of the new cadence.  Because each cadence is twice
    the previous one, every retained tick was sampled under *all* earlier
    cadences, so the surviving set is indistinguishable from one recorded
    at the final cadence from the start.  Pinned samples (pipeline-boundary
    forced rounds, the terminal sample) always survive.
    """

    def __init__(self, target_samples: int, initial_cadence: int) -> None:
        self.cadence = max(1, initial_cadence)
        self._retain_limit = max(2, 2 * target_samples)
        self._samples: List[TraceSample] = []
        self._ticks: List[int] = []
        self._pinned: List[bool] = []
        self._loose = 0  # retained samples that decimation may drop

    @property
    def last(self) -> Optional[TraceSample]:
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, sample: TraceSample, tick: int, pinned: bool) -> bool:
        """Record one raw sample; returns True if the cadence just doubled."""
        self._samples.append(sample)
        self._ticks.append(tick)
        self._pinned.append(pinned)
        if pinned:
            return False
        self._loose += 1
        if self._loose <= self._retain_limit:
            return False
        self._decimate()
        return True

    def _decimate(self) -> None:
        self.cadence *= 2
        cadence = self.cadence
        keep = [
            pinned or tick % cadence == 0
            for tick, pinned in zip(self._ticks, self._pinned)
        ]
        self._samples = [s for s, k in zip(self._samples, keep) if k]
        self._ticks = [t for t, k in zip(self._ticks, keep) if k]
        self._pinned = [p for p, k in zip(self._pinned, keep) if k]
        self._loose = len(self._pinned) - sum(self._pinned)

    def seal(self, total: float) -> ProgressTrace:
        """Back-fill every ``actual`` label and freeze the trace.

        ``total`` is the run's own final work counter.  The terminal sample
        is labeled exactly 1.0 — float noise in weighted models can leave
        ``curr / total`` a hair off at the end of the run, and the terminal
        instant is at progress 1 by definition.
        """
        labeled: List[TraceSample] = []
        final_index = len(self._samples) - 1
        for index, sample in enumerate(self._samples):
            if index == final_index:
                actual = 1.0
            elif total:
                actual = min(sample.curr / total, 1.0)
            else:
                actual = 1.0
            labeled.append(TraceSample(
                curr=sample.curr,
                actual=actual,
                estimates=sample.estimates,
                lower_bound=sample.lower_bound,
                upper_bound=sample.upper_bound,
            ))
        return ProgressTrace(total=total, samples=labeled)


@dataclass
class ProgressReport:
    """Everything one instrumented run produced."""

    plan_name: str
    total: float
    mu: Optional[float]
    trace: ProgressTrace
    #: name of the work model the quantities are expressed in
    work_model: str = "getnext"
    #: wall-time accounting of the run and its instrumentation
    profile: Optional[RunProfile] = None

    def summary(self) -> Dict[str, Dict[str, float]]:
        return self.trace.summary()


class RunnerProbe:
    """Live sampling surface over one in-flight instrumented run.

    Handed to the ``on_probe`` hook just before execution begins.  A probe
    can assemble a :class:`TraceSample` *on demand* — outside the runner's
    cadence — from the incremental bounds tracker and a toolkit of
    estimators.  Under the single-pass protocol ``total`` is None (truth is
    unknown mid-run) and live samples carry ``actual=None``; under
    ``two_pass`` the oracle total labels them eagerly.  The probe performs
    no locking itself: it touches the same tracker memo the executor's
    cadence observer mutates, so cross-thread callers must hold whatever
    lock serializes the monitor (the query service scopes both paths under
    its monitor's lock).
    """

    def __init__(
        self,
        plan: Plan,
        monitor: ExecutionMonitor,
        tracker: BoundsTracker,
        pipelines: List[Pipeline],
        estimates,
        estimators: Sequence[ProgressEstimator],
        total: Optional[float],
        weighted,
        leaf_consumed: List[int],
    ) -> None:
        self.plan = plan
        self.monitor = monitor
        self.tracker = tracker
        self.pipelines = pipelines
        self.estimates = estimates
        self.estimators = list(estimators)
        self.total = total
        self._weighted = weighted
        self._leaf_consumed = leaf_consumed

    def live_sample(self) -> TraceSample:
        """One on-demand sample at the current instant (not thread-safe)."""
        snapshot = self.tracker.snapshot()
        if self._weighted is not None:
            curr = self._weighted.current()
            snapshot = self._weighted.weighted_bounds(snapshot)
        else:
            curr = self.monitor.total_ticks
        observation = Observation(
            curr=curr,
            bounds=snapshot,
            pipelines=self.pipelines,
            estimates=self.estimates,
            leaf_input_consumed=self._leaf_consumed[0],
        )
        values = {
            estimator.name: estimator.estimate(observation)
            for estimator in self.estimators
        }
        if self.total is None:
            actual: Optional[float] = None
        elif self.total:
            actual = min(curr / self.total, 1.0)
        else:
            actual = 1.0
        return TraceSample(
            curr=curr,
            actual=actual,
            estimates=values,
            lower_bound=observation.bounds.lower,
            upper_bound=observation.bounds.upper,
        )


class ProgressRunner:
    """Runs plans under progress instrumentation.

    A runner is reusable: every :meth:`run` builds a fresh monitor, attaches
    a fresh bounds tracker, and re-prepares the estimators.  ``clock`` is
    injectable (default :func:`time.perf_counter`) so profiling and the
    tick-rate/ETA gauges are deterministic under test.
    """

    def __init__(
        self,
        plan: Plan,
        estimators: Sequence[ProgressEstimator],
        catalog: Optional[Catalog] = None,
        target_samples: int = 200,
        work_model=None,
        sinks: Sequence[ProgressEventSink] = (),
        clock: Callable[[], float] = time.perf_counter,
        engine: Optional[str] = None,
        monitor_factory: Optional[Callable[[], ExecutionMonitor]] = None,
        on_probe: Optional[Callable[["RunnerProbe"], None]] = None,
        probe_estimators: Optional[Sequence[ProgressEstimator]] = None,
        protocol: Optional[str] = None,
        bounds: Optional[Sequence[str]] = None,
    ) -> None:
        if not estimators:
            raise ProgressError("at least one estimator is required")
        names = [estimator.name for estimator in estimators]
        if len(set(names)) != len(names):
            raise ProgressError("estimator names must be unique: %s" % (names,))
        self.plan = plan
        self.estimators = list(estimators)
        self.catalog = catalog
        self.target_samples = max(1, target_samples)
        self.work_model = work_model
        self.sinks = list(sinks)
        self.clock = clock
        self.engine = _engine_choice(engine)
        self.protocol = _protocol_choice(protocol)
        #: bound-provider stack for the runtime bounds tracker; None and
        #: $REPRO_BOUNDS resolution both happen in options.py
        self.bounds = ExecutionOptions(bounds=bounds).resolve().bounds
        #: builds every monitor this runner uses (instrumented, plus the
        #: oracle pass under two_pass); the service injects one whose
        #: record/record_batch check cancellation and deadlines under a lock
        self.monitor_factory = monitor_factory or ExecutionMonitor
        #: called with a :class:`RunnerProbe` right before execution starts
        self.on_probe = on_probe
        #: estimators the probe samples with (defaults to the trace toolkit;
        #: pass fresh instances when stateful estimators must not see
        #: out-of-cadence observations)
        self.probe_estimators = probe_estimators

    def run(self) -> ProgressReport:
        weighted = None
        if self.work_model is not None and self.work_model.name != "getnext":
            from repro.core.workmodels import WeightedWork

            weighted = WeightedWork(self.plan, self.work_model)

        # Truth known *during* the run only under two_pass, where an oracle
        # pre-run measures it; it labels live events and probes eagerly.
        # The sealed trace never depends on it — both protocols label at
        # seal time from the run's own final counters, which is what keeps
        # their traces bit-identical.
        live_total: Optional[float] = None
        if self.protocol == "two_pass":
            oracle_ticks = _cached_total_work(
                self.plan, engine=self.engine,
                monitor_factory=self.monitor_factory,
            )
            live_total = float(oracle_ticks)
            if weighted is not None:
                live_total = weighted.total()

        estimates = (
            CardinalityEstimator(self.catalog).estimate_plan(self.plan)
            if self.catalog is not None
            else None
        )
        pipelines: List[Pipeline] = decompose(self.plan)
        tracker = BoundsTracker(self.plan, self.catalog, bounds=self.bounds)
        scanned_leaf_ids = {
            leaf.operator_id for leaf in self.plan.scanned_leaves()
        }
        for estimator in self.estimators:
            estimator.prepare(self.plan)

        # Both protocols share one oracle-free sampling policy: the initial
        # cadence comes from the static lower bound on total(Q) (the
        # scanned input cardinality — µ's denominator, a catalog quantity)
        # and adapts geometrically as the run outgrows it.
        builder = TraceBuilder(
            self.target_samples,
            initial_cadence=scanned_input_cardinality(self.plan)
            // self.target_samples,
        )
        profile = RunProfile()
        clock = self.clock
        sinks = self.sinks
        model_name = self.work_model.name if self.work_model else "getnext"
        started_at = clock()
        # Incremental μ̂-denominator: counting leaf ticks as they happen
        # avoids re-summing leaf counters on every sample.
        leaf_consumed = [0]
        seq = [0]

        def on_tick(operator_id: int, event: str, n: int) -> None:
            if event == EVENT_TICK and operator_id in scanned_leaf_ids:
                leaf_consumed[0] += n

        def emit(kind: str, curr: float, actual: Optional[float],
                 estimate_values: Dict[str, float],
                 lower: float, upper: float,
                 snapshots=(), event_total: Optional[float] = None,
                 payload: Optional[Dict[str, object]] = None) -> None:
            if not sinks:
                return
            elapsed = clock() - started_at
            rate = curr / elapsed if elapsed > 0 and curr > 0 else None
            eta = None
            interval = (None, None)
            if rate is not None:
                primary = (
                    estimate_values.get(self.estimators[0].name)
                    if estimate_values
                    else None
                )
                if primary:
                    eta = max(0.0, curr / primary - curr) / rate
                interval = (
                    max(0.0, lower - curr) / rate,
                    max(0.0, upper - curr) / rate,
                )
            emit_to_all(sinks, ProgressEvent(
                seq=seq[0],
                kind=kind,
                plan=self.plan.name,
                elapsed_seconds=elapsed,
                curr=curr,
                total=event_total,
                actual=actual,
                lower_bound=lower,
                upper_bound=upper,
                estimates=estimate_values,
                pipelines=snapshots,
                ticks_per_second=rate,
                eta_seconds=eta,
                eta_interval_seconds=interval,
                payload=payload,
            ))
            seq[0] += 1

        # Last reported "selected" candidate per combining estimator, so
        # selection *changes* (not every sample) become events.
        last_selected: Dict[str, object] = {}
        # Overlay refinements are re-applied on every snapshot; announce
        # each (operator, provider) pair once per run.
        announced_refinements: set = set()

        def emit_refinements(
            curr: float, estimate_values: Dict[str, float],
            lower: float, upper: float,
        ) -> None:
            for refinement in tracker.last_refinements:
                key = (refinement.operator_id, refinement.provider)
                if key in announced_refinements:
                    continue
                announced_refinements.add(key)
                emit(
                    "bound_refined", curr, None, estimate_values,
                    lower, upper,
                    payload={
                        "operator_id": refinement.operator_id,
                        "operator": refinement.operator,
                        "provider": refinement.provider,
                        "upper_before": refinement.upper_before,
                        "upper_after": refinement.upper_after,
                    },
                )

        def collect_extras(
            curr: float, estimate_values: Dict[str, float],
            lower: float, upper: float,
        ) -> Optional[Dict[str, object]]:
            extras: Dict[str, object] = {}
            for estimator in self.estimators:
                detail = estimator.event_extras()
                if detail is None:
                    continue
                extras[estimator.name] = detail
                selected = detail.get("selected")
                if selected is None:
                    continue
                if last_selected.get(estimator.name) != selected:
                    last_selected[estimator.name] = selected
                    emit(
                        "estimator_selected", curr, None,
                        estimate_values, lower, upper,
                        payload={"estimator": estimator.name, **detail},
                    )
            return {"estimators": extras} if extras else None

        def sample(monitor: ExecutionMonitor, final: bool = False) -> None:
            sample_started = clock()
            tick = monitor.total_ticks
            snapshot = tracker.snapshot()
            if weighted is not None:
                curr = weighted.current()
                snapshot = weighted.weighted_bounds(snapshot)
            else:
                curr = tick
            observation = Observation(
                curr=curr,
                bounds=snapshot,
                pipelines=pipelines,
                estimates=estimates,
                leaf_input_consumed=leaf_consumed[0],
            )
            estimate_values: Dict[str, float] = {}
            for estimator in self.estimators:
                call_started = clock()
                estimate_values[estimator.name] = estimator.estimate(observation)
                profile.profile_for(estimator.name).record(
                    clock() - call_started
                )
            if final:
                actual: Optional[float] = 1.0
            elif live_total is not None:
                actual = min(curr / live_total, 1.0) if live_total else 1.0
            else:
                actual = None
            raw = TraceSample(
                curr=curr,
                actual=actual,
                estimates=estimate_values,
                lower_bound=observation.bounds.lower,
                upper_bound=observation.bounds.upper,
            )
            # Boundary-forced rounds are pinned against decimation, even
            # when they coincide with a cadence multiple — blocking-operator
            # transitions must survive into the sealed trace.
            if builder.add(raw, tick, final or monitor.forced_notification):
                monitor.set_observer_cadence(sample, builder.cadence)
            profile.samples += 1
            if sinks:
                # Capturing per-pipeline snapshots costs real work per
                # sample; only do it when someone is listening.  Extras are
                # collected first so a selection change is announced before
                # the sample that exhibits it.
                emit_refinements(
                    curr, estimate_values,
                    observation.bounds.lower, observation.bounds.upper,
                )
                payload = collect_extras(
                    curr, estimate_values,
                    observation.bounds.lower, observation.bounds.upper,
                )
                emit(
                    "sample", curr, actual, estimate_values,
                    observation.bounds.lower, observation.bounds.upper,
                    tuple(
                        PipelineSnapshot.capture(pipeline, estimates)
                        for pipeline in pipelines
                    ),
                    event_total=live_total,
                    payload=payload,
                )
            profile.sample_seconds += clock() - sample_started

        monitor = self.monitor_factory()
        monitor.mark_pipeline_boundaries(pipeline_boundary_operators(self.plan))
        monitor.add_batch_listener(on_tick)
        tracker.attach(monitor)
        monitor.add_observer(sample, every=builder.cadence)
        if self.on_probe is not None:
            probe_estimators = self.estimators
            if self.probe_estimators is not None:
                probe_estimators = list(self.probe_estimators)
                for estimator in probe_estimators:
                    estimator.prepare(self.plan)
            self.on_probe(RunnerProbe(
                self.plan, monitor, tracker, pipelines, estimates,
                probe_estimators, live_total, weighted, leaf_consumed,
            ))
        emit("run_start", 0.0, 0.0, {}, 0.0, 0.0, event_total=live_total)
        context = ExecutionContext(monitor)
        try:
            if self.engine == "fused":
                from repro.engine.compiled import run_fused

                run_fused(self.plan.root, context)
            elif self.engine == "columnar":
                from repro.engine.columnar import run_columnar

                run_columnar(self.plan.root, context)
            else:
                for _ in self.plan.root.iterate(context):
                    pass
            final_curr = (
                weighted.current() if weighted is not None
                else float(monitor.total_ticks)
            )
            last = builder.last
            if last is None or last.curr != final_curr:
                sample(monitor, final=True)
        except BaseException:
            # Aborted runs (cancellation, deadline, operator failure) must
            # still release their sinks — a JSONL writer left open would
            # leak the handle for the rest of a service's life.
            for sink in sinks:
                sink.close()
            raise
        finally:
            tracker.detach()
            monitor.remove_batch_listener(on_tick)
        # The run is complete: its own counters are the oracle.  Truth
        # labels, total(Q), and µ all come from these end-of-run quantities
        # under *both* protocols.
        final_ticks = monitor.total_ticks
        total: float = (
            weighted.current() if weighted is not None else float(final_ticks)
        )
        trace = builder.seal(total)
        try:
            mu_value: Optional[float] = compute_mu(self.plan, total=final_ticks)
        except ProgressError:
            mu_value = None
        profile.elapsed_seconds = clock() - started_at
        profile.ticks = final_ticks
        final = trace.samples[-1]
        emit("run_end", final.curr, final.actual, final.estimates,
             final.lower_bound, final.upper_bound, event_total=total)
        for sink in sinks:
            sink.close()
        return ProgressReport(self.plan.name, total, mu_value, trace,
                              model_name, profile)


def run_with_estimators(
    plan: Plan,
    estimators: Sequence[ProgressEstimator],
    catalog: Optional[Catalog] = None,
    target_samples: int = 200,
    sinks: Sequence[ProgressEventSink] = (),
    engine: Optional[str] = None,
    protocol: Optional[str] = None,
    bounds: Optional[Sequence[str]] = None,
) -> ProgressReport:
    """One-call convenience wrapper around :class:`ProgressRunner`."""
    return ProgressRunner(
        plan, estimators, catalog, target_samples, sinks=sinks, engine=engine,
        protocol=protocol, bounds=bounds,
    ).run()
