"""The progress runner: execute a plan while sampling every estimator.

Supports both models of work from §2.2: the GetNext model (default) and the
bytes-processed model — pass a :class:`repro.core.workmodels.WorkModel`; all
quantities (Curr, LB, UB, the true progress) are then expressed in weighted
units, with the estimator formulas unchanged.

Evaluation protocol (the one behind every figure and table in the paper):

1. run the plan once on a private monitor to learn the oracle ``total(Q)``;
2. re-run it with an observer that, every few ticks, assembles an
   :class:`Observation` (Curr, runtime bounds, pipeline state) and records
   each estimator's answer next to the true progress;
3. hand back a :class:`ProgressTrace` for metric extraction.

The estimators never see the oracle; it is used only to label samples with
the true progress.

The instrumented run is wired for efficiency and observability: the
:class:`~repro.core.bounds.BoundsTracker` is attached to the monitor's event
stream (so each sample re-derives bounds only for subtrees that changed),
blocking-operator transitions force a sample via the monitor's
pipeline-boundary hook, every estimator call is wall-time profiled into a
:class:`~repro.core.observe.RunProfile`, and structured
:class:`~repro.core.observe.ProgressEvent`\\ s stream to any attached sinks
(e.g. a :class:`~repro.core.observe.JsonlTraceWriter`).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bounds import BoundsTracker
from repro.core.estimators.base import Observation, ProgressEstimator
from repro.core.metrics import ProgressTrace, TraceSample
from repro.core.model import mu as compute_mu
from repro.core.observe import (
    PipelineSnapshot,
    ProgressEvent,
    ProgressEventSink,
    RunProfile,
    emit_to_all,
)
from repro.core.pipelines import Pipeline, decompose
from repro.engine.executor import (
    measure_total_work,
    pipeline_boundary_operators,
    resolve_engine,
)
from repro.engine.monitor import EVENT_TICK, ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan
from repro.errors import ProgressError
from repro.stats.estimate import CardinalityEstimator
from repro.storage.catalog import Catalog


#: oracle ``total(Q)`` per plan object — measuring it runs the whole query,
#: so tracing N estimators (or N runs) over one plan should pay that price
#: once.  Keyed weakly: a collected plan drops its entry.  Totals do not
#: depend on the engine or on scan order (a reshuffling RandomOrderScan
#: changes row order, never row counts), so one entry serves every run.
_TOTAL_WORK_CACHE: "weakref.WeakKeyDictionary[Plan, int]" = (
    weakref.WeakKeyDictionary()
)


def cached_total_work(
    plan: Plan,
    engine: Optional[str] = None,
    *,
    monitor_factory: Optional[Callable[[], ExecutionMonitor]] = None,
) -> int:
    """``measure_total_work`` with a per-plan-object memo.

    ``monitor_factory`` supplies the private oracle monitor (the service
    passes one that checks cancellation/deadlines on every record).
    """
    try:
        return _TOTAL_WORK_CACHE[plan]
    except (KeyError, TypeError):
        monitor = monitor_factory() if monitor_factory is not None else None
        total = measure_total_work(plan, engine=engine, monitor=monitor)
        try:
            _TOTAL_WORK_CACHE[plan] = total
        except TypeError:
            pass
        return total


@dataclass
class ProgressReport:
    """Everything one instrumented run produced."""

    plan_name: str
    total: float
    mu: Optional[float]
    trace: ProgressTrace
    #: name of the work model the quantities are expressed in
    work_model: str = "getnext"
    #: wall-time accounting of the run and its instrumentation
    profile: Optional[RunProfile] = None

    def summary(self) -> Dict[str, Dict[str, float]]:
        return self.trace.summary()


class RunnerProbe:
    """Live sampling surface over one in-flight instrumented run.

    Handed to the ``on_probe`` hook just before execution begins.  A probe
    can assemble a :class:`TraceSample` *on demand* — outside the runner's
    cadence — from the incremental bounds tracker and a toolkit of
    estimators.  It performs no locking itself: the probe touches the same
    tracker memo the executor's cadence observer mutates, so cross-thread
    callers must hold whatever lock serializes the monitor (the query
    service scopes both paths under its monitor's lock).
    """

    def __init__(
        self,
        plan: Plan,
        monitor: ExecutionMonitor,
        tracker: BoundsTracker,
        pipelines: List[Pipeline],
        estimates,
        estimators: Sequence[ProgressEstimator],
        total: float,
        weighted,
        leaf_consumed: List[int],
    ) -> None:
        self.plan = plan
        self.monitor = monitor
        self.tracker = tracker
        self.pipelines = pipelines
        self.estimates = estimates
        self.estimators = list(estimators)
        self.total = total
        self._weighted = weighted
        self._leaf_consumed = leaf_consumed

    def live_sample(self) -> TraceSample:
        """One on-demand sample at the current instant (not thread-safe)."""
        snapshot = self.tracker.snapshot()
        if self._weighted is not None:
            curr = self._weighted.current()
            snapshot = self._weighted.weighted_bounds(snapshot)
        else:
            curr = self.monitor.total_ticks
        observation = Observation(
            curr=curr,
            bounds=snapshot,
            pipelines=self.pipelines,
            estimates=self.estimates,
            leaf_input_consumed=self._leaf_consumed[0],
        )
        values = {
            estimator.name: estimator.estimate(observation)
            for estimator in self.estimators
        }
        actual = min(curr / self.total, 1.0) if self.total else 1.0
        return TraceSample(
            curr=curr,
            actual=actual,
            estimates=values,
            lower_bound=observation.bounds.lower,
            upper_bound=observation.bounds.upper,
        )


class ProgressRunner:
    """Runs plans under progress instrumentation.

    A runner is reusable: every :meth:`run` builds a fresh monitor, attaches
    a fresh bounds tracker, and re-prepares the estimators.  ``clock`` is
    injectable (default :func:`time.perf_counter`) so profiling and the
    tick-rate/ETA gauges are deterministic under test.
    """

    def __init__(
        self,
        plan: Plan,
        estimators: Sequence[ProgressEstimator],
        catalog: Optional[Catalog] = None,
        target_samples: int = 200,
        work_model=None,
        sinks: Sequence[ProgressEventSink] = (),
        clock: Callable[[], float] = time.perf_counter,
        engine: Optional[str] = None,
        monitor_factory: Optional[Callable[[], ExecutionMonitor]] = None,
        on_probe: Optional[Callable[["RunnerProbe"], None]] = None,
        probe_estimators: Optional[Sequence[ProgressEstimator]] = None,
    ) -> None:
        if not estimators:
            raise ProgressError("at least one estimator is required")
        names = [estimator.name for estimator in estimators]
        if len(set(names)) != len(names):
            raise ProgressError("estimator names must be unique: %s" % (names,))
        self.plan = plan
        self.estimators = list(estimators)
        self.catalog = catalog
        self.target_samples = max(1, target_samples)
        self.work_model = work_model
        self.sinks = list(sinks)
        self.clock = clock
        self.engine = resolve_engine(engine)
        #: builds every monitor this runner uses (instrumented *and* oracle);
        #: the service injects one whose record/record_batch check
        #: cancellation and deadlines under a lock
        self.monitor_factory = monitor_factory or ExecutionMonitor
        #: called with a :class:`RunnerProbe` right before execution starts
        self.on_probe = on_probe
        #: estimators the probe samples with (defaults to the trace toolkit;
        #: pass fresh instances when stateful estimators must not see
        #: out-of-cadence observations)
        self.probe_estimators = probe_estimators

    def run(self) -> ProgressReport:
        weighted = None
        if self.work_model is not None and self.work_model.name != "getnext":
            from repro.core.workmodels import WeightedWork

            weighted = WeightedWork(self.plan, self.work_model)
        total_ticks = cached_total_work(
            self.plan, engine=self.engine,
            monitor_factory=self.monitor_factory,
        )
        # Keep weighted totals exact — truncating to int used to make the
        # terminal `actual` overshoot 1.0 under the bytes model.
        total: float = float(total_ticks)
        if weighted is not None:
            total = weighted.total()
        try:
            mu_value: Optional[float] = compute_mu(self.plan, total=total_ticks)
        except ProgressError:
            mu_value = None

        estimates = (
            CardinalityEstimator(self.catalog).estimate_plan(self.plan)
            if self.catalog is not None
            else None
        )
        pipelines: List[Pipeline] = decompose(self.plan)
        tracker = BoundsTracker(self.plan, self.catalog)
        scanned_leaf_ids = {
            leaf.operator_id for leaf in self.plan.scanned_leaves()
        }
        for estimator in self.estimators:
            estimator.prepare(self.plan)

        trace = ProgressTrace(total=total)
        cadence = max(1, total_ticks // self.target_samples)
        profile = RunProfile()
        clock = self.clock
        sinks = self.sinks
        model_name = self.work_model.name if self.work_model else "getnext"
        started_at = clock()
        # Incremental μ̂-denominator: counting leaf ticks as they happen
        # avoids re-summing leaf counters on every sample.
        leaf_consumed = [0]
        seq = [0]

        def on_tick(operator_id: int, event: str, n: int) -> None:
            if event == EVENT_TICK and operator_id in scanned_leaf_ids:
                leaf_consumed[0] += n

        def emit(kind: str, curr: float, actual: float,
                 estimate_values: Dict[str, float],
                 lower: float, upper: float,
                 snapshots=()) -> None:
            if not sinks:
                return
            elapsed = clock() - started_at
            rate = curr / elapsed if elapsed > 0 and curr > 0 else None
            eta = None
            interval = (None, None)
            if rate is not None:
                primary = (
                    estimate_values.get(self.estimators[0].name)
                    if estimate_values
                    else None
                )
                if primary:
                    eta = max(0.0, curr / primary - curr) / rate
                interval = (
                    max(0.0, lower - curr) / rate,
                    max(0.0, upper - curr) / rate,
                )
            emit_to_all(sinks, ProgressEvent(
                seq=seq[0],
                kind=kind,
                plan=self.plan.name,
                elapsed_seconds=elapsed,
                curr=curr,
                total=total,
                actual=actual,
                lower_bound=lower,
                upper_bound=upper,
                estimates=estimate_values,
                pipelines=snapshots,
                ticks_per_second=rate,
                eta_seconds=eta,
                eta_interval_seconds=interval,
            ))
            seq[0] += 1

        def sample(monitor: ExecutionMonitor, final: bool = False) -> None:
            sample_started = clock()
            snapshot = tracker.snapshot()
            if weighted is not None:
                curr = weighted.current()
                snapshot = weighted.weighted_bounds(snapshot)
            else:
                curr = monitor.total_ticks
            observation = Observation(
                curr=curr,
                bounds=snapshot,
                pipelines=pipelines,
                estimates=estimates,
                leaf_input_consumed=leaf_consumed[0],
            )
            estimate_values: Dict[str, float] = {}
            for estimator in self.estimators:
                call_started = clock()
                estimate_values[estimator.name] = estimator.estimate(observation)
                profile.profile_for(estimator.name).record(
                    clock() - call_started
                )
            # Float noise in weighted models can leave curr/total a hair off
            # 1.0 at the end of the run; the terminal sample is by
            # definition at progress 1.
            if final:
                actual = 1.0
            else:
                actual = min(curr / total, 1.0) if total else 1.0
            trace.samples.append(
                TraceSample(
                    curr=curr,
                    actual=actual,
                    estimates=estimate_values,
                    lower_bound=observation.bounds.lower,
                    upper_bound=observation.bounds.upper,
                )
            )
            profile.samples += 1
            if sinks:
                # Capturing per-pipeline snapshots costs real work per
                # sample; only do it when someone is listening.
                emit(
                    "sample", curr, actual, estimate_values,
                    observation.bounds.lower, observation.bounds.upper,
                    tuple(
                        PipelineSnapshot.capture(pipeline, estimates)
                        for pipeline in pipelines
                    ),
                )
            profile.sample_seconds += clock() - sample_started

        monitor = self.monitor_factory()
        monitor.mark_pipeline_boundaries(pipeline_boundary_operators(self.plan))
        monitor.add_batch_listener(on_tick)
        tracker.attach(monitor)
        monitor.add_observer(sample, every=cadence)
        if self.on_probe is not None:
            probe_estimators = self.estimators
            if self.probe_estimators is not None:
                probe_estimators = list(self.probe_estimators)
                for estimator in probe_estimators:
                    estimator.prepare(self.plan)
            self.on_probe(RunnerProbe(
                self.plan, monitor, tracker, pipelines, estimates,
                probe_estimators, total, weighted, leaf_consumed,
            ))
        emit("run_start", 0.0, 0.0, {}, 0.0, 0.0)
        context = ExecutionContext(monitor)
        try:
            if self.engine == "fused":
                from repro.engine.compiled import run_fused

                run_fused(self.plan.root, context)
            else:
                for _ in self.plan.root.iterate(context):
                    pass
            final_curr = (
                weighted.current() if weighted is not None
                else float(monitor.total_ticks)
            )
            last = trace.samples[-1] if trace.samples else None
            if last is None or last.curr != final_curr:
                sample(monitor, final=True)
            elif last.actual != 1.0:
                # Same instant already sampled, only its label is off by
                # float noise: pin it to 1.0 instead of duplicating the
                # sample.
                trace.samples[-1] = TraceSample(
                    curr=last.curr,
                    actual=1.0,
                    estimates=last.estimates,
                    lower_bound=last.lower_bound,
                    upper_bound=last.upper_bound,
                )
        except BaseException:
            # Aborted runs (cancellation, deadline, operator failure) must
            # still release their sinks — a JSONL writer left open would
            # leak the handle for the rest of a service's life.
            for sink in sinks:
                sink.close()
            raise
        finally:
            tracker.detach()
            monitor.remove_batch_listener(on_tick)
        profile.elapsed_seconds = clock() - started_at
        profile.ticks = monitor.total_ticks
        final = trace.samples[-1]
        emit("run_end", final.curr, final.actual, final.estimates,
             final.lower_bound, final.upper_bound)
        for sink in sinks:
            sink.close()
        return ProgressReport(self.plan.name, total, mu_value, trace,
                              model_name, profile)


def run_with_estimators(
    plan: Plan,
    estimators: Sequence[ProgressEstimator],
    catalog: Optional[Catalog] = None,
    target_samples: int = 200,
    sinks: Sequence[ProgressEventSink] = (),
    engine: Optional[str] = None,
) -> ProgressReport:
    """One-call convenience wrapper around :class:`ProgressRunner`."""
    return ProgressRunner(
        plan, estimators, catalog, target_samples, sinks=sinks, engine=engine
    ).run()
