"""Progress observability: structured event streams and run profiling.

The paper's operational motivation — progress bars, kill-or-wait decisions —
needs more than a post-hoc trace: it needs a *live*, structured feed of what
the estimators are saying, what each pipeline is doing, and what the
instrumentation itself costs.  This module supplies that layer:

* :class:`ProgressEvent` — one structured record per sampled instant:
  Curr/total/actual, runtime bounds, every estimator's answer, per-pipeline
  driver state, and the tick-rate / ETA gauges;
* :class:`ProgressEventSink` — where events go.  :class:`MemorySink` keeps
  them for tests and dashboards; :class:`JsonlTraceWriter` streams them as
  JSON Lines (one object per line, append-friendly, ``tail -f``-able);
* :class:`EstimatorProfile` / :class:`RunProfile` — wall-time accounting of
  the instrumentation itself: how long each estimator's ``estimate`` takes,
  how much of the run went to sampling vs. executing the query.  This is
  the measurement behind the sampling-overhead benchmark.

Everything here is dependency-free and JSON-serializable by construction.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.pipelines import Pipeline

#: keys already warned about through :func:`warn_once` (process-wide)
_warned_keys: Set[str] = set()


def warn_once(key: str, message: str, category: type = RuntimeWarning) -> None:
    """Emit ``message`` as a warning the first time ``key`` is seen.

    The observability layer's channel for "you are holding it wrong"
    diagnostics that would be noise if repeated per run — e.g. a per-tick
    listener attached while an engine records coalesced tick batches.
    Process-wide: a key warns once per interpreter, not once per monitor.
    """
    if key in _warned_keys:
        return
    _warned_keys.add(key)
    warnings.warn(message, category, stacklevel=3)


@dataclass(frozen=True)
class PipelineSnapshot:
    """One pipeline's driver state at a sampled instant."""

    index: int
    drivers: Tuple[str, ...]
    started: bool
    finished: bool
    driver_consumed: int
    driver_fraction: float

    @classmethod
    def capture(
        cls, pipeline: Pipeline, estimates: Optional[Dict[int, float]] = None
    ) -> "PipelineSnapshot":
        return cls(
            index=pipeline.index,
            drivers=tuple(driver.label() for driver in pipeline.drivers),
            started=pipeline.started(),
            finished=pipeline.finished(),
            driver_consumed=pipeline.driver_consumed(),
            driver_fraction=pipeline.driver_fraction(estimates),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "drivers": list(self.drivers),
            "started": self.started,
            "finished": self.finished,
            "driver_consumed": self.driver_consumed,
            "driver_fraction": self.driver_fraction,
        }


@dataclass(frozen=True)
class ProgressEvent:
    """One structured record of an instrumented run's event stream.

    ``kind`` is ``"run_start"``, ``"sample"`` or ``"run_end"``; samples carry
    the full estimator/bounds/pipeline state, the boundary events carry the
    frame (plan name, totals, work model).  Two annotation kinds interleave
    with samples: ``"estimator_selected"`` when a combining estimator
    switches candidates, and ``"bound_refined"`` the first time an overlay
    bound provider tightens an operator's upper bound (payload: operator,
    provider, upper bound before/after).

    ``total`` and ``actual`` are ``None`` on live events under the default
    single-pass protocol: truth is unknown until the run finishes, so only
    ``run_end`` (and the sealed trace) carry labels.  Under ``two_pass``
    the oracle total labels every event eagerly, as before.
    """

    seq: int
    kind: str
    plan: str
    elapsed_seconds: float
    curr: float
    total: Optional[float]
    actual: Optional[float]
    lower_bound: float
    upper_bound: float
    estimates: Dict[str, float]
    pipelines: Tuple[PipelineSnapshot, ...] = ()
    #: observed work rate so far (None until any time has elapsed)
    ticks_per_second: Optional[float] = None
    #: point ETA from the first estimator's answer (None when unknown)
    eta_seconds: Optional[float] = None
    #: sound remaining-time interval from the runtime bounds
    eta_interval_seconds: Tuple[Optional[float], Optional[float]] = (None, None)
    payload: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "plan": self.plan,
            "elapsed_seconds": self.elapsed_seconds,
            "curr": self.curr,
            "total": self.total,
            "actual": self.actual,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "estimates": dict(self.estimates),
            "pipelines": [snapshot.to_dict() for snapshot in self.pipelines],
            "ticks_per_second": self.ticks_per_second,
            "eta_seconds": self.eta_seconds,
            "eta_interval_seconds": list(self.eta_interval_seconds),
        }
        if self.payload is not None:
            record["payload"] = self.payload
        return record


class ProgressEventSink:
    """Receives :class:`ProgressEvent`\\ s as a run produces them."""

    def emit(self, event: ProgressEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; safe to call more than once."""


class MemorySink(ProgressEventSink):
    """Keeps every event in memory (tests, dashboards, notebooks)."""

    def __init__(self) -> None:
        self.events: List[ProgressEvent] = []

    def emit(self, event: ProgressEvent) -> None:
        self.events.append(event)

    def samples(self) -> List[ProgressEvent]:
        return [event for event in self.events if event.kind == "sample"]


class ForwardingSink(ProgressEventSink):
    """Forwards each event to a callable instead of storing or writing it.

    This is the bridge that moves a run's event stream across an execution
    boundary: the multiprocess query service attaches one inside each
    worker with ``send=pipe.send`` so cadence samples, life-cycle events
    and the final trace frame stream back to the parent as they happen.
    ``kinds`` optionally restricts which event kinds cross (``None``
    forwards everything); serialization is the transport's business —
    events are plain frozen dataclasses and pickle cleanly.
    """

    def __init__(self, send, kinds: Optional[Sequence[str]] = None) -> None:
        self._send = send
        self._kinds = frozenset(kinds) if kinds is not None else None

    def emit(self, event: ProgressEvent) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self._send(event)


class JsonlTraceWriter(ProgressEventSink):
    """Streams events as JSON Lines to a path or an open text handle.

    One JSON object per line, flushed per event, so a running query's trace
    can be followed live (``tail -f out.jsonl``).  Usable as a context
    manager; closing is idempotent and never closes a handle it did not
    open.
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._handle: IO[str] = target
            self._owns_handle = False
        else:
            self._handle = open(target, "w")
            self._owns_handle = True
        self.lines_written = 0

    def emit(self, event: ProgressEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class EstimatorProfile:
    """Wall-time accounting for one estimator across a run."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "avg_seconds": self.avg_seconds,
            "max_seconds": self.max_seconds,
        }


@dataclass
class RunProfile:
    """What one instrumented run cost, and where the time went."""

    elapsed_seconds: float = 0.0
    ticks: int = 0
    samples: int = 0
    #: total wall time spent inside the sampling observer (snapshots +
    #: estimator calls + event emission) — the instrumentation overhead
    sample_seconds: float = 0.0
    estimators: Dict[str, EstimatorProfile] = field(default_factory=dict)

    def profile_for(self, name: str) -> EstimatorProfile:
        profile = self.estimators.get(name)
        if profile is None:
            profile = EstimatorProfile(name)
            self.estimators[name] = profile
        return profile

    @property
    def ticks_per_second(self) -> Optional[float]:
        if self.elapsed_seconds <= 0:
            return None
        return self.ticks / self.elapsed_seconds

    @property
    def avg_sample_seconds(self) -> float:
        return self.sample_seconds / self.samples if self.samples else 0.0

    @property
    def overhead_fraction(self) -> float:
        """Share of the run's wall time spent sampling."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.sample_seconds / self.elapsed_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "ticks": self.ticks,
            "samples": self.samples,
            "sample_seconds": self.sample_seconds,
            "avg_sample_seconds": self.avg_sample_seconds,
            "ticks_per_second": self.ticks_per_second,
            "overhead_fraction": self.overhead_fraction,
            "estimators": {
                name: profile.to_dict()
                for name, profile in sorted(self.estimators.items())
            },
        }


def emit_to_all(sinks: Sequence[ProgressEventSink], event: ProgressEvent) -> None:
    for sink in sinks:
        sink.emit(event)
