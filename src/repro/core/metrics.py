"""Accuracy metrics for progress traces (§2.5's guarantee notions).

Two families of guarantees are evaluated:

* the **ratio-error** requirement — the estimate is within a factor *e* of
  the true progress at every instant;
* the **threshold** requirement (τ, δ) — the estimator correctly answers
  "above or below τ?" whenever the true progress is outside the grey area
  τ ± δ.

Plus the absolute max/avg errors the paper's Table 1 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def ratio_error(estimate: float, actual: float) -> float:
    """max(estimate/actual, actual/estimate), with zero handling.

    Both zero → 1 (perfect); exactly one zero → ∞ (no finite factor works).
    """
    if estimate == actual:
        return 1.0
    if estimate <= 0 or actual <= 0:
        return float("inf")
    return max(estimate / actual, actual / estimate)


#: floor for log-ratio residuals: a zero estimate against a non-zero truth
#: is "very wrong", not "infinitely wrong" — an unbounded residual would
#: let one early sample dominate every statistic built on it
RESIDUAL_FLOOR = 1e-9


def log_ratio_residual(estimate: float, actual: float) -> float:
    """Signed log-space residual ``log(estimate / actual)``.

    The currency of the robust-combination machinery (König et al. 2012):
    ``|r|`` is ``log`` of the ratio error, so squared residuals aggregate
    like variances and the sign keeps over- vs under-estimation visible.
    Non-positive inputs are floored at :data:`RESIDUAL_FLOOR`.
    """
    return math.log(
        max(estimate, RESIDUAL_FLOOR) / max(actual, RESIDUAL_FLOOR)
    )


@dataclass(frozen=True)
class TraceSample:
    """One sampled instant of an instrumented execution.

    ``curr`` is an integer tick count under the GetNext model but a float
    under weighted work models (bytes processed).

    ``actual`` is the true progress at the sampled instant.  Under the
    single-pass protocol truth is only known once the run finishes, so live
    samples (those observed through a probe or service handle while the
    query is still executing) carry ``actual=None``; sealed traces — what
    :class:`ProgressTrace` holds — are always fully labeled.
    """

    curr: float
    actual: Optional[float]
    estimates: Dict[str, float]
    lower_bound: float = 0.0
    upper_bound: float = 0.0


@dataclass
class ProgressTrace:
    """All labeled samples of one instrumented run, plus total(Q).

    Construction is two-phase: the runner's ``TraceBuilder`` accumulates
    raw samples during execution and labels every ``actual`` at seal time,
    so a ProgressTrace in the wild never contains unlabeled samples.
    """

    total: float
    samples: List[TraceSample] = field(default_factory=list)

    def estimator_names(self) -> List[str]:
        return list(self.samples[0].estimates) if self.samples else []

    def series(self, name: str) -> List[Tuple[float, float]]:
        """(actual, estimate) pairs — the axes of Figures 3-5 and 7."""
        return [(s.actual, s.estimates[name]) for s in self.samples]

    # -- absolute errors (Table 1's metric) -------------------------------------

    def abs_errors(self, name: str) -> List[float]:
        return [abs(s.estimates[name] - s.actual) for s in self.samples]

    def max_abs_error(self, name: str) -> float:
        errors = self.abs_errors(name)
        return max(errors) if errors else 0.0

    def avg_abs_error(self, name: str) -> float:
        errors = self.abs_errors(name)
        return sum(errors) / len(errors) if errors else 0.0

    # -- ratio errors (the paper's guarantee currency) ----------------------------

    def ratio_errors(self, name: str, min_actual: float = 0.0) -> List[float]:
        return [
            ratio_error(s.estimates[name], s.actual)
            for s in self.samples
            if s.actual > min_actual
        ]

    def max_ratio_error(self, name: str, min_actual: float = 0.0) -> float:
        errors = self.ratio_errors(name, min_actual)
        return max(errors) if errors else 1.0

    def avg_ratio_error(self, name: str, min_actual: float = 0.0) -> float:
        errors = self.ratio_errors(name, min_actual)
        return sum(errors) / len(errors) if errors else 1.0

    def ratio_error_series(self, name: str) -> List[Tuple[float, float]]:
        """(actual progress, ratio error) pairs — the axes of Figure 6."""
        return [
            (s.actual, ratio_error(s.estimates[name], s.actual))
            for s in self.samples
            if s.actual > 0
        ]

    def ratio_error_after(self, name: str, fraction: float) -> float:
        """Worst ratio error over samples with actual progress ≥ fraction.

        This is how Property 2 ("after half the tuples...") and Figure 6
        ("drops to 1.5 after 30%") are checked.
        """
        errors = [
            ratio_error(s.estimates[name], s.actual)
            for s in self.samples
            if s.actual >= fraction
        ]
        return max(errors) if errors else 1.0

    # -- threshold requirement ------------------------------------------------------

    def threshold_violations(
        self, name: str, tau: float, delta: float
    ) -> List[TraceSample]:
        """Samples violating the (τ, δ) threshold requirement (§2.5)."""
        violations = []
        for sample in self.samples:
            estimate = sample.estimates[name]
            if sample.actual < tau - delta and estimate >= tau:
                violations.append(sample)
            elif sample.actual > tau + delta and estimate <= tau:
                violations.append(sample)
        return violations

    def meets_threshold(self, name: str, tau: float, delta: float) -> bool:
        return not self.threshold_violations(name, tau, delta)

    # -- summaries ----------------------------------------------------------------------

    def summary(self, names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
        """Per-estimator metric table."""
        names = list(names) if names is not None else self.estimator_names()
        return {
            name: {
                "max_abs_error": self.max_abs_error(name),
                "avg_abs_error": self.avg_abs_error(name),
                "max_ratio_error": self.max_ratio_error(name, min_actual=0.01),
                "avg_ratio_error": self.avg_ratio_error(name, min_actual=0.01),
            }
            for name in names
        }

    def __len__(self) -> int:
        return len(self.samples)
