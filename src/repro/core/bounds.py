"""Runtime lower/upper bounds on operator cardinalities (§5.1).

At any instant during execution the :class:`BoundsTracker` computes, for
every operator, guaranteed bounds on the *total* number of counted getnext
calls that operator will have performed by the end of the query.  Summed
over the plan, these give ``LB`` and ``UB`` with the invariant

    Curr ≤ LB ≤ total(Q) ≤ UB

which pmax (``Curr/LB``) and safe (``Curr/√(LB·UB)``) consume directly.

Rules implemented (refined on every inspection):

* scanned leaves contribute their exact catalog cardinality;
* index seeks use histogram bucket bounds when a statistic exists (footnote
  2 of the paper), otherwise the index's exact range count;
* σ's lower bound is the rows returned so far; its upper bound is what its
  child can still deliver — and when the filter is a single range predicate
  directly over a base-table scan, the table's own histogram tightens both
  ends (the buckets were built over exactly that data, so fully-covered
  buckets are guaranteed matches: the footnote-2 refinement);
* π / sort / merge-pass-through keep their child's bounds; a finished sort
  pins the cardinality of the pipeline it drives;
* γ lower-bounds by groups seen so far (scalar aggregates are exactly 1);
* linear joins (declared, e.g. FK joins) upper-bound by the larger input;
  general joins by the product;
* the inner subtree of a ⋈NL is multiplied by the outer's output bounds
  (each outer row rescans it), and per-pass runtime refinements are
  disabled there (counters are cumulative across rescans);
* below a LIMIT, "will be fully scanned" no longer holds, so descendants
  fall back to produced-so-far lower bounds — the effect stops at blocking
  operators, which always drain their input;
* a finished operator's bounds collapse to its exact count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.operators.aggregate import HashAggregate, StreamAggregate
from repro.engine.operators.base import Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.index_seek import IndexSeek
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.misc import Distinct, Limit, UnionAll
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.project import Project
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.sort import Sort
from repro.engine.operators.topn import TopN
from repro.engine.plan import Plan
from repro.stats.histogram import Histogram
from repro.storage.catalog import Catalog


@dataclass(frozen=True)
class NodeBounds:
    """Bounds on one node's total counted getnext calls."""

    lower: float
    upper: float


@dataclass(frozen=True)
class BoundsSnapshot:
    """Plan-wide bounds at one instant."""

    curr: int
    lower: float
    upper: float
    per_node: Dict[int, NodeBounds]

    @property
    def ratio(self) -> float:
        """UB/LB — safe's worst-case ratio error is √(this)."""
        if self.lower <= 0:
            return float("inf")
        return self.upper / self.lower


class BoundsTracker:
    """Computes :class:`BoundsSnapshot`s for a plan during execution."""

    def __init__(self, plan: Plan, catalog: Optional[Catalog] = None) -> None:
        self.plan = plan
        self.catalog = catalog

    # -- public ------------------------------------------------------------------

    def snapshot(self) -> BoundsSnapshot:
        per_node: Dict[int, NodeBounds] = {}
        self._visit(self.plan.root, 1.0, 1.0, single_exec=True, full_scan=True,
                    out=per_node)
        curr = sum(op.rows_produced for op in self.plan.operators())
        lower = sum(bounds.lower for bounds in per_node.values())
        upper = sum(bounds.upper for bounds in per_node.values())
        # The work already done is itself a lower bound on the total.
        lower = max(lower, float(curr))
        upper = max(upper, lower)
        return BoundsSnapshot(curr, lower, upper, per_node)

    # -- recursion ----------------------------------------------------------------

    def _visit(
        self,
        node: Operator,
        exec_lower: float,
        exec_upper: float,
        single_exec: bool,
        full_scan: bool,
        out: Dict[int, NodeBounds],
    ) -> Tuple[float, float]:
        """Record bounds for ``node``'s subtree; return per-pass output bounds.

        ``exec_lower/upper`` bound how many times this subtree executes;
        ``single_exec`` says the runtime counters can be read as per-pass
        values; ``full_scan`` says ancestors are guaranteed to drain this
        node completely (false below a LIMIT).
        """
        lower, upper = self._node_bounds(node, single_exec, full_scan, out,
                                         exec_lower, exec_upper)
        ticks = float(node.rows_produced)
        total_lower = max(lower * exec_lower, ticks)
        total_upper = max(upper * exec_upper, total_lower)
        out[node.operator_id] = NodeBounds(total_lower, total_upper)
        return lower, upper

    def _node_bounds(
        self,
        node: Operator,
        single_exec: bool,
        full_scan: bool,
        out: Dict[int, NodeBounds],
        exec_lower: float,
        exec_upper: float,
    ) -> Tuple[float, float]:
        produced = node.rows_produced if single_exec else 0
        finished = node.finished and single_exec

        def recurse(child: Operator, drains: bool = False) -> Tuple[float, float]:
            # A blocking consumer drains its input no matter what happens
            # above it, so `drains=True` restores the full-scan guarantee a
            # LIMIT higher up would otherwise cancel — and, because blocking
            # state is spooled across NL-join rescans, the drained subtree
            # executes exactly once regardless of the rescan count.
            if drains:
                return self._visit(child, 1.0, 1.0, True, True, out)
            return self._visit(
                child, exec_lower, exec_upper, single_exec, full_scan, out
            )

        if finished:
            # A finished node is never pulled again, so nothing below it can
            # do further work either: freeze the whole subtree at its current
            # tick counts.  (This also nails the case of a finished LIMIT
            # whose descendants stopped mid-stream without finishing.)
            for descendant in node.walk():
                if descendant is node:
                    continue
                ticks = float(descendant.rows_produced)
                out[descendant.operator_id] = NodeBounds(ticks, ticks)
            return float(produced), float(produced)

        if isinstance(node, (TableScan, RowSource)):
            n = float(node.base_cardinality())
            if full_scan:
                return n, n
            return float(produced), n

        if isinstance(node, IndexSeek):
            return self._index_seek_bounds(node, produced, full_scan)

        if isinstance(node, Filter):
            child_lower, child_upper = recurse(node.child)
            consumed = node.child.rows_produced if single_exec else 0
            remaining = max(0.0, child_upper - consumed)
            # +1: a row the child just produced may be in flight inside this
            # filter (observers fire inside the child's get_next, before the
            # filter has decided the row's fate).
            in_flight = 1.0 if single_exec and consumed > produced else 0.0
            lower = float(produced)
            upper = float(produced) + remaining + in_flight
            histogram_bounds = self._filter_histogram_bounds(node)
            if histogram_bounds is not None and single_exec and full_scan:
                hist_lower, hist_upper = histogram_bounds
                lower = max(lower, float(hist_lower))
                upper = min(upper, max(float(hist_upper), lower))
            return lower, upper

        if isinstance(node, (Project, Sort)):
            child_lower, child_upper = recurse(node.child, drains=isinstance(node, Sort))
            if isinstance(node, Sort):
                # Spooled once even under rescans: the materialized count is
                # this node's exact per-pass output — but a LIMIT above may
                # still cut the emission short, so it is only a lower bound
                # when the full-scan guarantee is gone.
                materialized = node.materialized_count()
                if materialized is not None:
                    if full_scan:
                        return float(materialized), float(materialized)
                    return float(produced), float(materialized)
            if not full_scan:
                return float(produced), child_upper
            return max(child_lower, float(produced)), child_upper

        if isinstance(node, TopN):
            child_lower, child_upper = recurse(node.child, drains=True)
            materialized = node.materialized_count()
            if materialized is not None:
                if full_scan:
                    return float(materialized), float(materialized)
                return float(produced), float(materialized)
            upper = min(float(node.limit), child_upper)
            lower = float(produced)
            if full_scan:
                lower = max(lower, min(float(node.limit), child_lower))
            return lower, max(upper, lower)

        if isinstance(node, Distinct):
            _, child_upper = recurse(node.child)
            return float(produced), max(child_upper, float(produced))

        if isinstance(node, (HashAggregate, StreamAggregate)):
            _, child_upper = recurse(node.child, drains=isinstance(node, HashAggregate))
            if not node.group_by:
                return (1.0 if full_scan else float(produced)), 1.0
            groups = 0.0
            if isinstance(node, HashAggregate):
                # Also spooled once: group counts are per-pass exact.
                if node.input_consumed:
                    exact = float(node.groups_seen())
                    if full_scan:
                        return exact, exact
                    return float(produced), exact
                groups = float(node.groups_seen())
            lower = max(groups, float(produced)) if full_scan else float(produced)
            return lower, max(child_upper, lower, groups)

        if isinstance(node, HashJoin):
            build_lower, build_upper = recurse(node.build_child, drains=True)
            probe_lower, probe_upper = recurse(node.probe_child)
            lower, upper = self._join_output_bounds(
                node, produced, build_upper, probe_upper
            )
            if node.preserve_probe:
                # Probe-side outer join: every probe row emits at least one
                # output row (a match or a NULL-padded copy).
                if full_scan:
                    lower = max(lower, probe_lower)
                upper = upper + probe_upper
            return lower, upper

        if isinstance(node, MergeJoin):
            left_lower, left_upper = recurse(node.left)
            right_lower, right_upper = recurse(node.right)
            return self._join_output_bounds(node, produced, left_upper, right_upper)

        if isinstance(node, IndexNestedLoopsJoin):
            outer_lower, outer_upper = recurse(node.child)
            inner_size = float(len(node.index.table))
            if node.is_linear:
                upper = max(outer_upper, inner_size)
            else:
                upper = outer_upper * inner_size
            return float(produced), max(upper, float(produced))

        if isinstance(node, NestedLoopsJoin):
            outer_lower, outer_upper = self._visit(
                node.left, exec_lower, exec_upper, single_exec, full_scan, out
            )
            # The inner subtree runs once per outer row; its counters are
            # cumulative across rescans, so per-pass refinement is off.  If a
            # LIMIT above can cut the join mid-stream, the latest rescan may
            # be incomplete, so only outer_lower - 1 passes are guaranteed.
            guaranteed_passes = outer_lower if full_scan else max(0.0, outer_lower - 1)
            inner_lower, inner_upper = self._visit(
                node.right,
                exec_lower * guaranteed_passes,
                exec_upper * outer_upper,
                single_exec=False,
                full_scan=True,
                out=out,
            )
            return self._join_output_bounds(node, produced, outer_upper, inner_upper)

        if isinstance(node, Limit):
            # Descendants may be cut off mid-stream: drop their full-scan
            # lower bounds (blocking descendants re-enable it themselves via
            # `finished`/materialized refinements).
            _, child_upper = self._visit(
                node.child, exec_lower, exec_upper, single_exec, False, out
            )
            upper = min(float(node.limit), max(0.0, child_upper - node.offset))
            return float(produced), max(upper, float(produced))

        if isinstance(node, UnionAll):
            lowers, uppers = 0.0, 0.0
            for child in node.children:
                child_lower, child_upper = recurse(child)
                lowers += child_lower
                uppers += child_upper
            return max(lowers, float(produced)), max(uppers, float(produced))

        # Unknown operator: be conservative.
        lowers, uppers = 0.0, 0.0
        for child in node.children:
            child_lower, child_upper = recurse(child)
            lowers += child_lower
            uppers += child_upper
        return float(produced), max(uppers, float(produced))

    # -- helpers ----------------------------------------------------------------------

    def _index_seek_bounds(
        self, node: IndexSeek, produced: int, full_scan: bool
    ) -> Tuple[float, float]:
        statistic = None
        if self.catalog is not None:
            statistic = self.catalog.statistic(node.index.table.name, node.index.column)
        if isinstance(statistic, Histogram):
            lower, upper = statistic.range_bounds(node.low, node.high)
        else:
            exact = node.exact_match_count()
            lower, upper = exact, exact
        if not full_scan:
            lower = 0
        return max(float(lower), float(produced)), max(float(upper), float(produced))

    def _filter_histogram_bounds(
        self, node: Filter
    ) -> Optional[Tuple[int, int]]:
        """Guaranteed output bounds for a range filter over a base scan.

        Applies only when the filter's predicate is a single range-shaped
        comparison on a column of the table its child scans: the catalog
        histogram was built over exactly those rows, so bucket arithmetic
        yields *guaranteed* bounds on the matching row count (footnote 2).
        """
        from repro.engine.expressions import as_column_range

        if self.catalog is None or not isinstance(node.child, TableScan):
            return None
        shape = as_column_range(node.predicate)
        if shape is None:
            return None
        column, low, high, low_inclusive, high_inclusive = shape
        if not (low_inclusive and high_inclusive):
            # Bucket bounds are inclusive; exclusive ends would need value
            # adjustment per type — skip rather than risk unsoundness.
            return None
        table_name = node.child.table.name
        bare = column.split(".")[-1]
        if not node.child.schema.has_column(column):
            return None
        statistic = self.catalog.statistic(table_name, bare)
        if not isinstance(statistic, Histogram):
            return None
        return statistic.range_bounds(low, high)

    @staticmethod
    def _join_output_bounds(
        node: Operator, produced: int, left_upper: float, right_upper: float
    ) -> Tuple[float, float]:
        if node.is_linear:
            upper = max(left_upper, right_upper)
        else:
            upper = left_upper * right_upper
        return float(produced), max(upper, float(produced))
