"""The GetNext model of work (§2.2) and the μ statistic (§5.2).

``total(Q)`` is the number of counted getnext calls a full execution of the
plan performs; ``progress`` of a prefix is the fraction of those calls done.
μ is the average work per *input* tuple — ``total(Q)`` divided by the summed
cardinalities of the leaves that are scanned exactly once — and is the knob
that controls pmax's worst-case ratio error (Theorem 5: prog ≤ pmax ≤ μ·prog).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.engine.executor import measure_total_work
from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan
from repro.errors import ProgressError


def total_work(plan: Plan, engine: Optional[str] = None) -> int:
    """``total(Q)``: counted getnext calls over a full run of ``plan``.

    ``engine`` resolves like everywhere else (explicit argument, then
    ``$REPRO_ENGINE``, then the built-in default); totals are identical
    across engines, but the resolution keeps measurement on the engine the
    caller benchmarks.
    """
    return measure_total_work(plan, engine=engine)


def scanned_input_cardinality(plan: Plan) -> int:
    """``Σ L_i`` over the scanned leaves ``L_s`` of the plan (§5.2)."""
    return sum(leaf.base_cardinality() for leaf in plan.scanned_leaves())


def mu(plan: Plan, total: Optional[int] = None,
       engine: Optional[str] = None) -> float:
    """The paper's μ: total work per scanned input tuple.

    Runs the plan once (on the resolved ``engine``) if ``total`` is not
    supplied.  Raises when the plan has no scanned leaves (μ is undefined
    there).
    """
    denominator = scanned_input_cardinality(plan)
    if denominator == 0:
        raise ProgressError("mu undefined: plan %s has no scanned leaves" % (plan.name,))
    if total is None:
        total = total_work(plan, engine=engine)
    return total / denominator


@dataclass
class DriverWorkProfile:
    """Per-driver-tuple work for a single-pipeline query (§4.2).

    ``work[i]`` is the number of getnext calls attributable to the i-th
    tuple retrieved from the driver node (including the call that retrieved
    it).  ``mean`` and ``variance`` are the μ and *var* of Theorem 3's
    analysis of dne.
    """

    work: List[int]

    @property
    def mean(self) -> float:
        if not self.work:
            return 0.0
        return sum(self.work) / len(self.work)

    @property
    def variance(self) -> float:
        if len(self.work) < 2:
            return 0.0
        mean = self.mean
        return sum((w - mean) ** 2 for w in self.work) / len(self.work)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def is_c_predictive(self, c: float, fraction: float = 0.5) -> bool:
        """§4.2's predictive-order test.

        True when, after ``fraction`` of the driver tuples, the average work
        per tuple so far is within a factor ``c`` of the overall mean μ.
        """
        if c < 1:
            raise ProgressError("predictiveness factor c must be >= 1")
        if not self.work:
            return True
        half = max(1, math.ceil(len(self.work) * fraction))
        partial_mean = sum(self.work[:half]) / half
        overall = self.mean
        if overall == 0:
            return partial_mean == 0
        if partial_mean == 0:
            return False
        ratio = partial_mean / overall
        return 1.0 / c <= ratio <= c


def driver_work_profile(plan: Plan, driver) -> DriverWorkProfile:
    """Measure the work vector of a pipeline by running ``plan`` once.

    ``driver`` is the driver operator (e.g. the outer table scan).  Work
    between two consecutive driver getnext calls — plus trailing work after
    the last driver tuple — is attributed to the earlier tuple, matching the
    paper's "number of getnext calls performed for a given tuple of D".
    """
    monitor = ExecutionMonitor()
    boundaries: List[int] = []

    def observe(m: ExecutionMonitor) -> None:
        del m

    # Record the global tick count at each driver-row retrieval.
    driver_id = driver.operator_id

    def tick_observer(m: ExecutionMonitor) -> None:
        # Called on every tick; cheap check for driver ticks.
        if m.count_for(driver_id) > len(boundaries):
            boundaries.append(m.total_ticks)

    monitor.add_observer(tick_observer, every=1)
    context = ExecutionContext(monitor)
    for _ in plan.root.iterate(context):
        pass
    del observe
    if not boundaries:
        return DriverWorkProfile([])
    work: List[int] = []
    for i, start in enumerate(boundaries):
        end = boundaries[i + 1] if i + 1 < len(boundaries) else monitor.total_ticks + 1
        work.append(end - start)
    return DriverWorkProfile(work)


def progress_of(curr: int, total: int) -> float:
    """``progress(s) = |s| / total(Q)`` (guarding the empty query)."""
    if total <= 0:
        return 1.0
    return curr / total
