"""Remaining-time estimation on top of progress estimators.

The paper's motivation is operational: "help end users or applications
decide whether to terminate the query or allow it to complete."  That
decision needs wall-clock, not fractions.  :class:`EtaEstimator` converts a
progress estimate into a time-to-completion figure by tracking the observed
tick rate, and — because the progress layer exposes *guaranteed* bounds —
also yields a sound remaining-work interval:

    remaining work ∈ [LB − Curr, UB − Curr]

divided by the observed rate gives an ETA interval whose honesty degrades
only with rate variability, never with cardinality surprises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.estimators.base import Observation, ProgressEstimator
from repro.errors import ProgressError


@dataclass(frozen=True)
class EtaReading:
    """One remaining-time report."""

    #: point estimate of seconds remaining (None until a rate is known)
    seconds_remaining: Optional[float]
    #: guaranteed remaining-work interval divided by the observed rate
    interval_seconds: Tuple[Optional[float], Optional[float]]
    #: observed work rate, ticks per second
    ticks_per_second: Optional[float]
    #: the underlying progress estimate
    progress: float


class EtaEstimator:
    """Tracks tick throughput and converts progress into remaining time.

    Feed it ``observe(curr, elapsed_seconds)`` pairs (the caller owns the
    clock, so tests can be deterministic), then ask :meth:`read` with the
    matching :class:`Observation`.
    """

    def __init__(
        self,
        estimator: ProgressEstimator,
        window: int = 16,
        min_observations: int = 2,
    ) -> None:
        if window < 2:
            raise ProgressError("window must be >= 2")
        self.estimator = estimator
        self.window = window
        self.min_observations = min_observations
        self._history: list = []

    def observe(self, curr: float, elapsed_seconds: float) -> None:
        """Record that ``curr`` work units were done after ``elapsed`` s."""
        if self._history and elapsed_seconds < self._history[-1][1]:
            raise ProgressError("elapsed time must be non-decreasing")
        self._history.append((curr, elapsed_seconds))
        if len(self._history) > self.window:
            self._history.pop(0)

    def rate(self) -> Optional[float]:
        """Observed ticks/second over the window; None until measurable."""
        if len(self._history) < self.min_observations:
            return None
        (first_curr, first_time) = self._history[0]
        (last_curr, last_time) = self._history[-1]
        span = last_time - first_time
        if span <= 0 or last_curr <= first_curr:
            return None
        return (last_curr - first_curr) / span

    def read(self, observation: Observation) -> EtaReading:
        """Remaining-time estimate for the current instant.

        The point estimate is None until both a rate and at least one unit
        of work are observed.  The interval endpoints inherit the bounds'
        honesty: an infinite upper bound yields an infinite (unbounded)
        interval ceiling rather than a fabricated finite one.
        """
        progress = self.estimator.estimate(observation)
        ticks_per_second = self.rate()
        if ticks_per_second is None:
            return EtaReading(None, (None, None), None, progress)
        curr = observation.curr
        # Point estimate from the progress fraction.  Zero work done means
        # the fraction cannot be extrapolated to a total — curr/progress
        # would claim a zero-tick query, i.e. "0 seconds remaining" at
        # query start — so the point estimate stays unknown until the
        # first counted tick.
        if progress > 0 and curr > 0:
            total_estimate = curr / progress
            remaining_ticks = max(0.0, total_estimate - curr)
            seconds = remaining_ticks / ticks_per_second
        else:
            seconds = None
        # Sound interval from the bounds.
        lower_ticks = max(0.0, observation.bounds.lower - curr)
        upper_ticks = max(0.0, observation.bounds.upper - curr)
        interval = (
            lower_ticks / ticks_per_second,
            upper_ticks / ticks_per_second,
        )
        return EtaReading(seconds, interval, ticks_per_second, progress)
