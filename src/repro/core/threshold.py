"""The threshold interface of §2.5, as a user-facing API.

"An interface that tells the user if the query progress is greater or less
than 50% could certainly be useful."  :class:`ThresholdMonitor` wraps any
estimator and answers exactly that question, with the paper's grey area δ:
answers are ABOVE, BELOW, or UNSURE (inside τ ± δ, or whenever the sound
bound interval straddles the threshold).

Theorem 1 says no monitor can be right for every instance; this one is
honest about it — when the guaranteed interval ``[Curr/UB, Curr/LB]``
contains τ, it reports UNSURE rather than guessing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.core.estimators.base import Observation, ProgressEstimator
from repro.core.metrics import ProgressTrace
from repro.errors import ProgressError


class ThresholdAnswer(enum.Enum):
    BELOW = "below"
    ABOVE = "above"
    UNSURE = "unsure"


@dataclass(frozen=True)
class ThresholdReading:
    """One answer plus the evidence it was based on."""

    answer: ThresholdAnswer
    estimate: float
    guaranteed_low: float
    guaranteed_high: float


class ThresholdMonitor:
    """Answers "is the progress above τ?" with a δ grey area."""

    def __init__(
        self,
        estimator: ProgressEstimator,
        tau: float = 0.5,
        delta: float = 0.05,
        trust_bounds: bool = True,
    ) -> None:
        if not 0 < tau < 1:
            raise ProgressError("tau must be in (0, 1)")
        if delta < 0 or tau - delta <= 0 or tau + delta >= 1:
            raise ProgressError("delta must keep tau±delta inside (0, 1)")
        self.estimator = estimator
        self.tau = tau
        self.delta = delta
        self.trust_bounds = trust_bounds

    def read(self, observation: Observation) -> ThresholdReading:
        estimate = self.estimator.estimate(observation)
        bounds = observation.bounds
        low = observation.curr / bounds.upper if bounds.upper > 0 else 0.0
        high = observation.curr / bounds.lower if bounds.lower > 0 else 1.0
        high = min(high, 1.0)
        if self.trust_bounds:
            # The guaranteed interval can settle the question outright.
            if high < self.tau:
                return ThresholdReading(ThresholdAnswer.BELOW, estimate, low, high)
            if low > self.tau:
                return ThresholdReading(ThresholdAnswer.ABOVE, estimate, low, high)
        if estimate < self.tau - self.delta:
            return ThresholdReading(ThresholdAnswer.BELOW, estimate, low, high)
        if estimate > self.tau + self.delta:
            return ThresholdReading(ThresholdAnswer.ABOVE, estimate, low, high)
        return ThresholdReading(ThresholdAnswer.UNSURE, estimate, low, high)


def threshold_accuracy(
    trace: ProgressTrace, name: str, tau: float, delta: float
) -> dict:
    """Post-hoc scoring of an estimator's trace against the (τ, δ) contract.

    Returns counts of correct / wrong / grey-area samples, where "wrong"
    means the estimator placed the progress on the wrong side of τ while
    the truth was outside the grey area.
    """
    correct = wrong = grey = 0
    for sample in trace.samples:
        estimate = sample.estimates[name]
        if tau - delta <= sample.actual <= tau + delta:
            grey += 1
        elif sample.actual < tau - delta:
            if estimate < tau:
                correct += 1
            else:
                wrong += 1
        else:
            if estimate > tau:
                correct += 1
            else:
                wrong += 1
    return {"correct": correct, "wrong": wrong, "grey": grey}


def violations_list(
    trace: ProgressTrace, name: str, tau: float, delta: float
) -> List:
    """The trace samples violating the requirement (delegates to metrics)."""
    return trace.threshold_violations(name, tau, delta)
