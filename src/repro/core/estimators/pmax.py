"""The pmax estimator (§5.2): ``Curr / LB``.

pmax assumes the remaining execution does the *least* possible work, so it
always over-estimates progress (Property 4: prog ≤ pmax) and its ratio error
is bounded by μ, the average work per scanned input tuple (Theorem 5:
prog ≤ pmax ≤ μ·prog).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.estimators.base import Observation, ProgressEstimator, clamp_progress


class PmaxEstimator(ProgressEstimator):
    """``Curr/LB`` — a guaranteed upper bound on the true progress."""

    name = "pmax"

    def estimate(self, observation: Observation) -> float:
        lower = observation.bounds.lower
        if lower <= 0:
            return 0.0
        return clamp_progress(observation.curr / lower)

    def interval(self, observation: Observation) -> Tuple[float, float]:
        """pmax is one-sided: the truth lies in ``[Curr/UB, pmax]``."""
        upper_bound = self.estimate(observation)
        total_upper = observation.bounds.upper
        lower_bound = observation.curr / total_upper if total_upper > 0 else 0.0
        return clamp_progress(lower_bound), upper_bound
