"""Heuristic estimator combinations (§6.4).

Theorems 7 and 8 prove that the "right" estimator cannot be *detected*:
μ cannot be estimated within any factor, and predictive orders cannot be
recognized.  So any combination is a heuristic.  This module implements the
two the paper sketches:

* :class:`HybridMuEstimator` — "uses the safe estimator but switches to the
  pmax estimator ... if the value of μ is small", where "μ" is the observed
  average work per consumed input tuple (μ̂), a quantity with no guarantee.
* :class:`HybridVarianceEstimator` — watches the running variance of
  per-input-tuple work over a sliding window and prefers dne when it is
  small ("for queries involving simple filter predicates and key lookup
  joins, the variance in per-tuple costs is likely to be low").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.estimators.base import Observation, ProgressEstimator, clamp_progress
from repro.core.estimators.dne import DneEstimator
from repro.core.estimators.pmax import PmaxEstimator
from repro.core.estimators.safe import SafeEstimator
from repro.errors import EstimatorConfigError


class HybridMuEstimator(ProgressEstimator):
    """safe by default; pmax while the *observed* μ̂ stays small.

    μ̂ = Curr / (input tuples consumed from scanned leaves).  Theorem 7 says
    μ̂ guarantees nothing about μ — switching on it is explicitly heuristic.
    """

    name = "hybrid-mu"

    def __init__(self, mu_threshold: float = 3.0, warmup_fraction: float = 0.02) -> None:
        self.mu_threshold = mu_threshold
        self.warmup_fraction = warmup_fraction
        self._pmax = PmaxEstimator()
        self._safe = SafeEstimator()

    def observed_mu(self, observation: Observation) -> Optional[float]:
        consumed = observation.leaf_input_consumed
        if consumed <= 0:
            return None
        return observation.curr / consumed

    def estimate(self, observation: Observation) -> float:
        mu_hat = self.observed_mu(observation)
        warmed_up = (
            observation.bounds.lower > 0
            and observation.curr >= self.warmup_fraction * observation.bounds.lower
        )
        if mu_hat is not None and warmed_up and mu_hat <= self.mu_threshold:
            return self._pmax.estimate(observation)
        return self._safe.estimate(observation)


class HybridVarianceEstimator(ProgressEstimator):
    """dne while the sliding-window work variance is small, else safe.

    The window holds the per-driver-tuple work of the last ``window`` input
    tuples; "small" means coefficient of variation below ``cv_threshold``.
    """

    name = "hybrid-var"

    def __init__(self, window: int = 64, cv_threshold: float = 0.5) -> None:
        if window < 2:
            # A 1-sample window has no variance to watch, and the
            # ``len >= window // 2`` readiness guard would pass on an
            # *empty* window, dividing by zero in the mean.
            raise EstimatorConfigError("window must be >= 2")
        self.window = window
        self.cv_threshold = cv_threshold
        self._dne = DneEstimator()
        self._safe = SafeEstimator()
        self._samples: Deque[Tuple[int, int]] = deque(maxlen=window)
        self._last: Optional[Tuple[int, int]] = None

    def prepare(self, plan) -> None:  # noqa: D102 - documented on base
        self._samples.clear()
        self._last = None

    def _update_window(self, observation: Observation) -> None:
        point = (observation.leaf_input_consumed, observation.curr)
        if self._last is not None:
            consumed_delta = point[0] - self._last[0]
            work_delta = point[1] - self._last[1]
            if consumed_delta > 0:
                self._samples.append((consumed_delta, work_delta))
        self._last = point

    def _window_cv(self) -> Optional[float]:
        # max(1, ...) keeps the empty-window path unreachable even if the
        # window shrinks: no samples, no variance verdict.
        if len(self._samples) < max(1, self.window // 2):
            return None
        rates = [work / consumed for consumed, work in self._samples]
        mean = sum(rates) / len(rates)
        if mean <= 0:
            return None
        variance = sum((rate - mean) ** 2 for rate in rates) / len(rates)
        return variance ** 0.5 / mean

    def estimate(self, observation: Observation) -> float:
        self._update_window(observation)
        cv = self._window_cv()
        if cv is not None and cv <= self.cv_threshold:
            return self._dne.estimate(observation)
        return self._safe.estimate(observation)
