"""Robust statistical estimator combination (König et al. 2012).

The source paper's §6.4 proves that picking the "right" estimator cannot be
done with guarantees (Theorems 7–8: μ cannot be estimated within any
factor, predictive orders cannot be recognized), so any combination is a
heuristic.  "A Statistical Approach Towards Robust Progress Estimation"
(König, Ding, Chaudhuri, Narasayya; arXiv:1201.0234) is the direct sequel:
keep a *pool* of candidate estimators, observe how each one actually
performs, and select or weight them online from those error statistics.

This module implements that idea on top of the existing toolkit:

* :class:`RobustHistory` — a bounded, thread-safe store of per-plan-
  signature, per-pipeline-segment error statistics for every candidate
  (EWMA of squared log-ratio residuals), plus the
  :class:`~repro.core.estimators.feedback.QueryHistory` of observed totals
  that the pool's feedback candidate consumes.  Residuals can only be
  labeled once a run's trace seals (truth is unknown mid-run under the
  single-pass protocol), so recording happens after the fact via
  :meth:`RobustHistory.record_run` — typically through
  :meth:`RobustEstimator.observe_result`.
* :class:`RobustEstimator` — maintains the full candidate pool (dne, pmax,
  safe, hybrid-mu, hybrid-var, feedback), clamps every candidate into the
  sound interval ``[Curr/UB, Curr/LB]``, and combines them per observation
  with weights derived from the history's statistics for the *current*
  pipeline segment (estimator behaviour changes at pipeline boundaries,
  not uniformly over a run).  With no history the combination collapses to
  the safe estimator exactly — the worst-case-optimal answer — and the
  final value is always re-clamped into the sound interval, so Theorem 6's
  guarantee territory is never left on the strength of a heuristic.

Robustness of the pool itself: a candidate that raises during ``prepare``
or ``estimate`` is degraded out of the pool for the rest of the run (the
same rule the service's :class:`~repro.service.resilient.ResilientEstimator`
applies to whole toolkit slots), and the remaining candidates carry on.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import SegmentObservation, aggregate_segment_residuals
from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    clamp_progress,
    progress_interval,
    require_sound_bounds,
)
from repro.core.estimators.dne import DneEstimator
from repro.core.estimators.feedback import (
    FeedbackEstimator,
    QueryHistory,
    history_key,
    plan_signature,
)
from repro.core.estimators.hybrid import HybridMuEstimator, HybridVarianceEstimator
from repro.core.estimators.pmax import PmaxEstimator
from repro.core.estimators.safe import SafeEstimator
from repro.core.pipelines import current_pipeline
from repro.engine.plan import Plan
from repro.errors import EstimatorConfigError, ProgressError

MODES = ("weight", "select")

#: segment key for "no pipeline is current" (before the first tick, and
#: after every pipeline finished)
NO_SEGMENT = -1

#: candidate key the combination falls back to when evidence is missing —
#: present in every default pool
SAFE_NAME = SafeEstimator.name

#: per-segment phase resolution of the error statistics: each segment's
#: samples are subdivided by which PHASES-ile of [0, 1] the truth fell in.
#: Estimator behaviour is strongly phase-dependent (pmax is off by the
#: whale-tuple factor *early* and exact late; dne's weights settle over
#: time), and whole-segment statistics would average that away — letting a
#: candidate that dominates a segment's bulk drag the combination off safe
#: during the segment's first samples, exactly where safe's √-guarantee is
#: hardest to beat.
PHASES = 8


@dataclass
class ErrorStat:
    """EWMA of squared log-ratio residuals for one (segment, candidate)."""

    mean_square: float
    observations: int

    def fold(self, mean_square: float, smoothing: float) -> None:
        self.mean_square = (
            smoothing * mean_square + (1 - smoothing) * self.mean_square
        )
        self.observations += 1


@dataclass(frozen=True)
class SelectionEvent:
    """One change of the robust combination's preferred candidate."""

    curr: float
    segment: int
    selected: str
    weights: Dict[str, float]
    mode: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "curr": self.curr,
            "segment": self.segment,
            "selected": self.selected,
            "weights": dict(self.weights),
            "mode": self.mode,
        }


class RobustHistory:
    """Cross-run error statistics per plan signature × segment × candidate.

    Bounded (LRU over signatures, like :class:`QueryHistory`) and locked:
    one history is shared by every run of a session and every worker of a
    service.  ``totals`` is the embedded :class:`QueryHistory` the pool's
    feedback candidate reads its expected totals from, so one object
    carries everything the robust estimator learns.
    """

    def __init__(
        self,
        smoothing: float = 0.5,
        max_signatures: int = 4096,
        min_actual: float = 0.01,
        totals: Optional[QueryHistory] = None,
        catalog: object = None,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise EstimatorConfigError("smoothing must be in (0, 1]")
        if max_signatures < 1:
            raise EstimatorConfigError("max_signatures must be >= 1")
        self.smoothing = smoothing
        self.max_signatures = max_signatures
        self.min_actual = min_actual
        #: default catalog whose data fingerprint qualifies every key (a
        #: per-call ``catalog=`` beats it; None keys on shape alone)
        self.catalog = catalog
        self.totals = totals if totals is not None else QueryHistory(
            max_signatures=max_signatures, catalog=catalog
        )
        self._stats: "OrderedDict[str, Dict[int, Dict[str, ErrorStat]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def record_run(
        self,
        plan: Plan,
        observations: Sequence[SegmentObservation],
        total: float,
        catalog: object = None,
    ) -> None:
        """Label one finished run's pool log against its sealed total.

        Statistics are keyed by ``segment × phase`` (see :data:`PHASES`);
        the phase is derived from the sealed truth here, and from the
        remembered total at estimation time.
        """
        self.totals.record(plan, int(total), catalog=catalog)
        residuals = aggregate_segment_residuals(
            observations, total, self.min_actual, phases=PHASES
        )
        if not residuals:
            return
        signature = self._key(plan, catalog)
        with self._lock:
            bucket = self._stats.get(signature)
            if bucket is None:
                while len(self._stats) >= self.max_signatures:
                    self._stats.popitem(last=False)
                bucket = self._stats[signature] = {}
            else:
                self._stats.move_to_end(signature)
            for segment, by_name in residuals.items():
                segment_stats = bucket.setdefault(segment, {})
                for name, values in by_name.items():
                    mean_square = sum(r * r for r in values) / len(values)
                    stat = segment_stats.get(name)
                    if stat is None:
                        segment_stats[name] = ErrorStat(mean_square, 1)
                    else:
                        stat.fold(mean_square, self.smoothing)

    def _key(self, plan: Plan, catalog: object) -> str:
        return history_key(
            plan, catalog if catalog is not None else self.catalog
        )

    def stats_for(
        self, plan: Plan, catalog: object = None
    ) -> Dict[int, Dict[str, Tuple[float, int]]]:
        """A snapshot of this signature's statistics (segment → name →
        (mean-square log residual, observation count))."""
        signature = self._key(plan, catalog)
        with self._lock:
            bucket = self._stats.get(signature)
            if bucket is None:
                return {}
            self._stats.move_to_end(signature)
            return {
                segment: {
                    name: (stat.mean_square, stat.observations)
                    for name, stat in by_name.items()
                }
                for segment, by_name in bucket.items()
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    # Ships inside pickled RobustEstimators on the process backend; the
    # worker receives a copy (its updates do not flow back).
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def default_pool(
    history: RobustHistory, catalog: object = None
) -> List[ProgressEstimator]:
    """The full candidate pool of the robust combination."""
    return [
        DneEstimator(),
        PmaxEstimator(),
        SafeEstimator(),
        HybridMuEstimator(),
        HybridVarianceEstimator(),
        FeedbackEstimator(history.totals, catalog=catalog),
    ]


class RobustEstimator(ProgressEstimator):
    """Statistical candidate-pool combination, clamped into the sound
    interval.

    Per observation:

    1. identify the current pipeline segment;
    2. ask every (non-degraded) candidate for its estimate and clamp each
       into ``[Curr/UB, Curr/LB]``;
    3. weight candidates by the history's error statistics for this plan
       signature and segment — weight ∝ ``n/(n+1) / (ε + E[r²])``, an
       inverse-expected-squared-log-error rule, with the safe candidate
       guaranteed a floor weight so the pool never fully abandons the
       worst-case-optimal answer;
    4. combine: ``mode="weight"`` (default) takes the weighted geometric
       mean of the clamped candidates, ``mode="select"`` takes the
       highest-weighted candidate outright;
    5. re-clamp the result into the sound interval.

    With no statistics for the plan's signature every weight collapses
    onto safe, and the answer *is* the safe estimate — so a cold query
    costs nothing relative to the paper's recommended default, and warm
    queries spend the accumulated evidence.

    The run's pool log (segment, Curr, clamped candidate values per
    sample) is kept so the caller can label it once truth exists:
    ``estimator.observe_result(plan, report.total)`` after a finished run
    (the session facade and the sweep benchmark do exactly this).
    """

    name = "robust"

    def __init__(
        self,
        history: Optional[RobustHistory] = None,
        *,
        mode: str = "weight",
        epsilon: float = 1e-4,
        prior_error: float = 0.5,
        candidates: Optional[Sequence[ProgressEstimator]] = None,
        strict: bool = False,
        on_select: Optional[Callable[[SelectionEvent], None]] = None,
        on_degrade: Optional[Callable[[str, str], None]] = None,
        catalog: object = None,
    ) -> None:
        if mode not in MODES:
            raise EstimatorConfigError(
                "mode must be one of %s, not %r" % (MODES, mode)
            )
        if epsilon <= 0:
            raise EstimatorConfigError("epsilon must be > 0")
        if prior_error <= 0:
            raise EstimatorConfigError("prior_error must be > 0")
        self.history = history if history is not None else RobustHistory()
        self.mode = mode
        self.epsilon = epsilon
        self.prior_error = prior_error
        self.strict = strict
        self.on_select = on_select
        self.on_degrade = on_degrade
        #: catalog whose fingerprint qualifies this estimator's history keys
        self.catalog = catalog
        pool = (
            list(candidates) if candidates is not None
            else default_pool(self.history, catalog)
        )
        names = [candidate.name for candidate in pool]
        if len(set(names)) != len(names):
            raise EstimatorConfigError(
                "candidate names must be unique: %s" % (names,)
            )
        if SAFE_NAME not in names:
            raise EstimatorConfigError(
                "the pool must contain a %r candidate (the combination's "
                "fallback and weight floor)" % (SAFE_NAME,)
            )
        self._pool: Dict[str, ProgressEstimator] = {
            candidate.name: candidate for candidate in pool
        }
        #: candidate name → degradation reason, for this run
        self.degraded: Dict[str, str] = {}
        self._plan: Optional[Plan] = None
        self._expected: Optional[float] = None
        self._stats: Dict[int, Dict[str, Tuple[float, int]]] = {}
        self._pooled: Dict[str, Tuple[float, int]] = {}
        self._weight_cache: Dict[Optional[int], Dict[str, float]] = {}
        self._log: List[SegmentObservation] = []
        self._last_selected: Optional[str] = None
        self._last_weights: Dict[str, float] = {}
        self._last_segment: int = NO_SEGMENT

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, plan: Plan) -> None:
        self._plan = plan
        #: remembered total, the estimation-time proxy for the phase that
        #: record_run derived from the sealed truth
        self._expected = self.history.totals.expected_total(
            plan, catalog=self.catalog
        )
        self._stats = self.history.stats_for(plan, catalog=self.catalog)
        self._pooled = self._pool_segments(self._stats)
        self._weight_cache = {}
        self._log = []
        self.degraded = {}
        self._last_selected = None
        self._last_weights = {}
        self._last_segment = NO_SEGMENT
        for name, candidate in self._pool.items():
            try:
                candidate.prepare(plan)
            except Exception as exc:
                self._degrade(name, "prepare: %s: %s"
                              % (type(exc).__name__, exc))

    def observe_result(self, plan: Plan, total: float) -> None:
        """Label this run's pool log against the sealed total and fold it
        (and the total itself) into the shared history.

        History-backed candidates are relabelled retrospectively first: a
        cold feedback estimator spends the whole run falling back to safe,
        so its *logged* values describe safe, not what it will answer once
        the total is remembered.  Folding those raw values would forever
        anchor its error statistics to safe's and the combiner could never
        learn to trust it.  Candidates exposing ``retrospective_estimate``
        get their log rewritten to the estimate a warm repeat produces.
        """
        if self._plan is None:
            raise ProgressError(
                "observe_result() requires a prepared run (call prepare/"
                "run first)"
            )
        retrospective = {
            name: candidate.retrospective_estimate
            for name, candidate in self._pool.items()
            if hasattr(candidate, "retrospective_estimate")
        }
        if retrospective:
            for _, curr, values in self._log:
                for name, estimate in retrospective.items():
                    if name in values:
                        values[name] = estimate(curr, total)
        self.history.record_run(plan, self._log, total, catalog=self.catalog)
        self._log = []

    # -- estimation --------------------------------------------------------------

    def estimate(self, observation: Observation) -> float:
        if self.strict:
            require_sound_bounds(observation.curr, observation.bounds)
        low, high = progress_interval(observation.curr, observation.bounds)
        pipeline = current_pipeline(observation.pipelines)
        segment = pipeline.index if pipeline is not None else NO_SEGMENT
        values: Dict[str, float] = {}
        for name, candidate in self._pool.items():
            if name in self.degraded:
                continue
            try:
                raw = candidate.estimate(observation)
            except Exception as exc:
                self._degrade(name, "%s: %s" % (type(exc).__name__, exc))
                continue
            values[name] = clamp_progress(min(max(raw, low), high))
        self._log.append((segment, observation.curr, dict(values)))
        if not values:
            # Every candidate degraded (safe included): answer from the
            # sound interval's midpoint, which is total by construction.
            return clamp_progress((low + high) / 2.0)
        key: Optional[int] = None
        if self._expected and self._expected > 0 and segment != NO_SEGMENT:
            phase = min(
                int(observation.curr / self._expected * PHASES), PHASES - 1
            )
            key = segment * PHASES + phase
        weights = self._weights_for(key, values)
        selected = max(weights, key=lambda name: (weights[name], name))
        if self.mode == "select":
            value = values[selected]
        else:
            value = self._geometric(values, weights)
        self._note_selection(observation.curr, segment, selected, weights)
        return clamp_progress(min(max(value, low), high))

    def interval(self, observation: Observation) -> Tuple[float, float]:
        """The robust answer carries exactly the sound-interval guarantee."""
        return progress_interval(observation.curr, observation.bounds)

    # -- introspection -----------------------------------------------------------

    def event_extras(self) -> Optional[Dict[str, object]]:
        if self._last_selected is None:
            return None
        extras: Dict[str, object] = {
            "selected": self._last_selected,
            "segment": self._last_segment,
            "weights": dict(self._last_weights),
            "mode": self.mode,
        }
        if self.degraded:
            extras["degraded"] = dict(self.degraded)
        return extras

    @property
    def last_selected(self) -> Optional[str]:
        return self._last_selected

    @property
    def last_weights(self) -> Dict[str, float]:
        return dict(self._last_weights)

    # -- internals ---------------------------------------------------------------

    def _degrade(self, name: str, reason: str) -> None:
        self.degraded[name] = reason
        self._weight_cache = {}
        if self.on_degrade is not None:
            self.on_degrade(name, reason)

    def _note_selection(
        self, curr: float, segment: int, selected: str,
        weights: Dict[str, float],
    ) -> None:
        changed = selected != self._last_selected
        self._last_selected = selected
        self._last_weights = weights
        self._last_segment = segment
        if changed and self.on_select is not None:
            self.on_select(SelectionEvent(
                curr=curr, segment=segment, selected=selected,
                weights=dict(weights), mode=self.mode,
            ))

    @staticmethod
    def _pool_segments(
        stats: Dict[int, Dict[str, Tuple[float, int]]],
    ) -> Dict[str, Tuple[float, int]]:
        """Aggregate per-segment stats into one per-candidate summary —
        the backoff for segments this signature has no evidence on (e.g.
        a pipeline the previous run's cadence never sampled)."""
        pooled: Dict[str, List[Tuple[float, int]]] = {}
        for by_name in stats.values():
            for name, (mean_square, count) in by_name.items():
                pooled.setdefault(name, []).append((mean_square, count))
        combined: Dict[str, Tuple[float, int]] = {}
        for name, entries in pooled.items():
            total_count = sum(count for _, count in entries)
            weighted = sum(
                mean_square * count for mean_square, count in entries
            )
            combined[name] = (weighted / total_count, total_count)
        return combined

    def _weights_for(
        self, key: Optional[int], values: Dict[str, float]
    ) -> Dict[str, float]:
        """``key`` is the encoded segment × phase (None: no phase proxy —
        unknown remembered total — so fall back to the pooled stats)."""
        cached = self._weight_cache.get(key)
        if cached is None:
            stats = self._stats.get(key) if key is not None else None
            if not stats:
                stats = self._pooled
            cached = self._compute_weights(stats)
            self._weight_cache[key] = cached
        if all(name in values for name in cached):
            return cached
        # A weighted candidate degraded mid-run: renormalize the rest.
        available = {
            name: weight for name, weight in cached.items() if name in values
        }
        if not available:
            fallback = SAFE_NAME if SAFE_NAME in values else next(iter(values))
            return {fallback: 1.0}
        mass = sum(available.values())
        return {name: weight / mass for name, weight in available.items()}

    #: a candidate must beat safe's mean-square log error by this factor in
    #: a (segment, phase) cell before it earns any weight there.  The
    #: departure from worst-case optimality is *selective*, not additive:
    #: mixing in a same-quality-as-safe candidate can only add noise, and a
    #: cell where nothing clearly beats safe answers exactly as safe.
    BETTER_FACTOR = 0.5

    def _compute_weights(
        self, stats: Dict[str, Tuple[float, int]]
    ) -> Dict[str, float]:
        usable = {
            name: stat for name, stat in stats.items()
            if name in self._pool and name not in self.degraded
        }
        if not usable:
            return {SAFE_NAME: 1.0}
        # Baseline to beat: safe's recorded error in this cell (its prior
        # error when unrecorded).
        safe_baseline = self.prior_error ** 2
        if SAFE_NAME in usable:
            safe_baseline = min(safe_baseline, usable[SAFE_NAME][0])
        raw: Dict[str, float] = {}
        for name, (mean_square, count) in usable.items():
            if name != SAFE_NAME and (
                mean_square > safe_baseline * self.BETTER_FACTOR
            ):
                continue
            reliability = count / (count + 1.0)
            raw[name] = reliability / (self.epsilon + mean_square)
        # The safe candidate keeps a floor derived from the prior error:
        # evidence must *earn* a departure from worst-case optimality.
        prior = 1.0 / (self.epsilon + self.prior_error ** 2)
        if SAFE_NAME not in self.degraded:
            raw[SAFE_NAME] = max(raw.get(SAFE_NAME, 0.0), prior)
        if not raw:
            return {next(iter(usable)): 1.0}
        mass = sum(raw.values())
        return {name: weight / mass for name, weight in raw.items()}

    @staticmethod
    def _geometric(
        values: Dict[str, float], weights: Dict[str, float]
    ) -> float:
        """Log-space convex combination over the positive candidates."""
        positive = {
            name: value for name, value in values.items()
            if name in weights and value > 0
        }
        if not positive:
            return 0.0
        if len(positive) == 1:
            # Exact pass-through: exp(log(v)) would perturb the last ulp,
            # and "all weight on safe" must mean *bit-identical to safe*.
            return next(iter(positive.values()))
        mass = sum(weights[name] for name in positive)
        if mass <= 0:
            return 0.0
        log_value = sum(
            weights[name] * math.log(value)
            for name, value in positive.items()
        ) / mass
        return math.exp(log_value)
