"""The trivial estimator: the (0, 1) interval the paper's bounds are judged
against.

Theorem 1 shows that in the worst case nothing meaningfully better than this
estimator is possible; it is included as the baseline every experiment can
compare to.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.estimators.base import Observation, ProgressEstimator


class TrivialEstimator(ProgressEstimator):
    """Always answers "somewhere between 0% and 100%"."""

    name = "trivial"

    def estimate(self, observation: Observation) -> float:
        # The midpoint minimizes the maximum absolute error of a point
        # answer consistent with the trivial interval.
        return 0.5

    def interval(self, observation: Observation) -> Tuple[float, float]:
        return 0.0, 1.0
