"""The dne (driver-node) estimator of [5, 13], reviewed in §4 of the paper.

For a single pipeline, dne returns the fraction of the driver node's input
consumed.  For multi-pipeline plans it follows the approach of [5]: each
pipeline's local driver fraction is weighted by that pipeline's (estimated)
share of the total work, with weights refined to exact tick counts as
pipelines finish.

The clamped variant additionally constrains dne to the interval
``[Curr/UB, Curr/LB]`` implied by the runtime bounds — the adjustment §5.4
uses to give dne a worst-case guarantee on scan-based plans.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    clamp_progress,
    progress_interval,
    require_sound_bounds,
)
from repro.core.pipelines import Pipeline


def _pipeline_weight(
    pipeline: Pipeline, estimates: Optional[Dict[int, float]]
) -> float:
    """Expected counted getnext calls in ``pipeline``.

    Finished operators contribute their exact tick counts; unfinished ones
    their optimizer estimate (falling back to driver totals when no estimate
    is available).  These weights carry no guarantee — they only apportion
    progress across pipelines, exactly as in [5].
    """
    from repro.core.pipelines import runtime_output_hint

    weight = 0.0
    for operator in pipeline.operators:
        hint = runtime_output_hint(operator, estimates)
        if hint is None:
            hint = max(operator.rows_produced, 1.0)
        weight += hint
    return weight


class DneEstimator(ProgressEstimator):
    """Driver-node estimator ("dne"): per-pipeline input fractions."""

    name = "dne"

    def estimate(self, observation: Observation) -> float:
        pipelines = observation.pipelines
        if not pipelines:
            return 0.0
        if len(pipelines) == 1:
            return clamp_progress(pipelines[0].driver_fraction(observation.estimates))
        total_weight = 0.0
        achieved = 0.0
        for pipeline in pipelines:
            weight = _pipeline_weight(pipeline, observation.estimates)
            fraction = pipeline.driver_fraction(observation.estimates)
            total_weight += weight
            achieved += weight * fraction
        if total_weight <= 0:
            return 0.0
        return clamp_progress(achieved / total_weight)


class DneBoundedEstimator(ProgressEstimator):
    """dne clamped into the progress interval implied by the bounds.

    Since ``LB ≤ total(Q) ≤ UB``, the true progress lies in
    ``[Curr/UB, Curr/LB]``; constraining dne to that interval gives it the
    same worst-case ratio bound as the interval width (Property 6's
    "constraining dne to be within the upper and lower bounds").

    By default degenerate bounds (zero, infinite, inverted, stale) simply do
    not constrain — the interval widens and the raw dne answer survives.
    With ``strict=True`` they raise :class:`repro.errors.DegenerateBoundsError`
    instead, the typed signal the query service's degradation path catches.
    """

    name = "dne+bounds"

    def __init__(self, *, strict: bool = False) -> None:
        self._dne = DneEstimator()
        self.strict = strict

    def estimate(self, observation: Observation) -> float:
        if self.strict:
            require_sound_bounds(observation.curr, observation.bounds)
        raw = self._dne.estimate(observation)
        low, high = progress_interval(observation.curr, observation.bounds)
        return clamp_progress(min(max(raw, low), high))
