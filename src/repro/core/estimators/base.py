"""Progress-estimator interface (§2.4).

An estimator maps an :class:`Observation` — everything it is *allowed* to
see: the getnext trace so far, runtime cardinality bounds derived from it
plus catalog statistics, the pipeline structure, and optimizer estimates —
to a progress value in [0, 1].  It never sees ``total(Q)``; that oracle
lives only in the evaluation harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import BoundsSnapshot
from repro.core.pipelines import Pipeline
from repro.engine.plan import Plan
from repro.errors import DegenerateBoundsError


@dataclass
class Observation:
    """A snapshot of what an estimator may legally observe at one instant."""

    #: counted getnext calls so far (``Curr``)
    curr: int
    #: runtime cardinality bounds (``LB``/``UB`` summed over the plan)
    bounds: BoundsSnapshot
    #: pipeline decomposition with live driver state
    pipelines: List[Pipeline]
    #: optimizer per-operator output estimates (no guarantees attached)
    estimates: Optional[Dict[int, float]] = None
    #: total tuples consumed so far from scanned leaves (μ̂'s denominator)
    leaf_input_consumed: int = 0


class ProgressEstimator(abc.ABC):
    """Base class for all progress estimators."""

    #: short identifier used in traces, tables and plots
    name: str = "estimator"

    def prepare(self, plan: Plan) -> None:
        """Optional one-time hook before execution starts."""

    @abc.abstractmethod
    def estimate(self, observation: Observation) -> float:
        """Point estimate of the progress, in [0, 1]."""

    def interval(self, observation: Observation) -> Tuple[float, float]:
        """Interval guarantee; defaults to the degenerate point interval."""
        value = self.estimate(observation)
        return value, value

    def event_extras(self) -> Optional[Dict[str, object]]:
        """Structured extras describing the *last* estimate, for event sinks.

        Combining estimators override this to expose which candidate they
        preferred and with what weights; the runner attaches the result to
        each sample event's payload (and emits an ``estimator_selected``
        event when the selection changes).  ``None`` — the default — means
        "nothing to report" and costs nothing.
        """
        return None

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.name)


def clamp_progress(value: float) -> float:
    """Progress estimates live in [0, 1]."""
    if value != value:  # NaN guard
        return 0.0
    return max(0.0, min(1.0, value))


def degenerate_reason(curr: float, bounds: BoundsSnapshot) -> Optional[str]:
    """Why these bounds cannot constrain an estimate, or None if they can.

    Degenerate cases: a non-positive or infinite UB, a non-positive LB, an
    inverted pair (``UB < LB``), or bounds stale below ``Curr``.  The clamp
    path (:func:`progress_interval`) survives all of them by widening to the
    unconstrained interval; strict estimators instead surface them as a
    typed :class:`repro.errors.DegenerateBoundsError` so a supervising
    service can degrade the toolkit precisely.
    """
    if bounds.upper <= 0:
        return "upper bound is not positive"
    if bounds.upper == float("inf"):
        return "upper bound is infinite"
    if bounds.lower <= 0:
        return "lower bound is not positive"
    if bounds.upper < bounds.lower:
        return "bounds are inverted (UB < LB)"
    if curr > bounds.upper:
        return "bounds are stale (Curr beyond UB)"
    return None


def require_sound_bounds(curr: float, bounds: BoundsSnapshot) -> None:
    """Raise :class:`DegenerateBoundsError` unless the bounds can constrain.

    The raise path behind every ``strict=True`` estimator.
    """
    reason = degenerate_reason(curr, bounds)
    if reason is not None:
        raise DegenerateBoundsError(reason, curr, bounds.lower, bounds.upper)


def progress_interval(curr: float, bounds: BoundsSnapshot) -> Tuple[float, float]:
    """The sound progress interval ``[Curr/UB, Curr/LB]``, degenerate-safe.

    Since ``LB ≤ total(Q) ≤ UB``, the true progress lies in that interval.
    Degenerate bounds must not invert it: a zero or infinite UB contributes
    no floor (low = 0), a zero LB no ceiling (high = 1), and if the inputs
    are inconsistent (``UB < LB``, or ``Curr`` beyond a stale bound) the
    endpoints are reordered so that ``low ≤ high`` always holds.
    """
    low = 0.0
    if bounds.upper > 0 and bounds.upper != float("inf"):
        low = clamp_progress(curr / bounds.upper)
    high = 1.0
    if bounds.lower > 0:
        high = clamp_progress(curr / bounds.lower)
    if low > high:
        low, high = high, low
    return low, high
