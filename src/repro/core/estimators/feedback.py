"""Inter-query feedback (§6.4's third direction).

"Another promising direction is to use inter-query feedback, either across
different runs of the same query, or across runs of similar looking
physical plans."  This module implements that heuristic:

* :func:`plan_signature` — a structural fingerprint of a physical plan
  (operator skeleton + table names + predicate shapes);
* :class:`QueryHistory` — an EWMA store of observed ``total(Q)`` per
  signature, recorded from finished :class:`ProgressReport`s;
* :class:`FeedbackEstimator` — estimates ``Curr / expected_total`` using the
  remembered total, *clamped into the sound interval* ``[Curr/UB, Curr/LB]``
  (stale feedback must never override a guarantee), and falling back to
  safe when no history exists or the history is exhausted (Curr has passed
  the remembered total — the data evidently changed).

Like every §6.4 combination, this carries no worst-case guarantee beyond
the clamp; Theorem 7 still applies if the data shifts between runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    clamp_progress,
    progress_interval,
    require_sound_bounds,
)
from repro.core.estimators.safe import SafeEstimator
from repro.errors import EstimatorConfigError
from repro.engine.operators.base import Operator
from repro.engine.plan import Plan


def plan_signature(plan: Plan) -> str:
    """A structural fingerprint: equal plans against equal tables collide.

    Uses each operator's ``describe()`` (operator kind, table, predicate
    repr) in pre-order; two runs of the same query text against the same
    catalog produce the same signature even though operator ids differ.
    """
    parts = []

    def visit(node: Operator, depth: int) -> None:
        parts.append("%d:%s" % (depth, node.describe()))
        for child in node.children:
            visit(child, depth + 1)

    visit(plan.root, 0)
    return "|".join(parts)


def catalog_fingerprint(catalog: object) -> str:
    """A cheap *data* fingerprint of a catalog ('' when unavailable).

    ``plan_signature`` is deliberately data-blind: two same-shaped queries
    over different data collide.  Catalogs expose ``fingerprint()``
    (instance identity + statistics version + per-table row counts — see
    :meth:`repro.storage.catalog.Catalog.fingerprint`); duck-typing here
    keeps this module free of a storage import.
    """
    if catalog is None:
        return ""
    fingerprint = getattr(catalog, "fingerprint", None)
    if fingerprint is None:
        return ""
    return fingerprint()


def history_key(plan: Plan, catalog: object = None) -> str:
    """The history key: plan signature, qualified by the data fingerprint.

    Without a catalog the key degrades to the bare signature (the historic
    behavior — still correct for single-catalog processes).
    """
    signature = plan_signature(plan)
    fingerprint = catalog_fingerprint(catalog)
    return signature + "\n@" + fingerprint if fingerprint else signature


@dataclass
class HistoryEntry:
    """EWMA of observed totals plus the raw observation count."""

    expected_total: float
    observations: int


class QueryHistory:
    """Remembers ``total(Q)`` per plan signature across runs.

    Shared state: one history typically serves every run of a session (and
    every worker of a service), so it is bounded and thread-safe —
    ``record`` and ``expected_total`` race across service worker threads
    under traffic.  At most ``max_signatures`` entries are retained
    (least-recently-used signatures are evicted first; a lookup counts as
    use), and every access holds the history's lock: ``record`` mutates
    :class:`HistoryEntry` fields in place, which without the lock would
    interleave the EWMA read-modify-write across threads.
    """

    def __init__(
        self,
        smoothing: float = 0.5,
        max_signatures: int = 4096,
        catalog: object = None,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise EstimatorConfigError("smoothing must be in (0, 1]")
        if max_signatures < 1:
            raise EstimatorConfigError("max_signatures must be >= 1")
        self.smoothing = smoothing
        self.max_signatures = max_signatures
        #: default catalog whose data fingerprint qualifies every key (a
        #: per-call ``catalog=`` beats it; None keys on shape alone)
        self.catalog = catalog
        self._entries: "OrderedDict[str, HistoryEntry]" = OrderedDict()
        self._lock = threading.Lock()

    def _key(self, plan: Plan, catalog: object) -> str:
        return history_key(
            plan, catalog if catalog is not None else self.catalog
        )

    def record(
        self, plan: Plan, total: int, catalog: object = None
    ) -> None:
        """Fold one finished run's total into the history."""
        signature = self._key(plan, catalog)
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                while len(self._entries) >= self.max_signatures:
                    self._entries.popitem(last=False)
                self._entries[signature] = HistoryEntry(float(total), 1)
            else:
                entry.expected_total = (
                    self.smoothing * total
                    + (1 - self.smoothing) * entry.expected_total
                )
                entry.observations += 1
                self._entries.move_to_end(signature)

    def expected_total(
        self, plan: Plan, catalog: object = None
    ) -> Optional[float]:
        signature = self._key(plan, catalog)
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                return None
            self._entries.move_to_end(signature)
            return entry.expected_total

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # A history crosses the process-backend boundary inside a pickled
    # FeedbackEstimator; locks do not pickle, so ship the entries and
    # rebuild a fresh lock on the other side (the worker gets a *copy* —
    # updates there do not flow back).
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class FeedbackEstimator(ProgressEstimator):
    """``Curr / remembered_total``, clamped into the sound bound interval."""

    name = "feedback"

    def __init__(
        self,
        history: QueryHistory,
        *,
        strict: bool = False,
        catalog: object = None,
    ) -> None:
        self.history = history
        self.strict = strict
        #: catalog whose fingerprint qualifies this estimator's history keys
        #: (falls back to the history's own default when None)
        self.catalog = catalog
        self._expected: Optional[float] = None
        self._safe = SafeEstimator()

    def prepare(self, plan: Plan) -> None:
        self._expected = self.history.expected_total(
            plan, catalog=self.catalog
        )

    def observe_result(self, plan: Plan, total: float) -> None:
        """Feed one sealed run's total back into the shared history.

        The uniform "learning" hook of history-backed estimators (the
        robust combination exposes the same method): callers that know the
        truth at end-of-run call it and the next ``prepare`` sees it.
        """
        self.history.record(plan, int(total), catalog=self.catalog)

    def retrospective_estimate(self, curr: float, total: float) -> float:
        """What this candidate would answer on a repeat run.

        During a cold run the feedback estimator has no remembered total and
        falls back to safe, so its logged values say nothing about how it
        will behave once the total *is* remembered.  The robust combination
        relabels its log with this value before folding error statistics:
        ``curr / total`` is the estimate a warm repeat produces (the sound
        interval always contains the truth, so clamping is a no-op on it).
        """
        return min(curr / total, 1.0) if total > 0 else 1.0

    def estimate(self, observation: Observation) -> float:
        if self.strict:
            require_sound_bounds(observation.curr, observation.bounds)
        expected = self._expected
        if expected is None or expected <= 0 or observation.curr > expected:
            # No history, or the run has outlived it: the feedback is wrong,
            # retreat to the worst-case-optimal answer.
            return self._safe.estimate(observation)
        raw = observation.curr / expected
        low, high = progress_interval(observation.curr, observation.bounds)
        return clamp_progress(min(max(raw, low), high))
