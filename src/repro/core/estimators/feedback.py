"""Inter-query feedback (§6.4's third direction).

"Another promising direction is to use inter-query feedback, either across
different runs of the same query, or across runs of similar looking
physical plans."  This module implements that heuristic:

* :func:`plan_signature` — a structural fingerprint of a physical plan
  (operator skeleton + table names + predicate shapes);
* :class:`QueryHistory` — an EWMA store of observed ``total(Q)`` per
  signature, recorded from finished :class:`ProgressReport`s;
* :class:`FeedbackEstimator` — estimates ``Curr / expected_total`` using the
  remembered total, *clamped into the sound interval* ``[Curr/UB, Curr/LB]``
  (stale feedback must never override a guarantee), and falling back to
  safe when no history exists or the history is exhausted (Curr has passed
  the remembered total — the data evidently changed).

Like every §6.4 combination, this carries no worst-case guarantee beyond
the clamp; Theorem 7 still applies if the data shifts between runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    clamp_progress,
    progress_interval,
    require_sound_bounds,
)
from repro.core.estimators.safe import SafeEstimator
from repro.errors import EstimatorConfigError
from repro.engine.operators.base import Operator
from repro.engine.plan import Plan


def plan_signature(plan: Plan) -> str:
    """A structural fingerprint: equal plans against equal tables collide.

    Uses each operator's ``describe()`` (operator kind, table, predicate
    repr) in pre-order; two runs of the same query text against the same
    catalog produce the same signature even though operator ids differ.
    """
    parts = []

    def visit(node: Operator, depth: int) -> None:
        parts.append("%d:%s" % (depth, node.describe()))
        for child in node.children:
            visit(child, depth + 1)

    visit(plan.root, 0)
    return "|".join(parts)


@dataclass
class HistoryEntry:
    """EWMA of observed totals plus the raw observation count."""

    expected_total: float
    observations: int


class QueryHistory:
    """Remembers ``total(Q)`` per plan signature across runs."""

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0 < smoothing <= 1:
            raise EstimatorConfigError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self._entries: Dict[str, HistoryEntry] = {}

    def record(self, plan: Plan, total: int) -> None:
        """Fold one finished run's total into the history."""
        signature = plan_signature(plan)
        entry = self._entries.get(signature)
        if entry is None:
            self._entries[signature] = HistoryEntry(float(total), 1)
        else:
            entry.expected_total = (
                self.smoothing * total + (1 - self.smoothing) * entry.expected_total
            )
            entry.observations += 1

    def expected_total(self, plan: Plan) -> Optional[float]:
        entry = self._entries.get(plan_signature(plan))
        return entry.expected_total if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)


class FeedbackEstimator(ProgressEstimator):
    """``Curr / remembered_total``, clamped into the sound bound interval."""

    name = "feedback"

    def __init__(self, history: QueryHistory, *, strict: bool = False) -> None:
        self.history = history
        self.strict = strict
        self._expected: Optional[float] = None
        self._safe = SafeEstimator()

    def prepare(self, plan: Plan) -> None:
        self._expected = self.history.expected_total(plan)

    def estimate(self, observation: Observation) -> float:
        if self.strict:
            require_sound_bounds(observation.curr, observation.bounds)
        expected = self._expected
        if expected is None or expected <= 0 or observation.curr > expected:
            # No history, or the run has outlived it: the feedback is wrong,
            # retreat to the worst-case-optimal answer.
            return self._safe.estimate(observation)
        raw = observation.curr / expected
        low, high = progress_interval(observation.curr, observation.bounds)
        return clamp_progress(min(max(raw, low), high))
