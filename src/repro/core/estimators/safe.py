"""The safe estimator (§5.3): ``Curr / √(LB·UB)``.

safe takes the geometric middle road between the two attainable extremes of
``total(Q)``, so its ratio error is at most ``√(UB/LB)`` — and Theorem 6
shows no estimator can guarantee better in the worst case.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.estimators.base import Observation, ProgressEstimator, clamp_progress


class SafeEstimator(ProgressEstimator):
    """``Curr/√(LB·UB)`` — worst-case optimal."""

    name = "safe"

    def estimate(self, observation: Observation) -> float:
        lower = observation.bounds.lower
        upper = observation.bounds.upper
        if lower <= 0 or upper <= 0:
            return 0.0
        return clamp_progress(observation.curr / math.sqrt(lower * upper))

    def interval(self, observation: Observation) -> Tuple[float, float]:
        """The truth lies in ``[Curr/UB, Curr/LB]``; safe is its geometric
        midpoint."""
        lower = observation.bounds.lower
        upper = observation.bounds.upper
        low = observation.curr / upper if upper > 0 else 0.0
        high = observation.curr / lower if lower > 0 else 1.0
        return clamp_progress(low), clamp_progress(high)

    def guaranteed_ratio_error(self, observation: Observation) -> float:
        """``√(UB/LB)`` at this instant."""
        ratio = observation.bounds.ratio
        return math.sqrt(ratio) if ratio != float("inf") else float("inf")
