"""The tool-kit of progress estimators the paper analyzes."""

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    clamp_progress,
    degenerate_reason,
    progress_interval,
    require_sound_bounds,
)
from repro.core.estimators.dne import DneBoundedEstimator, DneEstimator
from repro.core.estimators.feedback import (
    FeedbackEstimator,
    QueryHistory,
    plan_signature,
)
from repro.core.estimators.hybrid import HybridMuEstimator, HybridVarianceEstimator
from repro.core.estimators.pmax import PmaxEstimator
from repro.core.estimators.robust import (
    RobustEstimator,
    RobustHistory,
    SelectionEvent,
)
from repro.core.estimators.safe import SafeEstimator
from repro.core.estimators.trivial import TrivialEstimator
from repro.errors import EstimatorConfigError


def standard_toolkit():
    """The three estimators of the paper, ready to attach to a runner."""
    return [DneEstimator(), PmaxEstimator(), SafeEstimator()]


def full_toolkit():
    """All implemented estimators, including the §6.4 hybrids."""
    return [
        DneEstimator(),
        DneBoundedEstimator(),
        PmaxEstimator(),
        SafeEstimator(),
        TrivialEstimator(),
        HybridMuEstimator(),
        HybridVarianceEstimator(),
    ]


def robust_toolkit(history: Optional[RobustHistory] = None):
    """The robust combination plus the candidates it is judged against."""
    return [
        DneEstimator(),
        PmaxEstimator(),
        SafeEstimator(),
        RobustEstimator(history),
    ]


#: name → zero/one-argument factory for every estimator reachable by name.
#: History-backed estimators receive the shared histories via
#: :func:`make_estimator`'s keyword arguments.
_REGISTRY: Dict[str, Callable[..., ProgressEstimator]] = {
    DneEstimator.name: DneEstimator,
    DneBoundedEstimator.name: DneBoundedEstimator,
    PmaxEstimator.name: PmaxEstimator,
    SafeEstimator.name: SafeEstimator,
    TrivialEstimator.name: TrivialEstimator,
    HybridMuEstimator.name: HybridMuEstimator,
    HybridVarianceEstimator.name: HybridVarianceEstimator,
    FeedbackEstimator.name: FeedbackEstimator,
    RobustEstimator.name: RobustEstimator,
}


def estimator_names() -> List[str]:
    """Every name :func:`make_estimator` accepts, sorted."""
    return sorted(_REGISTRY)


def make_estimator(
    name: str,
    *,
    history: Optional[QueryHistory] = None,
    robust_history: Optional[RobustHistory] = None,
    catalog: object = None,
) -> ProgressEstimator:
    """Construct one estimator by its trace name.

    ``feedback`` requires (or creates) a :class:`QueryHistory`; ``robust``
    requires (or creates) a :class:`RobustHistory`.  Pass shared instances
    to let estimators learn across runs — a fresh per-call history makes
    them behave exactly like their cold fallbacks.  ``catalog`` qualifies
    the history keys with a data fingerprint, so same-shaped plans over
    different data stop polluting each other's learned totals.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise EstimatorConfigError(
            "unknown estimator %r (choose from: %s)"
            % (name, ", ".join(estimator_names()))
        )
    if name == FeedbackEstimator.name:
        return FeedbackEstimator(
            history if history is not None else QueryHistory(),
            catalog=catalog,
        )
    if name == RobustEstimator.name:
        return RobustEstimator(robust_history, catalog=catalog)
    return factory()


def toolkit_from_names(
    names: Sequence[str],
    *,
    history: Optional[QueryHistory] = None,
    robust_history: Optional[RobustHistory] = None,
    catalog: object = None,
) -> List[ProgressEstimator]:
    """Build a toolkit from estimator names, preserving order.

    Duplicate names are rejected up front (the runner would reject them
    later with a less specific message).
    """
    if not names:
        raise EstimatorConfigError("at least one estimator name is required")
    if len(set(names)) != len(names):
        raise EstimatorConfigError(
            "estimator names must be unique: %s" % (list(names),)
        )
    return [
        make_estimator(
            name, history=history, robust_history=robust_history,
            catalog=catalog,
        )
        for name in names
    ]


__all__ = [
    "DneBoundedEstimator",
    "DneEstimator",
    "FeedbackEstimator",
    "QueryHistory",
    "HybridMuEstimator",
    "HybridVarianceEstimator",
    "Observation",
    "PmaxEstimator",
    "ProgressEstimator",
    "RobustEstimator",
    "RobustHistory",
    "SafeEstimator",
    "SelectionEvent",
    "TrivialEstimator",
    "clamp_progress",
    "degenerate_reason",
    "estimator_names",
    "make_estimator",
    "plan_signature",
    "progress_interval",
    "require_sound_bounds",
    "full_toolkit",
    "robust_toolkit",
    "standard_toolkit",
    "toolkit_from_names",
]
