"""The tool-kit of progress estimators the paper analyzes."""

from repro.core.estimators.base import (
    Observation,
    ProgressEstimator,
    clamp_progress,
    degenerate_reason,
    progress_interval,
    require_sound_bounds,
)
from repro.core.estimators.dne import DneBoundedEstimator, DneEstimator
from repro.core.estimators.feedback import (
    FeedbackEstimator,
    QueryHistory,
    plan_signature,
)
from repro.core.estimators.hybrid import HybridMuEstimator, HybridVarianceEstimator
from repro.core.estimators.pmax import PmaxEstimator
from repro.core.estimators.safe import SafeEstimator
from repro.core.estimators.trivial import TrivialEstimator


def standard_toolkit():
    """The three estimators of the paper, ready to attach to a runner."""
    return [DneEstimator(), PmaxEstimator(), SafeEstimator()]


def full_toolkit():
    """All implemented estimators, including the §6.4 hybrids."""
    return [
        DneEstimator(),
        DneBoundedEstimator(),
        PmaxEstimator(),
        SafeEstimator(),
        TrivialEstimator(),
        HybridMuEstimator(),
        HybridVarianceEstimator(),
    ]


__all__ = [
    "DneBoundedEstimator",
    "DneEstimator",
    "FeedbackEstimator",
    "QueryHistory",
    "HybridMuEstimator",
    "HybridVarianceEstimator",
    "Observation",
    "PmaxEstimator",
    "ProgressEstimator",
    "SafeEstimator",
    "TrivialEstimator",
    "clamp_progress",
    "degenerate_reason",
    "plan_signature",
    "progress_interval",
    "require_sound_bounds",
    "full_toolkit",
    "standard_toolkit",
]
