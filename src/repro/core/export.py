"""Exporting progress traces: CSV and plain-dict forms.

Downstream users want traces out of the library — to plot the paper's
figures with their own tooling or to archive runs next to query logs.  The
functions here are deliberately dependency-free (plain ``csv``/``json``-able
structures).

These exporters consume *sealed* traces (what :class:`ProgressReport`
carries), which are always fully labeled: under the single-pass protocol
``actual`` is back-filled at completion from the run's own final tick
count, so no exported row ever has a null ``actual`` column.  Only *live*
samples observed mid-run (service probes, live JSONL events) can carry
``actual=None``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from repro.core.metrics import ProgressTrace
from repro.core.runner import ProgressReport


def trace_to_rows(trace: ProgressTrace) -> List[Dict[str, object]]:
    """One dict per sample: curr, actual, bounds, and every estimate."""
    rows: List[Dict[str, object]] = []
    for sample in trace.samples:
        row: Dict[str, object] = {
            "curr": sample.curr,
            "actual": sample.actual,
            "lower_bound": sample.lower_bound,
            "upper_bound": sample.upper_bound,
        }
        for name, value in sample.estimates.items():
            row[name] = value
        rows.append(row)
    return rows


def trace_to_csv(trace: ProgressTrace, path: Optional[str] = None) -> str:
    """Render the trace as CSV; optionally write it to ``path``."""
    rows = trace_to_rows(trace)
    fieldnames = ["curr", "actual", "lower_bound", "upper_bound"]
    fieldnames += trace.estimator_names()
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def trace_to_jsonl(trace: ProgressTrace, path: Optional[str] = None) -> str:
    """Render the trace as JSON Lines (one sample object per line).

    The structured sibling of :func:`trace_to_csv`: the same per-sample
    rows, but each line is a self-contained JSON object, so traces can be
    streamed, appended and grepped.  (For *live* JSONL emission during a
    run, attach a :class:`repro.core.observe.JsonlTraceWriter` to the
    runner instead.)
    """
    lines = [
        json.dumps(row, sort_keys=True) for row in trace_to_rows(trace)
    ]
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def report_to_dict(report: ProgressReport) -> Dict[str, object]:
    """A JSON-serializable summary of one instrumented run."""
    record: Dict[str, object] = {
        "plan": report.plan_name,
        "work_model": report.work_model,
        "total": report.total,
        "mu": report.mu,
        "samples": len(report.trace),
        "metrics": report.summary(),
    }
    if report.profile is not None:
        record["profile"] = report.profile.to_dict()
    return record


def report_to_json(report: ProgressReport, path: Optional[str] = None,
                   indent: int = 2) -> str:
    """Serialize the report summary as JSON; optionally write to ``path``."""
    text = json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
