"""Trace analysis beyond the paper's headline metrics.

Helpers for studying *when* an estimator becomes trustworthy, not just how
wrong it can be:

* :func:`convergence_point` — the earliest progress after which the
  estimator stays within ε of the truth (the x-coordinate of the "knee" in
  Figures 4-7);
* :func:`area_under_error` — the integral of |estimate − actual| over the
  run: a single scalar that rewards both accuracy and early convergence;
* :func:`bias` — signed mean error: positive = systematic over-estimation
  (dne in Figure 5), negative = under-estimation (dne in Figure 4);
* :func:`guarantee_width` — the mean width of the sound interval
  ``[Curr/UB, Curr/LB]``, i.e. how much the §5.1 bounds actually pin down;
* :func:`pipeline_breakdown` — per-pipeline tick shares of a finished run,
  the quantity dne's weights are trying to forecast.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.metrics import ProgressTrace
from repro.core.pipelines import Pipeline, decompose
from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan


def convergence_point(
    trace: ProgressTrace, name: str, epsilon: float = 0.05
) -> Optional[float]:
    """Earliest actual progress after which |err| ≤ ε holds to the end.

    Returns None if the estimator never settles inside ε.
    """
    point: Optional[float] = None
    for sample in trace.samples:
        error = abs(sample.estimates[name] - sample.actual)
        if error <= epsilon:
            if point is None:
                point = sample.actual
        else:
            point = None
    return point


def area_under_error(trace: ProgressTrace, name: str) -> float:
    """∫ |estimate − actual| d(actual), by the trapezoid rule.

    0 for a perfect estimator; an estimator that is off by a constant c for
    the whole run scores ≈ c.
    """
    samples = trace.samples
    if len(samples) < 2:
        return 0.0
    area = 0.0
    for previous, current in zip(samples, samples[1:]):
        width = current.actual - previous.actual
        left = abs(previous.estimates[name] - previous.actual)
        right = abs(current.estimates[name] - current.actual)
        area += width * (left + right) / 2.0
    return area


def bias(trace: ProgressTrace, name: str) -> float:
    """Signed mean error; > 0 means systematic over-estimation."""
    if not trace.samples:
        return 0.0
    return sum(
        sample.estimates[name] - sample.actual for sample in trace.samples
    ) / len(trace.samples)


def guarantee_width(trace: ProgressTrace) -> float:
    """Mean width of the sound progress interval over the run."""
    widths: List[float] = []
    for sample in trace.samples:
        if sample.lower_bound <= 0 or sample.upper_bound <= 0:
            continue
        low = sample.curr / sample.upper_bound
        high = min(1.0, sample.curr / sample.lower_bound)
        widths.append(max(0.0, high - low))
    return sum(widths) / len(widths) if widths else 0.0


def pipeline_breakdown(plan: Plan) -> List[Dict[str, object]]:
    """Run ``plan`` once; report each pipeline's share of the total ticks.

    This is the ground truth that dne's pipeline weights approximate: the
    output lists, per pipeline, its drivers, operator count, tick count and
    fraction of ``total(Q)``.
    """
    pipelines: List[Pipeline] = decompose(plan)
    monitor = ExecutionMonitor()
    context = ExecutionContext(monitor)
    for _ in plan.root.iterate(context):
        pass
    total = monitor.total_ticks
    breakdown: List[Dict[str, object]] = []
    for pipeline in pipelines:
        ticks = sum(
            monitor.count_for(op.operator_id) for op in pipeline.operators
        )
        breakdown.append(
            {
                "pipeline": pipeline.index,
                "drivers": [driver.label() for driver in pipeline.drivers],
                "operators": len(pipeline.operators),
                "ticks": ticks,
                "share": ticks / total if total else 0.0,
            }
        )
    return breakdown
