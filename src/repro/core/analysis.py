"""Trace analysis beyond the paper's headline metrics.

Helpers for studying *when* an estimator becomes trustworthy, not just how
wrong it can be:

* :func:`convergence_point` — the earliest progress after which the
  estimator stays within ε of the truth (the x-coordinate of the "knee" in
  Figures 4-7);
* :func:`area_under_error` — the integral of |estimate − actual| over the
  run: a single scalar that rewards both accuracy and early convergence;
* :func:`bias` — signed mean error: positive = systematic over-estimation
  (dne in Figure 5), negative = under-estimation (dne in Figure 4);
* :func:`guarantee_width` — the mean width of the sound interval
  ``[Curr/UB, Curr/LB]``, i.e. how much the §5.1 bounds actually pin down;
* :func:`pipeline_breakdown` — per-pipeline tick shares of a finished run,
  the quantity dne's weights are trying to forecast;
* :func:`aggregate_segment_residuals` / :func:`segment_residual_summary` —
  per-pipeline-segment residual aggregation against a sealed run's truth,
  the statistic the robust combination (König et al. 2012) selects on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import ProgressTrace, log_ratio_residual
from repro.core.pipelines import Pipeline, decompose
from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan


def convergence_point(
    trace: ProgressTrace, name: str, epsilon: float = 0.05
) -> Optional[float]:
    """Earliest actual progress after which |err| ≤ ε holds to the end.

    Returns None if the estimator never settles inside ε.
    """
    point: Optional[float] = None
    for sample in trace.samples:
        error = abs(sample.estimates[name] - sample.actual)
        if error <= epsilon:
            if point is None:
                point = sample.actual
        else:
            point = None
    return point


def area_under_error(trace: ProgressTrace, name: str) -> float:
    """∫ |estimate − actual| d(actual), by the trapezoid rule.

    0 for a perfect estimator; an estimator that is off by a constant c for
    the whole run scores ≈ c.
    """
    samples = trace.samples
    if len(samples) < 2:
        return 0.0
    area = 0.0
    for previous, current in zip(samples, samples[1:]):
        width = current.actual - previous.actual
        left = abs(previous.estimates[name] - previous.actual)
        right = abs(current.estimates[name] - current.actual)
        area += width * (left + right) / 2.0
    return area


def bias(trace: ProgressTrace, name: str) -> float:
    """Signed mean error; > 0 means systematic over-estimation."""
    if not trace.samples:
        return 0.0
    return sum(
        sample.estimates[name] - sample.actual for sample in trace.samples
    ) / len(trace.samples)


def guarantee_width(trace: ProgressTrace) -> float:
    """Mean width of the sound progress interval over the run."""
    widths: List[float] = []
    for sample in trace.samples:
        if sample.lower_bound <= 0 or sample.upper_bound <= 0:
            continue
        low = sample.curr / sample.upper_bound
        high = min(1.0, sample.curr / sample.lower_bound)
        widths.append(max(0.0, high - low))
    return sum(widths) / len(widths) if widths else 0.0


# -- per-segment residual aggregation (the robust combination's input) ---------

#: one raw observation of candidate estimates: (segment, curr, name → value)
SegmentObservation = Tuple[int, float, Dict[str, float]]


def aggregate_segment_residuals(
    observations: Sequence[SegmentObservation],
    total: float,
    min_actual: float = 0.01,
    phases: int = 1,
) -> Dict[int, Dict[str, List[float]]]:
    """Label a run log against its sealed ``total`` and group residuals.

    ``observations`` is what an estimator pool records while a run is in
    flight: for each sampled instant, the pipeline segment that was
    executing, ``Curr``, and every candidate's estimate.  Truth is only
    known once the run seals (``actual = curr / total``), so residuals are
    computed here, after the fact, and grouped by segment — the unit the
    robust combination keeps statistics on, because estimator behaviour
    changes at pipeline boundaries, not uniformly over a run.

    ``phases > 1`` subdivides each segment by the truth's phase within the
    run (which ``phases``-ile of [0, 1] ``actual`` fell in): an estimator
    can be terrible in a segment's first samples and excellent later (pmax
    before the whale tuple, dne before the weights settle), and whole-
    segment statistics would average that away.  Keys are then encoded as
    ``segment * phases + phase`` — still plain ints, unique because every
    segment contributes exactly ``phases`` consecutive codes.

    Samples with ``actual ≤ min_actual`` are skipped, mirroring the
    ratio-error machinery: at near-zero truth the ratio is numerically
    meaningless (the paper's metrics apply the same cutoff).
    """
    residuals: Dict[int, Dict[str, List[float]]] = {}
    for segment, curr, values in observations:
        actual = min(curr / total, 1.0) if total else 1.0
        if actual <= min_actual:
            continue
        key = segment
        if phases > 1:
            phase = min(int(actual * phases), phases - 1)
            key = segment * phases + phase
        bucket = residuals.setdefault(key, {})
        for name, value in values.items():
            bucket.setdefault(name, []).append(
                log_ratio_residual(value, actual)
            )
    return residuals


def segment_residual_summary(
    observations: Sequence[SegmentObservation],
    total: float,
    min_actual: float = 0.01,
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Mean-square / mean / count of log residuals per segment × candidate.

    The inspectable form of what :class:`~repro.core.estimators.robust.
    RobustHistory` folds into its EWMA store — useful for debugging why the
    robust estimator weighted the pool the way it did.
    """
    summary: Dict[int, Dict[str, Dict[str, float]]] = {}
    grouped = aggregate_segment_residuals(observations, total, min_actual)
    for segment, by_name in grouped.items():
        summary[segment] = {}
        for name, residuals in by_name.items():
            count = len(residuals)
            summary[segment][name] = {
                "count": float(count),
                "mean": sum(residuals) / count,
                "mean_square": sum(r * r for r in residuals) / count,
            }
    return summary


def pipeline_breakdown(plan: Plan) -> List[Dict[str, object]]:
    """Run ``plan`` once; report each pipeline's share of the total ticks.

    This is the ground truth that dne's pipeline weights approximate: the
    output lists, per pipeline, its drivers, operator count, tick count and
    fraction of ``total(Q)``.
    """
    pipelines: List[Pipeline] = decompose(plan)
    monitor = ExecutionMonitor()
    context = ExecutionContext(monitor)
    for _ in plan.root.iterate(context):
        pass
    total = monitor.total_ticks
    breakdown: List[Dict[str, object]] = []
    for pipeline in pipelines:
        ticks = sum(
            monitor.count_for(op.operator_id) for op in pipeline.operators
        )
        breakdown.append(
            {
                "pipeline": pipeline.index,
                "drivers": [driver.label() for driver in pipeline.drivers],
                "operators": len(pipeline.operators),
                "ticks": ticks,
                "share": ticks / total if total else 0.0,
            }
        )
    return breakdown
