"""The stable public facade: ``repro.connect(...) -> Session``.

Everything an application needs lives here, with keyword-only options and
no imports from engine/runner internals:

    import repro

    session = repro.connect(catalog=catalog)
    plan = session.sql("SELECT COUNT(*) FROM t")      # plan only
    result = session.execute(plan)                    # rows + accounting
    report = session.run(plan)                        # instrumented run
    handle = session.submit(plan, deadline=5.0)       # concurrent service
    handle.progress(); handle.cancel(); handle.result()

Execution knobs travel in one object — :class:`ExecutionOptions` — with a
single resolution path (explicit value → ``$REPRO_*`` → fallback)::

    options = repro.api.ExecutionOptions(engine="columnar", backend="process")
    with repro.connect(catalog=catalog, options=options) as session:
        ...

Stability policy (see ``docs/api.md``): names exported from ``repro`` and
``repro.api`` only change with a :class:`DeprecationWarning` shim for at
least one minor release.  Importing from ``repro.core.runner`` /
``repro.engine.executor`` directly keeps working but carries no such
promise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.estimators import (
    ProgressEstimator,
    RobustHistory,
    make_estimator,
    standard_toolkit,
)
from repro.core.observe import ProgressEventSink
from repro.core.runner import ProgressReport, ProgressRunner
from repro.engine.executor import ExecutionResult, execute
from repro.engine.plan import Plan
from repro.errors import ReproError
from repro.options import ExecutionOptions
from repro.service import QueryHandle, QueryService
from repro.storage.catalog import Catalog

__all__ = [
    "Catalog",
    "ExecutionOptions",
    "ExecutionResult",
    "Plan",
    "ProgressReport",
    "QueryHandle",
    "QueryService",
    "Session",
    "connect",
]

Query = Union[Plan, str]

#: an estimator instance, or a registry name (``"dne"``, ``"safe"``,
#: ``"robust"``, ...) the session resolves against its shared histories
EstimatorSpec = Union[str, ProgressEstimator]


def connect(
    *,
    catalog: Optional[Catalog] = None,
    options: Optional[ExecutionOptions] = None,
    engine: Optional[str] = None,
    protocol: Optional[str] = None,
    bounds: Optional[Sequence[str]] = None,
    target_samples: Optional[int] = None,
    max_workers: Optional[int] = None,
    queue_depth: Optional[int] = None,
    backend: Optional[str] = None,
    start_method: Optional[str] = None,
) -> "Session":
    """Open a :class:`Session` against ``catalog``.

    ``options`` carries every execution knob in one
    :class:`ExecutionOptions`; the remaining keywords are per-knob
    overrides layered on top of it (explicit keyword → ``options`` field →
    ``$REPRO_*`` environment variable → built-in fallback).  ``engine``
    picks the execution engine for every operation on the session
    (fallback: the fused compiler); ``protocol`` picks the evaluation
    protocol — ``"single_pass"`` (one execution per query, truth labeled
    at completion) or ``"two_pass"`` (legacy oracle pre-run, eager live
    labels).  ``bounds`` names the bound-provider stack for the runtime
    bounds tracker — the default ``["paper2005"]`` is the paper's §5.1
    rules alone; stacking ``"degree_seq"`` on top intersects
    degree-sequence join bounds into every snapshot (see
    ``docs/bounds.md``).  ``max_workers``/``queue_depth`` size the concurrent query
    service behind :meth:`Session.submit` (started lazily on first use).
    ``backend`` picks that service's execution backend — ``"thread"``
    (fallback) or ``"process"`` for real CPU parallelism; ``start_method``
    tunes how process workers start (``"fork"``/``"spawn"``/
    ``"forkserver"``, fork where available).
    """
    return Session(
        catalog=catalog,
        options=options,
        engine=engine,
        protocol=protocol,
        bounds=bounds,
        target_samples=target_samples,
        max_workers=max_workers,
        queue_depth=queue_depth,
        backend=backend,
        start_method=start_method,
    )


class Session:
    """One connection-like scope: a catalog, resolved options, a service."""

    def __init__(
        self,
        *,
        catalog: Optional[Catalog] = None,
        options: Optional[ExecutionOptions] = None,
        engine: Optional[str] = None,
        protocol: Optional[str] = None,
        bounds: Optional[Sequence[str]] = None,
        target_samples: Optional[int] = None,
        max_workers: Optional[int] = None,
        queue_depth: Optional[int] = None,
        backend: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        #: the session's fully resolved :class:`ExecutionOptions`
        self.options = (options or ExecutionOptions()).merged(
            engine=engine,
            protocol=protocol,
            backend=backend,
            start_method=start_method,
            bounds=bounds,
            target_samples=target_samples,
            max_workers=max_workers,
            queue_depth=queue_depth,
        ).resolve()
        self.engine = self.options.engine
        self.protocol = self.options.protocol
        self.backend = self.options.backend
        self.bounds = self.options.bounds
        self.target_samples = self.options.target_samples
        self._service: Optional[QueryService] = None
        self._closed = False
        #: shared learning state for name-resolved history-backed
        #: estimators: ``"feedback"`` reads its expected totals from
        #: ``_histories.totals``, ``"robust"`` reads its candidate error
        #: statistics from ``_histories`` — and every :meth:`run` whose
        #: toolkit came from names feeds both back automatically.  Keys are
        #: qualified by the session catalog's data fingerprint, so a
        #: same-shaped plan over changed data starts a fresh entry.
        self._histories = RobustHistory(catalog=self.catalog)

    # -- planning ----------------------------------------------------------------

    def sql(self, text: str, *, name: Optional[str] = None) -> Plan:
        """Plan SQL text against the session catalog (no execution)."""
        from repro.sql import plan_query

        return plan_query(text, self.catalog, name=name or "session-sql")

    def _plan_for(self, query: Query, *, name: Optional[str] = None) -> Plan:
        if isinstance(query, Plan):
            return query
        if isinstance(query, str):
            return self.sql(query, name=name)
        raise ReproError(
            "query must be a Plan or SQL text, not %r"
            % (type(query).__name__,)
        )

    def _resolve_toolkit(
        self, estimators: Optional[Sequence[EstimatorSpec]]
    ) -> List[ProgressEstimator]:
        """Instances pass through; names resolve against the session's
        shared histories, so ``"feedback"`` and ``"robust"`` learn across
        the session's runs."""
        if estimators is None:
            return standard_toolkit()
        toolkit: List[ProgressEstimator] = []
        for spec in estimators:
            if isinstance(spec, str):
                toolkit.append(make_estimator(
                    spec,
                    history=self._histories.totals,
                    robust_history=self._histories,
                    catalog=self.catalog,
                ))
            else:
                toolkit.append(spec)
        return toolkit

    # -- synchronous execution -----------------------------------------------------

    def execute(
        self,
        query: Query,
        *,
        name: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> ExecutionResult:
        """Run to completion; rows plus getnext accounting, no estimators."""
        plan = self._plan_for(query, name=name)
        return execute(plan, engine=engine or self.engine)

    def run(
        self,
        query: Query,
        *,
        name: Optional[str] = None,
        estimators: Optional[Sequence[EstimatorSpec]] = None,
        target_samples: Optional[int] = None,
        sinks: Sequence[ProgressEventSink] = (),
        engine: Optional[str] = None,
        protocol: Optional[str] = None,
        bounds: Optional[Sequence[str]] = None,
    ) -> ProgressReport:
        """One instrumented run: execute while sampling every estimator.

        ``estimators`` accepts instances and/or registry names
        (``"dne"``, ``"safe"``, ``"robust"``, ...).  History-backed
        estimators resolved by name share the session's histories, and any
        toolkit member exposing ``observe_result`` (the robust
        combination) is fed the sealed total after the run — so repeated
        ``session.run(plan, estimators=["safe", "robust"])`` calls learn
        from one run to the next with no extra plumbing.
        """
        plan = self._plan_for(query, name=name)
        toolkit = self._resolve_toolkit(estimators)
        report = ProgressRunner(
            plan,
            toolkit,
            self.catalog,
            target_samples=(
                target_samples if target_samples is not None
                else self.target_samples
            ),
            sinks=sinks,
            engine=engine or self.engine,
            protocol=protocol or self.protocol,
            bounds=bounds if bounds is not None else self.bounds,
        ).run()
        for estimator in toolkit:
            observe = getattr(estimator, "observe_result", None)
            if observe is not None:
                observe(plan, report.total)
        return report

    # -- concurrent execution ------------------------------------------------------

    @property
    def service(self) -> QueryService:
        """The session's query service (started on first access)."""
        if self._closed:
            raise ReproError("session is closed")
        if self._service is None:
            self._service = QueryService(
                self.catalog,
                options=self.options,
            )
        return self._service

    def submit(
        self,
        query: Query,
        *,
        name: Optional[str] = None,
        estimators: Optional[Sequence[EstimatorSpec]] = None,
        deadline: Optional[float] = None,
        sinks: Sequence[ProgressEventSink] = (),
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> QueryHandle:
        """Admit a query onto the concurrent service; returns its handle.

        ``sinks`` subscribe to this query's live cadence samples (the
        stream the network tier forwards over WebSockets).  ``estimators``
        accepts registry names like :meth:`run`; note the process backend
        hands each worker a pickled *copy* of the session's histories, so
        cross-run learning through ``submit`` requires the thread backend.
        """
        plan = self._plan_for(query, name=name)
        return self.service.submit(
            plan,
            name=name,
            estimators=(
                self._resolve_toolkit(estimators)
                if estimators is not None else None
            ),
            deadline=deadline,
            sinks=sinks,
            block=block,
            timeout=timeout,
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the service down (idempotent); the session becomes inert."""
        self._closed = True
        if self._service is not None:
            self._service.shutdown()
            self._service = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "Session(engine=%r, catalog=%r)" % (
            self.engine, getattr(self.catalog, "name", None),
        )
