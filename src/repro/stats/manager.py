"""Statistics manager: builds and registers synopses for catalog tables.

This is the moral equivalent of ``UPDATE STATISTICS``/``ANALYZE``: it runs a
single-relation statistics generator over each requested column and records
the result in the catalog, where the planner and the progress estimators can
find it.  Per the paper's framework, only *single-relation* statistics exist;
nothing here captures cross-table correlation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import StatisticsError
from repro.stats.base import ColumnStatistic, StatisticsGenerator
from repro.stats.degree import DegreeSequenceGenerator
from repro.stats.histogram import EquiDepthHistogramGenerator
from repro.storage.catalog import Catalog


class StatisticsManager:
    """Builds per-column statistics for tables registered in a catalog.

    Every analyzed column gets two synopses: the primary statistic (an
    equi-depth histogram unless another generator is given) in the
    catalog's main statistics channel, and a degree/frequency-sequence
    statistic in the degree channel — the latter feeds the ``degree_seq``
    bound provider.  Pass ``degree_generator=None`` to skip the second.
    """

    def __init__(
        self,
        catalog: Catalog,
        generator: Optional[StatisticsGenerator] = None,
        degree_generator: Optional[
            StatisticsGenerator
        ] = DegreeSequenceGenerator(),
    ) -> None:
        self.catalog = catalog
        self.generator = generator or EquiDepthHistogramGenerator()
        self.degree_generator = degree_generator

    def analyze_column(self, table_name: str, column: str) -> ColumnStatistic:
        """Build (or rebuild) a statistic on one column and register it."""
        table = self.catalog.table(table_name)
        if not table.schema.has_column(column):
            raise StatisticsError(
                "table %r has no column %r to analyze" % (table_name, column)
            )
        values = table.column_values(column)
        statistic = self.generator.build(values)
        self.catalog.set_statistic(table_name, column, statistic)
        if self.degree_generator is not None:
            self.catalog.set_degree_statistic(
                table_name, column, self.degree_generator.build(values)
            )
        return statistic

    def analyze_table(self, table_name: str) -> Dict[str, ColumnStatistic]:
        """Build statistics on every column of ``table_name``."""
        table = self.catalog.table(table_name)
        return {
            column.name: self.analyze_column(table_name, column.name)
            for column in table.schema
        }

    def analyze_all(self, tables: Optional[Iterable[str]] = None) -> None:
        """Build statistics on every column of every (or the given) tables."""
        names = list(tables) if tables is not None else self.catalog.table_names()
        for name in names:
            self.analyze_table(name)
