"""Histogram statistics: equi-width and equi-depth single-column synopses.

Histograms are the canonical *lossy* single-relation statistic the paper
reasons about: values inside a bucket can move without changing the bucket
counts.  Both variants answer equality and range estimation using the
standard uniformity-within-bucket assumption, which is exactly the source of
the skew-induced cardinality errors the paper leans on ("the errors in the
cardinality estimates are off by orders of magnitude").
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import StatisticsError
from repro.stats.base import ColumnStatistic, StatisticsGenerator


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: half-open key range with aggregate counts.

    ``low`` is inclusive; ``high`` is inclusive only for the last bucket
    (tracked by the owning histogram).
    """

    low: object
    high: object
    count: int
    distinct: int

    def width_fraction(self, low: object, high: object) -> float:
        """Fraction of this bucket's key span covered by [low, high]."""
        try:
            span = float(self.high) - float(self.low)  # type: ignore[arg-type]
            if span <= 0:
                return 1.0
            lo = max(float(low), float(self.low))  # type: ignore[arg-type]
            hi = min(float(high), float(self.high))  # type: ignore[arg-type]
            if hi <= lo:
                return 0.0
            return (hi - lo) / span
        except (TypeError, ValueError):
            # Non-numeric keys: fall back to all-or-nothing coverage.
            return 1.0


class Histogram(ColumnStatistic):
    """A bucketized synopsis with uniformity-within-bucket estimation."""

    def __init__(self, buckets: Sequence[Bucket], null_count: int = 0) -> None:
        self._buckets: Tuple[Bucket, ...] = tuple(buckets)
        self._null_count = null_count
        self._lows = [bucket.low for bucket in self._buckets]
        self._row_count = sum(bucket.count for bucket in self._buckets) + null_count

    # -- ColumnStatistic ------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def buckets(self) -> Tuple[Bucket, ...]:
        return self._buckets

    @property
    def null_count(self) -> int:
        return self._null_count

    def estimate_equality(self, value: object) -> float:
        bucket = self._bucket_for(value)
        if bucket is None or bucket.distinct == 0:
            return 0.0
        return bucket.count / bucket.distinct

    def estimate_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        if not self._buckets:
            return 0.0
        effective_low = self._buckets[0].low if low is None else low
        effective_high = self._buckets[-1].high if high is None else high
        try:
            if float(effective_high) < float(effective_low):  # type: ignore[arg-type]
                return 0.0
        except (TypeError, ValueError):
            if effective_high < effective_low:  # type: ignore[operator]
                return 0.0
        total = 0.0
        for bucket in self._buckets:
            total += bucket.count * bucket.width_fraction(effective_low, effective_high)
        return total

    def estimate_distinct(self) -> float:
        return float(sum(bucket.distinct for bucket in self._buckets))

    # -- range lower/upper bounds (used by repro.core.bounds) ----------------

    def range_bounds(self, low: Optional[object], high: Optional[object]) -> Tuple[int, int]:
        """Guaranteed (lower, upper) bounds on rows with key in [low, high].

        Buckets *entirely inside* the range contribute their full count to
        the lower bound; buckets that merely intersect it contribute to the
        upper bound.  This is how §5.1 tightens index-range-scan bounds from
        "appropriate bucket boundaries in histograms".
        """
        lower = 0
        upper = self._null_count * 0  # nulls never match a range predicate
        for bucket in self._buckets:
            intersects = (low is None or not self._less(bucket.high, low)) and (
                high is None or not self._less(high, bucket.low)
            )
            contained = (low is None or not self._less(bucket.low, low)) and (
                high is None or not self._less(high, bucket.high)
            )
            if contained:
                lower += bucket.count
            if intersects:
                upper += bucket.count
        return lower, upper

    @staticmethod
    def _less(a: object, b: object) -> bool:
        try:
            return a < b  # type: ignore[operator]
        except TypeError:
            return str(a) < str(b)

    def _bucket_for(self, value: object) -> Optional[Bucket]:
        if not self._buckets or value is None:
            return None
        if self._less(value, self._buckets[0].low):
            return None
        if self._less(self._buckets[-1].high, value):
            return None
        position = bisect.bisect_right(self._lows, value) - 1
        position = max(0, position)
        bucket = self._buckets[position]
        if self._less(bucket.high, value):
            return None
        return bucket

    def __repr__(self) -> str:
        return "Histogram(%d buckets, %d rows)" % (len(self._buckets), self._row_count)


def _clean_sorted(values: Sequence[object]) -> Tuple[List[object], int]:
    present = [value for value in values if value is not None]
    present.sort()
    return present, len(values) - len(present)


class EquiWidthHistogramGenerator(StatisticsGenerator):
    """Buckets of (approximately) equal key-range width.

    Only defined for numeric columns; for non-numeric data use the
    equi-depth generator.
    """

    def __init__(self, bucket_count: int = 20) -> None:
        if bucket_count < 1:
            raise StatisticsError("bucket_count must be >= 1")
        self.bucket_count = bucket_count

    @property
    def name(self) -> str:
        return "equi-width(%d)" % (self.bucket_count,)

    def build(self, values: Sequence[object]) -> Histogram:
        present, null_count = _clean_sorted(values)
        if not present:
            return Histogram([], null_count)
        try:
            low = float(present[0])  # type: ignore[arg-type]
            high = float(present[-1])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise StatisticsError("equi-width histograms need numeric values") from None
        if high == low:
            bucket = Bucket(present[0], present[-1], len(present), len(set(present)))
            return Histogram([bucket], null_count)
        width = (high - low) / self.bucket_count
        buckets: List[Bucket] = []
        start = 0
        for i in range(self.bucket_count):
            bucket_high = high if i == self.bucket_count - 1 else low + width * (i + 1)
            end = start
            while end < len(present) and (
                float(present[end]) < bucket_high  # type: ignore[arg-type]
                or i == self.bucket_count - 1
            ):
                end += 1
            chunk = present[start:end]
            if chunk:
                buckets.append(
                    Bucket(low + width * i, bucket_high, len(chunk), len(set(chunk)))
                )
            start = end
        return Histogram(buckets, null_count)


class EquiDepthHistogramGenerator(StatisticsGenerator):
    """Buckets holding (approximately) equal numbers of rows.

    Works for any totally ordered value domain, including strings/dates.
    """

    def __init__(self, bucket_count: int = 20) -> None:
        if bucket_count < 1:
            raise StatisticsError("bucket_count must be >= 1")
        self.bucket_count = bucket_count

    @property
    def name(self) -> str:
        return "equi-depth(%d)" % (self.bucket_count,)

    def build(self, values: Sequence[object]) -> Histogram:
        present, null_count = _clean_sorted(values)
        if not present:
            return Histogram([], null_count)
        depth = max(1, math.ceil(len(present) / self.bucket_count))
        buckets: List[Bucket] = []
        start = 0
        while start < len(present):
            end = min(start + depth, len(present))
            # Never split a run of equal keys across buckets; extend instead.
            while end < len(present) and present[end] == present[end - 1]:
                end += 1
            chunk = present[start:end]
            buckets.append(Bucket(chunk[0], chunk[-1], len(chunk), len(set(chunk))))
            start = end
        return Histogram(buckets, null_count)
