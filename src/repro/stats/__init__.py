"""Single-relation statistics: histograms, samples, and estimation."""

from repro.stats.base import (
    ColumnStatistic,
    StatisticsGenerator,
    statistics_equal,
    verify_lossy_pair,
)
from repro.stats.degree import (
    DegreeSequenceGenerator,
    DegreeStatistic,
    degree_sequence_join_bound,
    lp_join_bound,
)
from repro.stats.estimate import CardinalityEstimator
from repro.stats.histogram import (
    Bucket,
    EquiDepthHistogramGenerator,
    EquiWidthHistogramGenerator,
    Histogram,
)
from repro.stats.manager import StatisticsManager
from repro.stats.sample import ReservoirSampleGenerator, SampleStatistic

__all__ = [
    "Bucket",
    "CardinalityEstimator",
    "ColumnStatistic",
    "DegreeSequenceGenerator",
    "DegreeStatistic",
    "degree_sequence_join_bound",
    "lp_join_bound",
    "EquiDepthHistogramGenerator",
    "EquiWidthHistogramGenerator",
    "Histogram",
    "ReservoirSampleGenerator",
    "SampleStatistic",
    "StatisticsGenerator",
    "StatisticsManager",
    "statistics_equal",
    "verify_lossy_pair",
]
