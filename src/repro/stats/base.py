"""Single-relation statistics: the abstract interface and the lossiness notion.

The paper's framework (§2.3) allows the progress estimator to consult
*single-relation statistics* built independently per relation.  Crucially,
all statistics considered are **lossy**: for any sufficiently large relation
one can change a single tuple's value without changing the statistic.  The
lower-bound construction (Theorem 1) rests exactly on this property, so this
module makes lossiness a first-class, testable notion
(:func:`verify_lossy_pair`).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.errors import StatisticsError


class ColumnStatistic(abc.ABC):
    """A synopsis of one column of one relation.

    Implementations must answer the estimation questions the engine asks
    (equality and range selectivity, distinct-value count) *without* access
    to the underlying relation.
    """

    @property
    @abc.abstractmethod
    def row_count(self) -> int:
        """Number of rows the statistic was built over."""

    @abc.abstractmethod
    def estimate_equality(self, value: object) -> float:
        """Estimated number of rows whose column equals ``value``."""

    @abc.abstractmethod
    def estimate_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated number of rows whose column lies in the range."""

    @abc.abstractmethod
    def estimate_distinct(self) -> float:
        """Estimated number of distinct values in the column."""

    def selectivity_equality(self, value: object) -> float:
        """Equality selectivity as a fraction of the rows."""
        if self.row_count == 0:
            return 0.0
        return min(1.0, self.estimate_equality(value) / self.row_count)

    def selectivity_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Range selectivity as a fraction of the rows."""
        if self.row_count == 0:
            return 0.0
        estimate = self.estimate_range(low, high, low_inclusive, high_inclusive)
        return min(1.0, estimate / self.row_count)


class StatisticsGenerator(abc.ABC):
    """Builds a :class:`ColumnStatistic` from a column's values."""

    @abc.abstractmethod
    def build(self, values: Sequence[object]) -> ColumnStatistic:
        """Construct the synopsis over ``values``."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable generator name (used in catalog listings)."""


def statistics_equal(a: ColumnStatistic, b: ColumnStatistic, probes: Sequence[object]) -> bool:
    """Observational equality of two statistics over a set of probe values.

    Two synopses are indistinguishable to an estimator iff every question it
    can ask returns the same answer; we approximate that with equality and
    one-sided range probes at each probe value plus the distinct count.
    """
    if a.row_count != b.row_count:
        return False
    if abs(a.estimate_distinct() - b.estimate_distinct()) > 1e-9:
        return False
    for probe in probes:
        if abs(a.estimate_equality(probe) - b.estimate_equality(probe)) > 1e-9:
            return False
        if abs(a.estimate_range(None, probe) - b.estimate_range(None, probe)) > 1e-9:
            return False
        if abs(a.estimate_range(probe, None) - b.estimate_range(probe, None)) > 1e-9:
            return False
    return True


def verify_lossy_pair(
    generator: StatisticsGenerator,
    values: Sequence[object],
    position: int,
    replacement: object,
    probes: Sequence[object],
) -> Tuple[ColumnStatistic, ColumnStatistic, bool]:
    """Check the lossiness witness used by Theorem 1.

    Builds the statistic over ``values`` and over the same values with the
    element at ``position`` replaced by ``replacement``, and reports whether
    the two statistics are observationally equal over ``probes``.
    Returns ``(stat, stat_after_change, indistinguishable)``.
    """
    if not 0 <= position < len(values):
        raise StatisticsError("position %d out of range" % (position,))
    changed: List[object] = list(values)
    changed[position] = replacement
    original_stat = generator.build(values)
    changed_stat = generator.build(changed)
    return (
        original_stat,
        changed_stat,
        statistics_equal(original_stat, changed_stat, probes),
    )
