"""Degree/frequency-sequence statistics for join-output bounds.

The *degree* of a value ``v`` in a column is the number of rows carrying
``v``.  The multiset of degrees (the column's frequency sequence) is the
single-relation statistic behind the modern cardinality-bound results this
repo's ``degree_seq`` bound provider implements:

* the **degree-sequence bound** (Deeds & Balazinska, arXiv:2201.04166):
  for an equality join ``R ⋈ S``, the output is at most the sum over the
  descending-sorted degree sequences paired index by index — the
  rearrangement inequality makes that pairing the worst case over every
  possible value alignment;
* the **Lp-norm bound** (Abo Khamis & Olteanu, arXiv:2306.14075): by
  Cauchy–Schwarz the same output is at most ``‖deg_R‖₂ · ‖deg_S‖₂``, and
  one-sided variants like ``|S| · ‖deg_R‖_∞`` follow from Hölder — usable
  when only one side's sequence is known.

Degrees are stored run-length compressed (degree → number of distinct
values with that degree): a column with ``D`` distinct values has at most
``O(√rows)`` distinct degrees, so the synopsis is tiny while the bounds it
yields are exact over the full sequence.  NULLs are excluded — SQL equality
joins never match them.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.errors import StatisticsError
from repro.stats.base import ColumnStatistic, StatisticsGenerator


class DegreeStatistic(ColumnStatistic):
    """Run-length-compressed degree sequence of one column.

    ``degree_counts`` maps a degree to the number of distinct (non-NULL)
    values having exactly that degree; ``row_count`` is the number of rows
    the statistic was built over (NULLs included — staleness checks compare
    it against the live table size).
    """

    def __init__(self, degree_counts: Dict[int, int], row_count: int) -> None:
        for degree, count in degree_counts.items():
            if degree < 1 or count < 1:
                raise StatisticsError(
                    "degree counts must be positive (got %d values of "
                    "degree %d)" % (count, degree)
                )
        self._degree_counts = dict(degree_counts)
        self._row_count = int(row_count)
        self._distinct = sum(degree_counts.values())
        self._non_null = sum(
            degree * count for degree, count in degree_counts.items()
        )
        if self._non_null > self._row_count:
            raise StatisticsError(
                "degree sequence covers %d rows but row_count is %d"
                % (self._non_null, self._row_count)
            )

    # -- ColumnStatistic interface --------------------------------------------

    @property
    def row_count(self) -> int:
        return self._row_count

    def estimate_equality(self, value: object) -> float:
        """Mean degree — the statistic knows frequencies, not which value
        carries which, so the uniform-over-distinct answer is the honest
        estimate."""
        if self._distinct == 0:
            return 0.0
        return self._non_null / self._distinct

    def estimate_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """No value-domain information at all: every non-NULL row may
        qualify."""
        return float(self._non_null)

    def estimate_distinct(self) -> float:
        return float(self._distinct)

    # -- degree-sequence queries ----------------------------------------------

    @property
    def distinct_count(self) -> int:
        return self._distinct

    @property
    def non_null_count(self) -> int:
        return self._non_null

    @property
    def max_degree(self) -> int:
        if not self._degree_counts:
            return 0
        return max(self._degree_counts)

    @property
    def degree_counts(self) -> Dict[int, int]:
        return dict(self._degree_counts)

    def top_degrees(self, k: int) -> List[int]:
        """The ``k`` largest degrees, descending."""
        if k < 0:
            raise StatisticsError("k must be >= 0")
        out: List[int] = []
        for degree in sorted(self._degree_counts, reverse=True):
            take = min(self._degree_counts[degree], k - len(out))
            out.extend([degree] * take)
            if len(out) >= k:
                break
        return out

    def lp_norm(self, p: float) -> float:
        """ℓ_p norm of the degree sequence (``p == inf`` → max degree)."""
        if p <= 0:
            raise StatisticsError("Lp norm needs p > 0")
        if math.isinf(p):
            return float(self.max_degree)
        if p == 1:
            return float(self._non_null)
        total = sum(
            count * float(degree) ** p
            for degree, count in self._degree_counts.items()
        )
        return total ** (1.0 / p)

    def describe(self) -> str:
        return "DegreeStatistic(rows=%d, distinct=%d, max_degree=%d)" % (
            self._row_count,
            self._distinct,
            self.max_degree,
        )

    def __repr__(self) -> str:
        return self.describe()


def degree_sequence_join_bound(a: DegreeStatistic, b: DegreeStatistic) -> float:
    """Upper bound on ``|R ⋈_key S|`` from the two key columns' sequences.

    The true join size is ``Σ_v deg_R(v)·deg_S(v)`` over matching values;
    by the rearrangement inequality that sum is maximized when both
    sequences are sorted descending and paired index by index, so the
    paired sum is a sound upper bound whatever the actual value alignment.
    Walks the run-length-compressed sequences without expanding them.
    """
    seq_a = sorted(a.degree_counts.items(), reverse=True)
    seq_b = sorted(b.degree_counts.items(), reverse=True)
    total = 0.0
    ia = ib = 0
    remaining_a = seq_a[0][1] if seq_a else 0
    remaining_b = seq_b[0][1] if seq_b else 0
    while ia < len(seq_a) and ib < len(seq_b):
        take = min(remaining_a, remaining_b)
        total += take * float(seq_a[ia][0]) * float(seq_b[ib][0])
        remaining_a -= take
        remaining_b -= take
        if remaining_a == 0:
            ia += 1
            if ia < len(seq_a):
                remaining_a = seq_a[ia][1]
        if remaining_b == 0:
            ib += 1
            if ib < len(seq_b):
                remaining_b = seq_b[ib][1]
    return total


def lp_join_bound(a: DegreeStatistic, b: DegreeStatistic) -> float:
    """The Cauchy–Schwarz (p = 2) join bound: ``‖deg_R‖₂ · ‖deg_S‖₂``.

    Never tighter than :func:`degree_sequence_join_bound` when both full
    sequences are known, but it is the general-case form the Lp-norm
    framework derives from partial synopses — kept (and tested) as the
    fallback formula.
    """
    return a.lp_norm(2) * b.lp_norm(2)


class DegreeSequenceGenerator(StatisticsGenerator):
    """Builds a :class:`DegreeStatistic` from a column's values."""

    @property
    def name(self) -> str:
        return "degree_seq"

    def build(self, values: Sequence[object]) -> DegreeStatistic:
        frequencies = Counter(
            value for value in values if value is not None
        )
        degree_counts = Counter(frequencies.values())
        return DegreeStatistic(dict(degree_counts), len(values))
