"""Pre-computed sample statistics (the paper's *randomized* generator class).

The paper's framework covers both deterministic generators (histograms) and
randomized ones (pre-computed samples); its impossibility results hold for
either.  :class:`SampleStatistic` answers the standard estimation questions
by scaling sample frequencies, which makes it lossy in the paper's sense with
high probability: a single changed tuple is usually not sampled.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import List, Optional, Sequence

from repro.errors import StatisticsError
from repro.stats.base import ColumnStatistic, StatisticsGenerator


class SampleStatistic(ColumnStatistic):
    """A uniform sample of a column plus the true row count."""

    def __init__(self, sample: Sequence[object], row_count: int) -> None:
        if row_count < len(sample):
            raise StatisticsError("row_count smaller than sample size")
        self._sample: List[object] = [v for v in sample if v is not None]
        self._row_count = row_count
        self._counts = Counter(self._sample)
        self._sorted = sorted(self._sample)

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    def _scale(self) -> float:
        if not self._sample:
            return 0.0
        return self._row_count / len(self._sample)

    def estimate_equality(self, value: object) -> float:
        return self._counts.get(value, 0) * self._scale()

    def estimate_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        matched = 0
        for value in self._sorted:
            if low is not None:
                if low_inclusive and value < low:  # type: ignore[operator]
                    continue
                if not low_inclusive and value <= low:  # type: ignore[operator]
                    continue
            if high is not None:
                if high_inclusive and value > high:  # type: ignore[operator]
                    continue
                if not high_inclusive and value >= high:  # type: ignore[operator]
                    continue
            matched += 1
        return matched * self._scale()

    def estimate_distinct(self) -> float:
        # Naive scale-up estimator; adequate for planning purposes here.
        if not self._sample:
            return 0.0
        unique = len(self._counts)
        if unique == len(self._sample):
            # Looks like a (near-)unique column: assume all rows distinct.
            return float(self._row_count)
        return float(unique)

    def __repr__(self) -> str:
        return "SampleStatistic(%d of %d rows)" % (len(self._sample), self._row_count)


class ReservoirSampleGenerator(StatisticsGenerator):
    """Classic reservoir sampling with a fixed seed for reproducibility."""

    def __init__(self, sample_size: int = 100, seed: int = 0) -> None:
        if sample_size < 1:
            raise StatisticsError("sample_size must be >= 1")
        self.sample_size = sample_size
        self.seed = seed

    @property
    def name(self) -> str:
        return "reservoir(%d)" % (self.sample_size,)

    def build(self, values: Sequence[object]) -> SampleStatistic:
        rng = random.Random(self.seed)
        reservoir: List[object] = []
        for i, value in enumerate(values):
            if i < self.sample_size:
                reservoir.append(value)
            else:
                j = rng.randint(0, i)
                if j < self.sample_size:
                    reservoir[j] = value
        return SampleStatistic(reservoir, len(values))
