"""Optimizer-style cardinality estimation from single-relation statistics.

This is the classical, *error-prone* machinery the paper contrasts progress
estimation with: selectivities come from per-column histograms under
independence and uniformity assumptions, and join selectivity uses the
``1/max(distinct)`` rule.  Under skewed data these estimates go wrong by
orders of magnitude ([11] in the paper) — deliberately so; several
experiments here exist to show progress estimators surviving exactly those
errors.

The estimator is used by the SQL planner (join ordering, access-path choice)
and by the multi-pipeline dne estimator (pipeline work weights).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Not,
    Or,
    as_column_equality,
    as_column_range,
    conjuncts,
)
from repro.engine.operators.aggregate import HashAggregate, StreamAggregate
from repro.engine.operators.base import Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.index_seek import IndexSeek
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.misc import Distinct, Limit, UnionAll
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.topn import TopN
from repro.engine.plan import Plan
from repro.stats.base import ColumnStatistic
from repro.storage.catalog import Catalog
from repro.storage.schema import split_name

#: fallback selectivities when no statistic answers the question
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 0.25
DEFAULT_GROUPING_FRACTION = 0.1


class CardinalityEstimator:
    """Estimates selectivities and per-operator output cardinalities."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- column statistics lookup ----------------------------------------------

    def _statistic_for(self, column_name: str) -> Optional[ColumnStatistic]:
        """Find a statistic for a (possibly alias-qualified) column name.

        The qualifier is tried as a table name directly; if that fails, every
        table owning a column of that bare name is tried (unambiguous case).
        """
        qualifier, bare = split_name(column_name)
        if qualifier is not None and self.catalog.has_table(qualifier):
            statistic = self.catalog.statistic(qualifier, bare)
            if isinstance(statistic, ColumnStatistic):
                return statistic
        owners = [
            table.name
            for table in self.catalog.tables()
            if table.schema.has_column(bare)
        ]
        if len(owners) == 1:
            statistic = self.catalog.statistic(owners[0], bare)
            if isinstance(statistic, ColumnStatistic):
                return statistic
        return None

    # -- predicate selectivity ---------------------------------------------------

    def selectivity(self, predicate: Expression) -> float:
        """Estimated fraction of rows satisfying ``predicate``.

        Conjuncts multiply (independence); disjuncts combine by
        inclusion-exclusion; everything is clamped to [0, 1].
        """
        parts = conjuncts(predicate)
        if len(parts) > 1:
            product = 1.0
            for part in parts:
                product *= self.selectivity(part)
            return _clamp(product)
        return _clamp(self._single_selectivity(parts[0]))

    def _single_selectivity(self, predicate: Expression) -> float:
        if isinstance(predicate, Or):
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - self.selectivity(operand)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.operand)
        if isinstance(predicate, And):
            return self.selectivity(predicate)
        if isinstance(predicate, IsNull):
            return DEFAULT_OTHER_SELECTIVITY
        if isinstance(predicate, (Like, InList)):
            return self._in_or_like_selectivity(predicate)
        if as_column_equality(predicate) is not None:
            # column = column inside one input: treat as generic equality
            return DEFAULT_EQUALITY_SELECTIVITY
        range_shape = as_column_range(predicate)
        if range_shape is not None:
            return self._range_selectivity(*range_shape)
        if isinstance(predicate, Comparison) and predicate.op == "<>":
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_OTHER_SELECTIVITY

    def _in_or_like_selectivity(self, predicate: Expression) -> float:
        if isinstance(predicate, InList):
            from repro.engine.expressions import ColumnRef

            if isinstance(predicate.operand, ColumnRef):
                statistic = self._statistic_for(predicate.operand.name)
                if statistic is not None:
                    return _clamp(
                        sum(
                            statistic.selectivity_equality(value)
                            for value in predicate.values
                        )
                    )
            return _clamp(DEFAULT_EQUALITY_SELECTIVITY * len(predicate.values))
        return DEFAULT_OTHER_SELECTIVITY

    def _range_selectivity(
        self,
        column: str,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> float:
        statistic = self._statistic_for(column)
        if statistic is None:
            if low is not None and high is not None and low == high:
                return DEFAULT_EQUALITY_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if low is not None and high is not None and low == high:
            return statistic.selectivity_equality(low)
        return statistic.selectivity_range(low, high, low_inclusive, high_inclusive)

    # -- join selectivity -----------------------------------------------------------

    def join_selectivity(self, left_column: str, right_column: str) -> float:
        """``1 / max(V(left), V(right))`` with histogram distinct counts."""
        left_stat = self._statistic_for(left_column)
        right_stat = self._statistic_for(right_column)
        distincts = [
            stat.estimate_distinct()
            for stat in (left_stat, right_stat)
            if stat is not None and stat.estimate_distinct() > 0
        ]
        if not distincts:
            return DEFAULT_EQUALITY_SELECTIVITY
        return 1.0 / max(distincts)

    # -- per-operator plan estimates ---------------------------------------------------

    def estimate_plan(self, plan: Plan) -> Dict[int, float]:
        """Estimated output cardinality for every operator in ``plan``.

        Returns a map from ``operator_id`` to the estimate.  These are the
        "optimizer estimates which do not come with error intervals" (§5.1):
        the progress layer uses them only for pipeline weighting, never for
        guarantees.
        """
        estimates: Dict[int, float] = {}
        self._estimate_node(plan.root, estimates)
        return estimates

    def _estimate_node(self, node: Operator, out: Dict[int, float]) -> float:
        children = [self._estimate_node(child, out) for child in node.children]
        estimate = self._node_estimate(node, children)
        out[node.operator_id] = estimate
        return estimate

    def _node_estimate(self, node: Operator, children: list) -> float:
        if isinstance(node, TableScan):
            return float(len(node.table))
        if isinstance(node, RowSource):
            return float(len(node.rows))
        if isinstance(node, IndexSeek):
            # The index can answer exactly; a real system would use the
            # histogram, and so do we when asked for *bounds* (core.bounds).
            return float(node.exact_match_count())
        if isinstance(node, Filter):
            return children[0] * self.selectivity(node.predicate)
        if isinstance(node, (HashJoin, MergeJoin)):
            left_key, right_key = _join_key_names(node)
            selectivity = (
                self.join_selectivity(left_key, right_key)
                if left_key and right_key
                else DEFAULT_EQUALITY_SELECTIVITY
            )
            return children[0] * children[1] * selectivity
        if isinstance(node, IndexNestedLoopsJoin):
            from repro.engine.expressions import ColumnRef

            outer = children[0]
            inner_name = "%s.%s" % (node.inner_alias, node.index.column)
            outer_name = (
                node.outer_key.name
                if isinstance(node.outer_key, ColumnRef)
                else inner_name
            )
            selectivity = self.join_selectivity(outer_name, inner_name)
            inner_cardinality = float(len(node.index.table))
            estimate = outer * inner_cardinality * selectivity
            if node.residual is not None:
                estimate *= self.selectivity(node.residual)
            return estimate
        if isinstance(node, NestedLoopsJoin):
            estimate = children[0] * children[1]
            if node.predicate is not None:
                estimate *= self.selectivity(node.predicate)
            return estimate
        if isinstance(node, (HashAggregate, StreamAggregate)):
            if not node.group_by:
                return 1.0
            return max(1.0, children[0] * DEFAULT_GROUPING_FRACTION)
        if isinstance(node, Distinct):
            return max(1.0, children[0] * DEFAULT_GROUPING_FRACTION)
        if isinstance(node, (Limit, TopN)):
            return min(children[0], float(node.limit))
        if isinstance(node, UnionAll):
            return float(sum(children))
        # Project, Sort and anything else that preserves cardinality.
        return children[0] if children else 0.0


def _join_key_names(node: Operator):
    """Column names of an equi-join's keys, when they are plain columns."""
    from repro.engine.expressions import ColumnRef

    if isinstance(node, HashJoin):
        left, right = node.build_key, node.probe_key
    elif isinstance(node, MergeJoin):
        left, right = node.left_key, node.right_key
    else:
        return None, None
    left_name = left.name if isinstance(left, ColumnRef) else None
    right_name = right.name if isinstance(right, ColumnRef) else None
    return left_name, right_name


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, value))
