"""repro — a reproduction of *When Can We Trust Progress Estimators for SQL
Queries?* (Chaudhuri, Kaushik, Ramamurthy; SIGMOD 2005).

The package ships a pure-Python iterator-model query engine (storage,
indexes, statistics, physical operators, a SQL front end) instrumented under
the paper's GetNext model of work, plus the progress-estimator tool-kit the
paper analyzes: ``dne``, ``pmax``, ``safe`` and the §6.4 hybrids.

Quickstart::

    from repro.storage import Catalog, Table, schema_of
    from repro.engine.operators import TableScan
    from repro.engine.plan import Plan
    from repro.core import run_with_estimators, standard_toolkit

    catalog = Catalog()
    catalog.add_table(Table("t", schema_of("t", "x:int"), [(i,) for i in range(1000)]))
    report = run_with_estimators(Plan(TableScan(catalog.table("t"))), standard_toolkit())
    print(report.summary())
"""

__version__ = "1.0.0"
