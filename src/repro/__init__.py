"""repro — a reproduction of *When Can We Trust Progress Estimators for SQL
Queries?* (Chaudhuri, Kaushik, Ramamurthy; SIGMOD 2005).

The package ships a pure-Python iterator-model query engine (storage,
indexes, statistics, physical operators, a SQL front end) instrumented under
the paper's GetNext model of work, the progress-estimator tool-kit the
paper analyzes (``dne``, ``pmax``, ``safe`` and the §6.4 hybrids), and a
concurrent query service with cancellation, deadlines and live per-query
progress.

The stable public surface is the :mod:`repro.api` facade, re-exported here:

    import repro

    session = repro.connect(catalog=catalog)
    report = session.run("SELECT g, COUNT(*) FROM t GROUP BY g")
    handle = session.submit(plan, deadline=5.0)

See ``docs/api.md`` for the full surface and the deprecation policy.
"""

__version__ = "1.1.0"

#: lazily-resolved public surface: name -> (module, attribute)
_EXPORTS = {
    "connect": ("repro.api", "connect"),
    "Session": ("repro.api", "Session"),
    "ExecutionOptions": ("repro.options", "ExecutionOptions"),
    "QueryHandle": ("repro.service", "QueryHandle"),
    "QueryService": ("repro.service", "QueryService"),
    "QueryState": ("repro.service", "QueryState"),
    "BACKENDS": ("repro.service", "BACKENDS"),
    "CatalogSpec": ("repro.service", "CatalogSpec"),
    "ReproError": ("repro.errors", "ReproError"),
    "AdmissionError": ("repro.errors", "AdmissionError"),
    "QueryCancelled": ("repro.errors", "QueryCancelled"),
    "QueryTimeout": ("repro.errors", "QueryTimeout"),
    "DegenerateBoundsError": ("repro.errors", "DegenerateBoundsError"),
}

__all__ = ["__version__"] + sorted(_EXPORTS)


def __getattr__(name: str):
    # Lazy so that `import repro` stays free of engine import cost for
    # consumers that only want a submodule.
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
