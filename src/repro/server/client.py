"""A blocking client for the server — stdlib only.

Tests, the ``repro serve`` CLI and the load benchmark all talk to the
server over real sockets through this module: JSON-over-HTTP via
``http.client`` and the event stream over a raw-socket WebSocket using the
framing in :mod:`repro.server.wsproto` (client frames masked, as RFC 6455
requires).  Keeping the client blocking means callers need no event loop —
each WebSocket read simply parks a thread, which is exactly the shape of
the load benchmark's per-client workers.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Dict, List, Optional, Tuple

from repro.server import wsproto


class ServerClientError(Exception):
    """An HTTP error status, carrying the decoded body."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__("HTTP %d: %s" % (status, payload.get("error")))
        self.status = status
        self.payload = payload


class ServerClient:
    """One server endpoint; connections are per-request (the server closes)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- HTTP ----------------------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[dict] = None,
                ) -> Tuple[int, Dict[str, object]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout,
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, decoded
        finally:
            conn.close()

    def _expect(self, method: str, path: str,
                payload: Optional[dict] = None,
                ok: Tuple[int, ...] = (200,)) -> Dict[str, object]:
        status, decoded = self.request(method, path, payload)
        if status not in ok:
            raise ServerClientError(status, decoded)
        return decoded

    def submit(self, sql: str, *, tenant: str = "default",
               name: Optional[str] = None,
               deadline: Optional[float] = None,
               target_samples: Optional[int] = None) -> Dict[str, object]:
        """POST /queries; raises :class:`ServerClientError` on 429/400."""
        payload: Dict[str, object] = {"sql": sql, "tenant": tenant}
        if name is not None:
            payload["name"] = name
        if deadline is not None:
            payload["deadline"] = deadline
        if target_samples is not None:
            payload["target_samples"] = target_samples
        return self._expect("POST", "/queries", payload, ok=(201,))

    def status(self, query_id: str) -> Dict[str, object]:
        return self._expect("GET", "/queries/%s" % query_id)

    def queries(self) -> List[Dict[str, object]]:
        return self._expect("GET", "/queries")["queries"]

    def cancel(self, query_id: str) -> Dict[str, object]:
        return self._expect("DELETE", "/queries/%s" % query_id)

    def metrics(self) -> Dict[str, object]:
        return self._expect("GET", "/metrics")

    def healthz(self) -> Dict[str, object]:
        return self._expect("GET", "/healthz")

    # -- WebSocket -------------------------------------------------------------------

    def stream_events(self, query_id: str) -> List[Dict[str, object]]:
        """Subscribe to a query's event stream; block until it ends.

        Returns every JSON frame in order: ``queued``, the ``sample``
        cadence, then the terminal ``end`` frame with the sealed trace.
        Safe to call at any point in the query's life — the stream replays
        buffered frames first, so a late subscriber still sees everything.
        """
        path = "/queries/%s/events" % query_id
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout,
        )
        try:
            key = base64.b64encode(os.urandom(16)).decode("ascii")
            sock.sendall((
                "GET %s HTTP/1.1\r\n"
                "Host: %s:%d\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                "Sec-WebSocket-Key: %s\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
                % (path, self.host, self.port, key)
            ).encode("latin-1"))
            leftover = self._read_handshake(sock, key)
            read_socket = wsproto.reader_from_socket(sock)
            pending = bytearray(leftover)

            def read_exact(count: int) -> bytes:
                # Serve bytes that arrived glued to the handshake response
                # first; frames may straddle the boundary.
                if pending:
                    take = bytes(pending[:count])
                    del pending[: len(take)]
                    if len(take) == count:
                        return take
                    return take + read_socket(count - len(take))
                return read_socket(count)
            frames: List[Dict[str, object]] = []
            while True:
                opcode, payload, _fin = wsproto.read_frame(read_exact)
                if opcode == wsproto.OP_CLOSE:
                    sock.sendall(wsproto.encode_close(mask=True))
                    return frames
                if opcode == wsproto.OP_PING:
                    sock.sendall(wsproto.encode_frame(
                        payload, wsproto.OP_PONG, mask=True,
                    ))
                    continue
                if opcode == wsproto.OP_TEXT:
                    frames.append(json.loads(payload.decode("utf-8")))
        finally:
            sock.close()

    @staticmethod
    def _read_handshake(sock, key: str) -> bytes:
        """Validate the 101 response; returns bytes read past its end."""
        buffer = bytearray()
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(4096)
            if not chunk:
                raise wsproto.WebSocketError(
                    "connection closed during WebSocket handshake"
                )
            buffer += chunk
        raw_head, leftover = bytes(buffer).split(b"\r\n\r\n", 1)
        head = raw_head.decode("latin-1")
        status_line = head.split("\r\n")[0]
        if " 101 " not in status_line + " ":
            raise wsproto.WebSocketError(
                "handshake rejected: %s" % status_line
            )
        expected = wsproto.accept_key(key)
        for line in head.split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                if value.strip() != expected:
                    raise wsproto.WebSocketError(
                        "bad Sec-WebSocket-Accept from server"
                    )
                return leftover
        raise wsproto.WebSocketError("server omitted Sec-WebSocket-Accept")
