"""Per-tenant admission quotas and deficit-round-robin fair dispatch.

The query service's admission queue is a single FIFO: one tenant bursting
200 queries parks everyone else behind them.  The network tier therefore
schedules *in front of* the service:

* each tenant owns a FIFO of pending queries, admitted against a
  :class:`TenantQuota` — a full pending queue is an immediate
  :class:`TenantThrottled` (HTTP 429), never silent loss;
* a dispatcher thread runs classic deficit round-robin over the tenants
  with work: each round a tenant's deficit grows by its quota ``weight``,
  and it dispatches one queued query per whole unit of deficit (unit cost
  — queries are the indivisible work item here), so over time tenants
  receive service proportional to weight regardless of burst shapes;
* ``max_inflight`` caps how many of a tenant's queries may occupy service
  workers at once; a capped tenant is skipped (its deficit frozen) until a
  completion callback reopens it;
* dispatch itself uses the service's blocking admission (``block=True``),
  so when every worker is busy the dispatcher — not the HTTP handlers —
  absorbs the backpressure.

Every admission decision is observable: ``tenant_admitted`` /
``tenant_throttled`` :class:`~repro.core.observe.ProgressEvent`\\ s flow to
the scheduler's sinks, and the shared :class:`ServerMetrics` registry picks
up counts, queue depths and latencies for ``GET /metrics``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.core.observe import ProgressEvent, ProgressEventSink, emit_to_all
from repro.errors import AdmissionError, QueryCancelled, ServiceError
from repro.server.bridge import EventStream, terminal_frame
from repro.server.metrics import ServerMetrics
from repro.service.handle import QueryHandle


class TenantThrottled(AdmissionError):
    """A tenant's pending queue is full; retry after the backlog drains."""

    def __init__(self, tenant: str, pending: int, max_pending: int) -> None:
        super().__init__(
            "tenant %r is throttled: %d queries pending (quota %d)"
            % (tenant, pending, max_pending)
        )
        self.tenant = tenant
        self.pending = pending
        self.max_pending = max_pending


@dataclass(frozen=True)
class TenantQuota:
    """Admission and scheduling limits for one tenant.

    ``max_pending`` bounds the undispatched backlog (throttle above it);
    ``max_inflight`` bounds concurrently executing queries; ``weight`` is
    the DRR quantum — a weight-2 tenant earns dispatch slots twice as fast
    as a weight-1 tenant when both have work queued.
    """

    max_pending: int = 32
    max_inflight: int = 4
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if self.max_inflight < 1:
            raise ServiceError("max_inflight must be >= 1")
        if self.weight <= 0:
            raise ServiceError("weight must be > 0")


class ScheduledQuery:
    """One query owned by the scheduler, before and after dispatch."""

    def __init__(self, query_id: str, tenant: str, name: str, query,
                 *, deadline: Optional[float], target_samples: Optional[int],
                 stream: Optional[EventStream], sinks: tuple) -> None:
        self.query_id = query_id
        self.tenant = tenant
        self.name = name
        self.query = query
        self.deadline = deadline
        self.target_samples = target_samples
        #: the WebSocket-facing frame stream (None when nobody will watch)
        self.stream = stream
        #: per-query service sinks (StreamSink and friends)
        self.sinks = sinks
        self.handle: Optional[QueryHandle] = None
        self.created_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self.pre_dispatch_error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._cancelled_queued = False
        self._dispatched = False

    def state_name(self) -> str:
        if self.handle is not None:
            return self.handle.state.value
        if self._cancelled_queued:
            return "cancelled"
        if self.pre_dispatch_error is not None:
            return "failed"
        return "queued"

    @property
    def done(self) -> bool:
        if self.handle is not None:
            return self.handle.done
        return self._cancelled_queued or self.pre_dispatch_error is not None

    def latest_progress(self) -> Optional[dict]:
        if self.handle is None:
            return None
        sample = self.handle.progress()
        if sample is None:
            return None
        from repro.server.bridge import sample_to_dict

        return sample_to_dict(sample)

    def snapshot(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "id": self.query_id,
            "query": self.name,
            "tenant": self.tenant,
            "state": self.state_name(),
            "done": self.done,
        }
        progress = self.latest_progress()
        if progress is not None:
            record["progress"] = progress
        error = (
            self.handle.error if self.handle is not None
            else self.pre_dispatch_error
        )
        if error is not None:
            record["error"] = str(error)
        return record


class _TenantState:
    """Dispatcher-side bookkeeping for one tenant."""

    def __init__(self, quota: TenantQuota) -> None:
        self.quota = quota
        self.pending: Deque[ScheduledQuery] = deque()
        self.inflight = 0
        self.deficit = 0.0


class FairScheduler:
    """DRR dispatch of tenant queues onto a :class:`QueryService`."""

    def __init__(
        self,
        service,
        *,
        metrics: Optional[ServerMetrics] = None,
        default_quota: TenantQuota = TenantQuota(),
        quotas: Optional[Dict[str, TenantQuota]] = None,
        sinks: Sequence[ProgressEventSink] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        self.sinks = list(sinks)
        self._clock = clock
        self._started_at = clock()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._tenants: Dict[str, _TenantState] = {}
        #: round-robin ring of tenant names (stable admission order)
        self._ring: List[str] = []
        self._queries: Dict[str, ScheduledQuery] = {}
        self._ids = itertools.count(1)
        #: own counter — _emit runs both with and without self._lock held
        self._seq = itertools.count()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-server-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- admission ---------------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def submit(
        self,
        tenant: str,
        query,
        *,
        name: Optional[str] = None,
        deadline: Optional[float] = None,
        target_samples: Optional[int] = None,
        stream: Optional[EventStream] = None,
        sinks: Sequence = (),
    ) -> ScheduledQuery:
        """Admit one query for ``tenant``; raises :class:`TenantThrottled`
        when the tenant's pending queue is at quota.

        ``query`` is SQL text or a zero-argument callable returning a fresh
        :class:`~repro.engine.plan.Plan` (plan objects hold runtime state,
        so repeated dispatch needs a fresh instance each time — the CLI's
        TPC-H mix uses callables).
        """
        quota = self.quota_for(tenant)
        with self._lock:
            if self._closed:
                raise AdmissionError("server scheduler is shut down")
            state = self._tenants.get(tenant)
            if state is None:
                state = self._tenants[tenant] = _TenantState(quota)
                self._ring.append(tenant)
            if len(state.pending) >= quota.max_pending:
                pending = len(state.pending)
                self.metrics.record_throttled(tenant)
                self._emit("tenant_throttled", tenant, name or "?", {
                    "pending": pending,
                    "max_pending": quota.max_pending,
                })
                raise TenantThrottled(tenant, pending, quota.max_pending)
            query_id = "q-%d" % next(self._ids)
            scheduled = ScheduledQuery(
                query_id, tenant, name or query_id, query,
                deadline=deadline, target_samples=target_samples,
                stream=stream, sinks=tuple(sinks),
            )
            state.pending.append(scheduled)
            self._queries[query_id] = scheduled
            self.metrics.record_submitted(tenant)
            # Publish "queued" before waking the dispatcher so the frame
            # provably precedes any sample a fast worker could emit.
            if stream is not None:
                stream.publish({
                    "event": "queued",
                    "id": scheduled.query_id,
                    "query": scheduled.name,
                    "tenant": tenant,
                })
            self._work.notify()
        return scheduled

    def get(self, query_id: str) -> Optional[ScheduledQuery]:
        with self._lock:
            return self._queries.get(query_id)

    def cancel(self, query_id: str) -> bool:
        """Cooperative cancel: drop a queued query, or signal a running one."""
        scheduled = self.get(query_id)
        if scheduled is None:
            return False
        with self._lock:
            state = self._tenants[scheduled.tenant]
            if scheduled in state.pending:
                state.pending.remove(scheduled)
                scheduled._cancelled_queued = True
                scheduled.pre_dispatch_error = QueryCancelled(
                    "query %r was cancelled while queued" % (scheduled.name,)
                )
                scheduled.finished_at = self._clock()
                self.metrics.record_cancelled_queued(scheduled.tenant)
                cancelled_queued = True
            else:
                cancelled_queued = False
        if cancelled_queued:
            self._finish_stream(scheduled)
            return True
        if scheduled.handle is not None:
            return scheduled.handle.cancel()
        return False

    def queue_depths(self) -> Dict[str, int]:
        with self._lock:
            depths = {
                "service_pending": self.service.stats()["pending"],
            }
            for tenant, state in self._tenants.items():
                depths["tenant:%s" % tenant] = len(state.pending)
            return depths

    # -- dispatch ----------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            for scheduled in batch:
                self._dispatch(scheduled)

    def _next_batch(self) -> Optional[List[ScheduledQuery]]:
        """One DRR round: pick every query dispatchable right now.

        Blocks until some tenant has queued work below its inflight cap
        (or the scheduler closes).  Returns the round's dispatch list in
        ring order; dispatch happens outside the lock because the service's
        blocking admission may park the dispatcher.
        """
        with self._lock:
            while True:
                if self._closed:
                    return None
                batch: List[ScheduledQuery] = []
                eligible = False
                for tenant in list(self._ring):
                    state = self._tenants[tenant]
                    if not state.pending:
                        state.deficit = 0.0
                        continue
                    if state.inflight >= state.quota.max_inflight:
                        # Capped: frozen out of this round, deficit kept.
                        continue
                    eligible = True
                    state.deficit += state.quota.weight
                    budget = state.quota.max_inflight - state.inflight
                    while (state.pending and state.deficit >= 1.0
                           and budget > 0):
                        scheduled = state.pending.popleft()
                        state.deficit -= 1.0
                        state.inflight += 1
                        budget -= 1
                        batch.append(scheduled)
                    if not state.pending:
                        state.deficit = 0.0
                if batch:
                    return batch
                if not eligible:
                    self._work.wait()
                # else: every eligible tenant is still accumulating
                # deficit (< 1 unit); loop again immediately — with unit
                # costs and weights >= some positive value this converges
                # in at most ceil(1/min_weight) rounds.

    def _dispatch(self, scheduled: ScheduledQuery) -> None:
        tenant = scheduled.tenant
        self.metrics.record_dispatched(tenant)
        try:
            query = scheduled.query
            plan = query() if callable(query) else query
            handle = self.service.submit(
                plan,
                name=scheduled.name,
                deadline=scheduled.deadline,
                target_samples=scheduled.target_samples,
                sinks=scheduled.sinks,
                block=True,
            )
        except Exception as exc:
            with self._lock:
                scheduled.pre_dispatch_error = exc
                scheduled.finished_at = self._clock()
                state = self._tenants[tenant]
                state.inflight = max(0, state.inflight - 1)
                self._work.notify()
            self.metrics.record_completed(tenant, "failed")
            self._finish_stream(scheduled)
            return
        scheduled._dispatched = True
        scheduled.handle = handle
        self._emit("tenant_admitted", tenant, scheduled.name, {
            "query_id": scheduled.query_id,
            "inflight": self._tenants[tenant].inflight,
        })
        handle.add_done_callback(
            lambda _handle: self._on_done(scheduled)
        )

    def _on_done(self, scheduled: ScheduledQuery) -> None:
        handle = scheduled.handle
        now = self._clock()
        scheduled.finished_at = now
        ticks = 0
        if handle.error is None and handle.done:
            report = handle.result(timeout=0)
            if report.profile is not None:
                ticks = report.profile.ticks
        with self._lock:
            state = self._tenants[scheduled.tenant]
            state.inflight = max(0, state.inflight - 1)
            self._work.notify()
        self.metrics.record_completed(
            scheduled.tenant, handle.state.value,
            ticks=ticks, latency_seconds=now - scheduled.created_at,
        )
        self._finish_stream(scheduled)

    def _finish_stream(self, scheduled: ScheduledQuery) -> None:
        stream = scheduled.stream
        if stream is None:
            return
        stream.publish(terminal_frame(scheduled))
        stream.close()

    # -- observability ------------------------------------------------------------

    def _emit(self, kind: str, tenant: str, name: str,
              payload_extra: Dict[str, object]) -> None:
        if not self.sinks:
            return
        payload: Dict[str, object] = {"tenant": tenant}
        payload.update(payload_extra)
        seq = next(self._seq)
        emit_to_all(self.sinks, ProgressEvent(
            seq=seq,
            kind=kind,
            plan=name,
            elapsed_seconds=self._clock() - self._started_at,
            curr=0.0,
            total=None,
            actual=None,
            lower_bound=0.0,
            upper_bound=0.0,
            estimates={},
            payload=payload,
        ))

    # -- lifecycle ---------------------------------------------------------------

    def queries(self) -> List[ScheduledQuery]:
        with self._lock:
            return list(self._queries.values())

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted query is terminal."""
        deadline = None if timeout is None else self._clock() + timeout
        for scheduled in self.queries():
            while not scheduled.done:
                if deadline is not None and self._clock() >= deadline:
                    return False
                if scheduled.handle is not None:
                    remaining = (
                        None if deadline is None
                        else max(0.0, deadline - self._clock())
                    )
                    scheduled.handle.wait(remaining)
                else:
                    time.sleep(0.01)
        return True

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped: List[ScheduledQuery] = []
            for state in self._tenants.values():
                while state.pending:
                    scheduled = state.pending.popleft()
                    scheduled._cancelled_queued = True
                    scheduled.pre_dispatch_error = QueryCancelled(
                        "server shut down before query %r was dispatched"
                        % (scheduled.name,)
                    )
                    scheduled.finished_at = self._clock()
                    dropped.append(scheduled)
            self._work.notify_all()
        for scheduled in dropped:
            self.metrics.record_cancelled_queued(scheduled.tenant)
            self._finish_stream(scheduled)
        self._dispatcher.join(timeout=10.0)
        for sink in self.sinks:
            sink.close()
