"""Server metrics: queue depths, per-tenant throughput, latency quantiles.

One registry per server, shared by the HTTP tier, the fair scheduler and
the CLI.  Everything is guarded by a single lock — counters are touched a
handful of times per query, never per tick, so contention is negligible —
and :meth:`ServerMetrics.snapshot` renders the whole registry as the JSON
document ``GET /metrics`` returns.  The ``repro serve`` CLI prints *from
this snapshot*, so the human-readable summary and the endpoint cannot
drift.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, List, Optional


def percentile(values: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile; None on an empty population.

    The nearest-rank definition: the smallest value with at least
    ``fraction`` of the population at or below it, i.e. the element at
    1-based rank ``ceil(fraction * n)``.  (``int(fraction * n)`` is the
    classic off-by-one: p50 of ``[a, b]`` would return the max.)
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    index = min(len(ordered) - 1, max(0, rank - 1))
    return ordered[index]


class LatencyReservoir:
    """A bounded sample of query latencies (seconds, admission→terminal)."""

    def __init__(self, capacity: int = 10000) -> None:
        self.capacity = capacity
        self.count = 0
        self._values: List[float] = []

    def record(self, seconds: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(seconds)
        else:
            # Deterministic reservoir: overwrite round-robin.  Good enough
            # for p50/p99 over a load run without unbounded memory.
            self._values[self.count % self.capacity] = seconds

    def quantiles(self) -> Dict[str, Optional[float]]:
        values = list(self._values)
        return {
            "count": self.count,
            "p50_seconds": percentile(values, 0.50),
            "p99_seconds": percentile(values, 0.99),
        }


class TenantMetrics:
    """Counters for one tenant (created on first touch)."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self.first_seen = clock()
        self.submitted = 0
        self.throttled = 0
        self.completed: Dict[str, int] = {}
        self.ticks = 0
        self.inflight = 0
        self.pending = 0

    def to_dict(self, now: float) -> Dict[str, object]:
        elapsed = max(now - self.first_seen, 1e-9)
        return {
            "submitted": self.submitted,
            "throttled": self.throttled,
            "completed": dict(self.completed),
            "ticks": self.ticks,
            "ticks_per_second": self.ticks / elapsed,
            "inflight": self.inflight,
            "pending": self.pending,
        }


class ServerMetrics:
    """The server-wide registry behind ``GET /metrics``."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.submitted = 0
        self.throttled = 0
        self.cancelled_queued = 0
        self.completed: Dict[str, int] = {}
        self.ws_opened = 0
        self.ws_closed = 0
        self.http_requests = 0
        self.latency = LatencyReservoir()
        self.tenants: Dict[str, TenantMetrics] = {}

    def _tenant(self, tenant: str) -> TenantMetrics:
        state = self.tenants.get(tenant)
        if state is None:
            state = self.tenants[tenant] = TenantMetrics(self._clock)
        return state

    # -- recording ---------------------------------------------------------------

    def record_request(self) -> None:
        with self._lock:
            self.http_requests += 1

    def record_submitted(self, tenant: str) -> None:
        with self._lock:
            self.submitted += 1
            state = self._tenant(tenant)
            state.submitted += 1
            state.pending += 1

    def record_throttled(self, tenant: str) -> None:
        with self._lock:
            self.throttled += 1
            self._tenant(tenant).throttled += 1

    def record_dispatched(self, tenant: str) -> None:
        with self._lock:
            state = self._tenant(tenant)
            state.pending = max(0, state.pending - 1)
            state.inflight += 1

    def record_cancelled_queued(self, tenant: str) -> None:
        """A query cancelled before it was ever dispatched."""
        with self._lock:
            self.cancelled_queued += 1
            state = self._tenant(tenant)
            state.pending = max(0, state.pending - 1)
            state.completed["cancelled"] = (
                state.completed.get("cancelled", 0) + 1
            )
            self.completed["cancelled"] = (
                self.completed.get("cancelled", 0) + 1
            )

    def record_completed(self, tenant: str, state_name: str, *,
                         ticks: int = 0,
                         latency_seconds: Optional[float] = None) -> None:
        with self._lock:
            self.completed[state_name] = (
                self.completed.get(state_name, 0) + 1
            )
            state = self._tenant(tenant)
            state.inflight = max(0, state.inflight - 1)
            state.completed[state_name] = (
                state.completed.get(state_name, 0) + 1
            )
            state.ticks += ticks
            if latency_seconds is not None:
                self.latency.record(latency_seconds)

    def record_ws_open(self) -> None:
        with self._lock:
            self.ws_opened += 1

    def record_ws_close(self) -> None:
        with self._lock:
            self.ws_closed += 1

    # -- rendering ---------------------------------------------------------------

    def snapshot(
        self, queue_depths: Optional[Dict[str, int]] = None,
    ) -> Dict[str, object]:
        now = self._clock()
        with self._lock:
            elapsed = max(now - self.started_at, 1e-9)
            total_ticks = sum(t.ticks for t in self.tenants.values())
            return {
                "uptime_seconds": now - self.started_at,
                "http_requests": self.http_requests,
                "ws_connections": {
                    "open": self.ws_opened - self.ws_closed,
                    "opened": self.ws_opened,
                    "closed": self.ws_closed,
                },
                "queries": {
                    "submitted": self.submitted,
                    "throttled": self.throttled,
                    "completed": dict(self.completed),
                },
                "ticks": total_ticks,
                "ticks_per_second": total_ticks / elapsed,
                "latency": self.latency.quantiles(),
                "queue_depths": dict(queue_depths or {}),
                "tenants": {
                    name: tenant.to_dict(now)
                    for name, tenant in sorted(self.tenants.items())
                },
            }
