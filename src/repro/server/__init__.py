"""``repro.server`` — the async HTTP/WebSocket front door.

An asyncio network tier over the :mod:`repro.api` facade: HTTP admission
(``POST /queries``), status and cooperative cancel, a WebSocket per query
streaming live :class:`~repro.core.observe.ProgressEvent` samples (truth
back-filled at completion, per the single-pass protocol), per-tenant
admission quotas with deficit-round-robin fair dispatch, and a
``/metrics`` endpoint.  Pure standard library; ``uvloop``/``websockets``
are optional accelerators picked up via :mod:`repro.server.compat`.

The server consumes the facade surface only — ``ExecutionOptions``,
``QueryService``, progress sinks — never engine internals, which is what
keeps streamed traces bit-identical to solo in-process runs on either
execution backend.
"""

from repro.server.app import ReproServer
from repro.server.bridge import EventStream, StreamSink
from repro.server.client import ServerClient, ServerClientError
from repro.server.config import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.scheduler import (
    FairScheduler,
    ScheduledQuery,
    TenantQuota,
    TenantThrottled,
)

__all__ = [
    "EventStream",
    "FairScheduler",
    "ReproServer",
    "ScheduledQuery",
    "ServerClient",
    "ServerClientError",
    "ServerConfig",
    "ServerMetrics",
    "StreamSink",
    "TenantQuota",
    "TenantThrottled",
]
