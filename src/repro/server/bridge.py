"""The thread→event-loop bridge for live progress streams.

Queries execute on worker threads (or in worker processes whose shepherd
threads relay events); WebSocket subscribers live on the asyncio event
loop.  :class:`EventStream` is the rendezvous: worker-side ``publish`` is
plain thread-safe Python, and each loop-side subscriber gets an
``asyncio.Queue`` fed via ``loop.call_soon_threadsafe`` — the only safe
way to wake a coroutine from a foreign thread.

Streams buffer everything they publish, so a subscriber that connects
mid-run (or after completion) replays the full frame sequence first and
then follows live — every subscriber sees the same frames in the same
order, which is what lets the load benchmark assert streamed traces
bit-identical to solo runs.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional

from repro.core.observe import ProgressEvent, ProgressEventSink

#: queue sentinel marking the end of a stream
_EOS = None


class EventStream:
    """One query's ordered frame sequence, fan-out to asyncio subscribers."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._lock = threading.Lock()
        self._frames: List[Dict[str, object]] = []
        self._subscribers: List[asyncio.Queue] = []
        self._closed = False

    # -- worker side (any thread) -------------------------------------------------

    def publish(self, frame: Dict[str, object]) -> None:
        """Append a frame and wake every subscriber.  No-op once closed."""
        with self._lock:
            if self._closed:
                return
            self._frames.append(frame)
            targets = list(self._subscribers)
        self._wake(targets, frame)

    def close(self) -> None:
        """Seal the stream; subscribers drain buffered frames then finish."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            targets = list(self._subscribers)
        self._wake(targets, _EOS)

    def _wake(self, targets: List[asyncio.Queue], item) -> None:
        for queue in targets:
            try:
                self._loop.call_soon_threadsafe(queue.put_nowait, item)
            except RuntimeError:
                # Loop already closed (server shutting down): subscribers
                # are gone, frames stay buffered for post-hoc inspection.
                pass

    # -- loop side ------------------------------------------------------------------

    def subscribe(self) -> "asyncio.Queue":
        """Register a subscriber (call on the loop thread).

        The returned queue first replays every frame published so far, then
        receives live frames, then ``None`` when the stream closes.
        """
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            for frame in self._frames:
                queue.put_nowait(frame)
            if self._closed:
                queue.put_nowait(_EOS)
            else:
                self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        with self._lock:
            try:
                self._subscribers.remove(queue)
            except ValueError:
                pass

    # -- inspection -------------------------------------------------------------------

    def frames(self) -> List[Dict[str, object]]:
        """A copy of everything published so far (tests, post-hoc checks)."""
        with self._lock:
            return list(self._frames)

    @property
    def closed(self) -> bool:
        return self._closed


class StreamSink(ProgressEventSink):
    """Per-query sink: forwards cadence samples into an :class:`EventStream`.

    Attached through ``QueryService.submit(..., sinks=(StreamSink(s),))``,
    so it receives exactly the sample stream both backends publish.  Frames
    are ``ProgressEvent.to_dict()`` plus an ``"event": "sample"`` marker —
    already JSON-ready, and floats survive the JSON round trip exactly.
    """

    def __init__(self, stream: EventStream) -> None:
        self.stream = stream

    def emit(self, event: ProgressEvent) -> None:
        if event.kind != "sample":
            return
        frame: Dict[str, object] = {"event": "sample"}
        frame.update(event.to_dict())
        self.stream.publish(frame)


def sample_to_dict(sample) -> Dict[str, object]:
    """A sealed :class:`~repro.core.metrics.TraceSample` as a JSON object."""
    return {
        "curr": sample.curr,
        "actual": sample.actual,
        "estimates": dict(sample.estimates),
        "lower_bound": sample.lower_bound,
        "upper_bound": sample.upper_bound,
    }


def terminal_frame(scheduled) -> Dict[str, object]:
    """The stream's final frame: state, error, profile, sealed trace.

    The trace rides along so a client can verify bit-identity against a
    solo in-process run without a second HTTP round trip; ``actual`` labels
    are the back-filled truth of the single-pass protocol.
    """
    handle = scheduled.handle
    frame: Dict[str, object] = {
        "event": "end",
        "id": scheduled.query_id,
        "query": scheduled.name,
        "tenant": scheduled.tenant,
        "state": scheduled.state_name(),
    }
    error: Optional[BaseException] = (
        handle.error if handle is not None else scheduled.pre_dispatch_error
    )
    if error is not None:
        frame["error"] = str(error)
    report = None
    if handle is not None and handle.error is None and handle.done:
        report = handle.result(timeout=0)
    if report is not None:
        frame["total"] = report.total
        frame["trace"] = [
            sample_to_dict(sample) for sample in report.trace.samples
        ]
        if report.profile is not None:
            frame["profile"] = report.profile.to_dict()
    return frame
