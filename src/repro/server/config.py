"""Server configuration: one object, consumed whole.

:class:`ServerConfig` carries the bind address, the per-tenant quotas and —
crucially — a single :class:`~repro.options.ExecutionOptions` for every
execution knob, so the server resolves engine/protocol/backend/pool sizing
through exactly the same path as ``repro.connect``.  No ``REPRO_*``
environment variable is read here; that is :meth:`ExecutionOptions.resolve`'s
job, at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.options import ExecutionOptions
from repro.server.scheduler import TenantQuota


@dataclass
class ServerConfig:
    """Everything the network tier needs to come up."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests); the bound port is readable off
    #: the running server
    port: int = 0
    options: ExecutionOptions = field(default_factory=ExecutionOptions)
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: per-tenant quota overrides (tenant name -> quota)
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: observability sinks receiving tenant_admitted / tenant_throttled
    sinks: Sequence = ()
    #: default per-query deadline in seconds (None: unlimited)
    default_deadline: Optional[float] = None
    #: cap on an HTTP request body (a POSTed SQL text) in bytes
    max_body_bytes: int = 1 << 20

    def resolved(self) -> "ServerConfig":
        """A copy whose execution options are fully resolved."""
        return ServerConfig(
            host=self.host,
            port=self.port,
            options=self.options.resolve(),
            default_quota=self.default_quota,
            quotas=dict(self.quotas),
            sinks=tuple(self.sinks),
            default_deadline=self.default_deadline,
            max_body_bytes=self.max_body_bytes,
        )
