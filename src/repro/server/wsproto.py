"""Minimal RFC 6455 WebSocket framing over the standard library.

The network tier must run on a bare Python install (CI's stdlib-only matrix
leg), so the server cannot assume ``websockets`` is importable.  This module
is the fallback — and the reference implementation the optional dependency
is tested against: the handshake accept key, frame encode/decode for both
directions (servers send unmasked, clients mask), and the control opcodes
the event stream needs (close, ping/pong).

Framing is transport-agnostic: :func:`encode_frame` returns bytes, and
:func:`read_frame` pulls from any ``read_exact(n) -> bytes`` callable, so
the same code serves a blocking socket client and the asyncio server (which
wraps ``StreamReader.readexactly``).
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Callable, Tuple

#: the protocol's fixed handshake GUID (RFC 6455 §1.3)
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class WebSocketError(Exception):
    """A malformed frame or a handshake violation."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key.strip() + GUID).encode("ascii"))
    return base64.b64encode(digest.digest()).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, *,
                 mask: bool = False, fin: bool = True) -> bytes:
    """One complete frame.  ``mask=True`` for client→server traffic."""
    header = bytearray()
    header.append((0x80 if fin else 0) | (opcode & 0x0F))
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


def encode_text(text: str, *, mask: bool = False) -> bytes:
    return encode_frame(text.encode("utf-8"), OP_TEXT, mask=mask)


def encode_close(code: int = 1000, reason: str = "", *,
                 mask: bool = False) -> bytes:
    payload = struct.pack(">H", code) + reason.encode("utf-8")
    return encode_frame(payload, OP_CLOSE, mask=mask)


def read_frame(read_exact: Callable[[int], bytes]) -> Tuple[int, bytes, bool]:
    """Parse one frame: ``(opcode, unmasked payload, fin)``.

    ``read_exact(n)`` must return exactly ``n`` bytes or raise (EOF).
    Fragmented messages surface as ``fin=False`` continuation frames; the
    event stream only ever sends whole frames, so callers may treat a
    fragment as a protocol error.
    """
    first, second = read_exact(2)
    fin = bool(first & 0x80)
    if first & 0x70:
        raise WebSocketError("reserved frame bits set")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", read_exact(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", read_exact(8))
    key = read_exact(4) if masked else None
    payload = read_exact(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload, fin


async def read_frame_async(read_exactly) -> Tuple[int, bytes, bool]:
    """:func:`read_frame` over an awaitable ``read_exactly(n)`` (asyncio)."""
    first_two = await read_exactly(2)
    first, second = first_two
    fin = bool(first & 0x80)
    if first & 0x70:
        raise WebSocketError("reserved frame bits set")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await read_exactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await read_exactly(8))
    key = await read_exactly(4) if masked else None
    payload = await read_exactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload, fin


def reader_from_socket(sock) -> Callable[[int], bytes]:
    """``read_exact`` over a blocking socket (the test/benchmark client)."""

    def read_exact(count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise WebSocketError("connection closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    return read_exact
