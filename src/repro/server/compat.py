"""Optional-dependency shims: ``uvloop`` and ``websockets``.

The server is stdlib-complete — asyncio's default loop and the hand-rolled
RFC 6455 framing in :mod:`repro.server.wsproto` carry the whole protocol —
but when the optional accelerators are installed they are picked up
automatically.  CI runs the server suite both ways; nothing in this module
may raise on a bare install.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised only on the optional-deps CI leg
    import uvloop  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the stdlib-only default
    uvloop = None

try:  # pragma: no cover - exercised only on the optional-deps CI leg
    import websockets  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the stdlib-only default
    websockets = None

HAVE_UVLOOP = uvloop is not None
HAVE_WEBSOCKETS = websockets is not None


def event_loop_flavor() -> str:
    """Which loop implementation a fresh server loop will use."""
    return "uvloop" if HAVE_UVLOOP else "asyncio"


def new_event_loop():
    """An event loop, accelerated when uvloop is importable."""
    if HAVE_UVLOOP:  # pragma: no cover - optional-deps leg only
        return uvloop.new_event_loop()
    import asyncio

    return asyncio.new_event_loop()


def websockets_client(url: str) -> Optional[object]:
    """A ``websockets`` client connection when the package is installed.

    Returns None on a bare install; callers fall back to the stdlib
    client in :mod:`repro.server.wsproto`.  (Used by the optional-deps CI
    leg to prove the server speaks to a real third-party client.)
    """
    if not HAVE_WEBSOCKETS:
        return None
    return websockets.sync.client.connect(url)  # pragma: no cover
