"""The asyncio HTTP + WebSocket front door over the query service.

One :class:`ReproServer` owns a :class:`~repro.service.service.QueryService`
(thread or process backend — the server never touches engine internals, it
consumes the same facade surface as ``repro.connect``), a
:class:`~repro.server.scheduler.FairScheduler` in front of it, and a plain
``asyncio.start_server`` socket loop speaking just enough HTTP/1.1:

========  ==========================  =======================================
method    path                        behaviour
========  ==========================  =======================================
POST      ``/queries``                admit SQL for a tenant -> 201 + id
                                      (429 + Retry-After when throttled)
GET       ``/queries``                every known query's status snapshot
GET       ``/queries/{id}``           one query's status + latest progress
DELETE    ``/queries/{id}``           cooperative cancel
GET       ``/queries/{id}/events``    WebSocket: queued / sample* / end
GET       ``/metrics``                queue depths, per-tenant ticks/s,
                                      p50/p99 latency
GET       ``/healthz``                liveness + loop flavor
========  ==========================  =======================================

Connections are one-request (``Connection: close``) except the WebSocket
upgrade, which hands the socket to the event stream: frames are the
query's buffered-and-live :class:`~repro.server.bridge.EventStream`, so a
client connecting at any point sees the complete ordered sequence —
``queued``, every cadence ``sample`` (estimates live, ``actual`` null
mid-run), then ``end`` carrying the sealed, truth-labeled trace.

Everything runs on the standard library; ``uvloop``/``websockets`` are
picked up through :mod:`repro.server.compat` when installed.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Dict, Optional, Tuple

from repro.server import compat, wsproto
from repro.server.bridge import EventStream, StreamSink
from repro.server.config import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.scheduler import FairScheduler, TenantThrottled
from repro.service.service import QueryService

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}


class ReproServer:
    """The network tier: HTTP admission, WebSocket streams, fair dispatch."""

    def __init__(
        self,
        catalog=None,
        *,
        config: Optional[ServerConfig] = None,
        service: Optional[QueryService] = None,
    ) -> None:
        self.config = (config or ServerConfig()).resolved()
        self.service = service if service is not None else QueryService(
            catalog,
            options=self.config.options,
            default_deadline=self.config.default_deadline,
        )
        self._owns_service = service is None
        self.metrics = ServerMetrics()
        self.scheduler = FairScheduler(
            self.service,
            metrics=self.metrics,
            default_quota=self.config.default_quota,
            quotas=self.config.quotas,
            sinks=self.config.sinks,
        )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle (on the loop) ---------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is set on return."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain the scheduler, shut the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.shutdown()
        if self._owns_service:
            self.service.shutdown()

    # -- lifecycle (background thread, for the CLI / tests / benchmarks) -----------

    def start_background(self, timeout: float = 30.0) -> "ReproServer":
        """Run the event loop on a daemon thread; returns once bound."""
        ready = threading.Event()

        def main() -> None:
            loop = compat.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:
                self._startup_error = exc
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True,
                    ))
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-server-loop", daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("server failed to start within %ss" % timeout)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop_background(self, timeout: float = 30.0) -> None:
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(), loop)
        try:
            future.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)
            self._thread = None

    @contextlib.contextmanager
    def running(self, timeout: float = 30.0):
        """``with server.running():`` — background start/stop bracketing."""
        self.start_background(timeout)
        try:
            yield self
        finally:
            self.stop_background(timeout)

    # -- in-process admission ------------------------------------------------------

    def submit_local(self, tenant: str, query, *, name: Optional[str] = None,
                     deadline: Optional[float] = None,
                     target_samples: Optional[int] = None,
                     stream: bool = True):
        """Admit a query from in-process code, streams and all.

        The HTTP body only carries SQL text; workloads defined as plan
        factories (the CLI's TPC-H mix, benchmarks) enter here instead and
        get the same event stream a POSTed query would, so their WebSocket
        endpoint works identically.
        """
        if self._loop is None:
            raise RuntimeError("server is not running")
        event_stream = EventStream(self._loop) if stream else None
        return self.scheduler.submit(
            tenant, query, name=name, deadline=deadline,
            target_samples=target_samples, stream=event_stream,
            sinks=(StreamSink(event_stream),) if event_stream else (),
        )

    # -- connection handling -------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        keep_open = False
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            self.metrics.record_request()
            keep_open = await self._route(
                method, path, headers, body, reader, writer,
            )
        except asyncio.IncompleteReadError:
            pass
        except Exception as exc:
            with contextlib.suppress(Exception):
                self._respond(writer, 500, {"error": str(exc)})
        finally:
            if not keep_open:
                with contextlib.suppress(Exception):
                    writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line.strip():
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise ValueError("malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            raise ValueError("request body exceeds %d bytes"
                             % self.config.max_body_bytes)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes,
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request; True when the socket was handed to a WS."""
        if path == "/healthz" and method == "GET":
            self._respond(writer, 200, {
                "ok": True, "loop": compat.event_loop_flavor(),
            })
            return False
        if path == "/metrics" and method == "GET":
            self._respond(writer, 200, self.metrics.snapshot(
                queue_depths=self.scheduler.queue_depths(),
            ))
            return False
        if path == "/queries" and method == "POST":
            self._post_query(writer, body)
            return False
        if path == "/queries" and method == "GET":
            self._respond(writer, 200, {"queries": [
                scheduled.snapshot()
                for scheduled in self.scheduler.queries()
            ]})
            return False
        if path.startswith("/queries/"):
            rest = path[len("/queries/"):]
            if rest.endswith("/events") and method == "GET":
                query_id = rest[: -len("/events")]
                return await self._websocket(
                    query_id, headers, reader, writer,
                )
            if "/" not in rest:
                if method == "GET":
                    self._get_query(writer, rest)
                    return False
                if method == "DELETE":
                    self._delete_query(writer, rest)
                    return False
        self._respond(writer, 404 if method in ("GET", "POST", "DELETE")
                      else 405, {"error": "no route for %s %s"
                                 % (method, path)})
        return False

    # -- HTTP handlers --------------------------------------------------------------

    def _post_query(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            self._respond(writer, 400, {"error": "body must be JSON"})
            return
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self._respond(writer, 400, {
                "error": "a non-empty 'sql' string is required",
            })
            return
        tenant = str(payload.get("tenant") or "default")
        stream = EventStream(asyncio.get_running_loop())
        try:
            scheduled = self.scheduler.submit(
                tenant,
                sql,
                name=payload.get("name"),
                deadline=payload.get("deadline"),
                target_samples=payload.get("target_samples"),
                stream=stream,
                sinks=(StreamSink(stream),),
            )
        except TenantThrottled as exc:
            self._respond(writer, 429, {
                "error": str(exc), "tenant": exc.tenant,
                "pending": exc.pending, "max_pending": exc.max_pending,
            }, extra_headers={"Retry-After": "1"})
            return
        except Exception as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        record = scheduled.snapshot()
        record["events_path"] = "/queries/%s/events" % scheduled.query_id
        self._respond(writer, 201, record)

    def _get_query(self, writer: asyncio.StreamWriter, query_id: str) -> None:
        scheduled = self.scheduler.get(query_id)
        if scheduled is None:
            self._respond(writer, 404, {"error": "unknown query %r"
                                        % query_id})
            return
        self._respond(writer, 200, scheduled.snapshot())

    def _delete_query(self, writer: asyncio.StreamWriter,
                      query_id: str) -> None:
        scheduled = self.scheduler.get(query_id)
        if scheduled is None:
            self._respond(writer, 404, {"error": "unknown query %r"
                                        % query_id})
            return
        cancelled = self.scheduler.cancel(query_id)
        self._respond(writer, 200, {
            "id": query_id, "cancelled": cancelled,
            "state": scheduled.state_name(),
        })

    # -- the WebSocket leg -----------------------------------------------------------

    async def _websocket(self, query_id: str, headers: Dict[str, str],
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        scheduled = self.scheduler.get(query_id)
        if scheduled is None or scheduled.stream is None:
            self._respond(writer, 404, {"error": "unknown query %r"
                                        % query_id})
            return False
        key = headers.get("sec-websocket-key")
        if (headers.get("upgrade", "").lower() != "websocket"
                or key is None):
            self._respond(writer, 400, {
                "error": "this endpoint requires a WebSocket upgrade",
            })
            return False
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            "Sec-WebSocket-Accept: %s\r\n\r\n" % wsproto.accept_key(key)
        ).encode("latin-1"))
        await writer.drain()
        queue = scheduled.stream.subscribe()
        self.metrics.record_ws_open()
        sender = asyncio.ensure_future(self._ws_send(writer, queue))
        receiver = asyncio.ensure_future(self._ws_recv(reader, writer))
        try:
            done, pending = await asyncio.wait(
                {sender, receiver}, return_when=asyncio.FIRST_COMPLETED,
            )
            for task in pending:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task
        finally:
            scheduled.stream.unsubscribe(queue)
            self.metrics.record_ws_close()
            with contextlib.suppress(Exception):
                writer.close()
        return True

    async def _ws_send(self, writer: asyncio.StreamWriter,
                       queue: "asyncio.Queue") -> None:
        while True:
            frame = await queue.get()
            if frame is None:
                writer.write(wsproto.encode_close(1000, "stream complete"))
                await writer.drain()
                return
            writer.write(wsproto.encode_text(
                json.dumps(frame, sort_keys=True),
            ))
            await writer.drain()

    async def _ws_recv(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        """Honour client close/ping; returns when the peer goes away."""
        while True:
            try:
                opcode, payload, _fin = await wsproto.read_frame_async(
                    reader.readexactly,
                )
            except (asyncio.IncompleteReadError, wsproto.WebSocketError,
                    ConnectionError):
                return
            if opcode == wsproto.OP_CLOSE:
                with contextlib.suppress(Exception):
                    writer.write(wsproto.encode_close())
                    await writer.drain()
                return
            if opcode == wsproto.OP_PING:
                writer.write(wsproto.encode_frame(
                    payload, wsproto.OP_PONG,
                ))
                await writer.drain()

    # -- response plumbing -----------------------------------------------------------

    def _respond(self, writer: asyncio.StreamWriter, status: int,
                 payload: Dict[str, object],
                 extra_headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            "HTTP/1.1 %d %s" % (status, _REASONS.get(status, "Unknown")),
            "Content-Type: application/json",
            "Content-Length: %d" % len(body),
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append("%s: %s" % (name, value))
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
