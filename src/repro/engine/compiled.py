"""Fused pipeline compiler: the batched execution engine.

The interpreted engine walks the Volcano tree one row at a time: every row
pays an abstract ``get_next`` per plan level plus two listener/observer
loops inside :meth:`ExecutionMonitor.record`.  This module compiles a plan —
*after* ``open`` has bound its expressions — into nested Python generators:
each maximal non-blocking chain (scan→σ→π, the probe side of ⋈hash, the
outer side of ⋈INL) becomes one specialized generator whose bound
expressions, source lists and accounting cells live in closure locals.

Accounting is batched but **tick-exact**.  Every produced row increments a
per-operator pending cell and decrements a shared budget equal to
``monitor.ticks_until_next_observer()``; when the budget reaches zero the
pending counts are applied via ``record_batch`` — the cumulative total then
lands *exactly* on the next cadence multiple, so every observer fires at
precisely the tick number the interpreted engine fires it at, and sees the
same per-operator counts and live operator state (``rows_produced`` is
updated inline, and blocking operators mutate their ordinary state fields:
``Sort._rows``, ``HashAggregate._groups``, …).  A flush always precedes a
``finish`` event, so pipeline-boundary forced observer rounds are identical
too.  Event *order* within a batch is the only thing not preserved for
legacy per-tick listeners; the batch-listener channel (what the bounds
tracker and the runner use) is exact because its per-event work is additive
or idempotent.

Operators without a hand-fused translation (merge join, stream aggregate,
index seeks, random-order scans, user-defined operators) run through a
generic adapter that drives the operator's own ``_next`` while its children
are temporarily shimmed to pull from their compiled generators — exact
semantics at interpreter speed for the node itself, fused speed below it.

Entry point: :func:`run_fused`; callers normally go through
``repro.engine.executor.execute(plan, engine="fused")``.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, List, Optional

from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext, Operator
from repro.engine.operators.aggregate import (
    HashAggregate,
    StreamAggregate,
    _Accumulator,
)
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.misc import Distinct, Limit, UnionAll
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.project import Project
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.sort import Sort, _null_first_key
from repro.errors import ExecutionError
from repro.engine.operators.topn import TopN, _OrderedRow
from repro.storage.table import Row

#: budget value used when no cadence observers are attached — flushes then
#: happen only at finish events
_UNBOUNDED = 1 << 62


class _Accounting:
    """Pending per-operator tick counts plus the shared observer budget.

    ``budget[0]`` is the number of ticks that may still be produced before
    a cadence observer is due; generators decrement it inline and call
    :meth:`flush` when it reaches zero.  Flushing applies every pending
    count through ``record_batch`` — the batch that crosses the cadence
    multiple is by construction the one that lands exactly on it, so the
    observer fires at the interpreted engine's tick number with all counts
    applied.
    """

    __slots__ = ("monitor", "budget", "_cells")

    def __init__(self, monitor: ExecutionMonitor) -> None:
        self.monitor = monitor
        self.budget = [0]
        self._cells: List[tuple] = []

    def cell(self, op: Operator) -> List[int]:
        pending = [0]
        self._cells.append((op.operator_id, pending))
        return pending

    def reset_budget(self) -> None:
        headroom = self.monitor.ticks_until_next_observer()
        self.budget[0] = _UNBOUNDED if headroom is None else headroom

    def flush(self) -> None:
        record_batch = self.monitor.record_batch
        for op_id, pending in self._cells:
            n = pending[0]
            if n:
                pending[0] = 0
                record_batch(op_id, n)
        self.reset_budget()

    def finish(self, op: Operator) -> None:
        """End-of-stream on ``op``: flush, then emit its finish event.

        The flush must come first — a pipeline-boundary finish forces an
        observer round, which has to see every tick up to this instant.
        """
        self.flush()
        op.finished = True
        self.monitor.record_finish(op.operator_id)


class _Node:
    """One compiled plan node: a generator factory plus a rewinder.

    ``make()`` returns a fresh single-pass iterator over the node's output;
    it may be called again only after ``rewind()`` (⋈NL rescans).  ``gen``
    holds the current pass's iterator for shimmed adapter children.
    """

    __slots__ = ("op", "make", "rewind", "gen")

    def __init__(self, op: Operator, make: Callable[[], Iterator[Row]],
                 rewind: Callable[[], None]) -> None:
        self.op = op
        self.make = make
        self.rewind = rewind
        self.gen: Optional[Iterator[Row]] = None


class _Compiler:
    """Compiles an opened operator tree into :class:`_Node` generators."""

    def __init__(self, monitor: ExecutionMonitor) -> None:
        self.monitor = monitor
        self.acct = _Accounting(monitor)
        #: operators whose get_next/rewind were shadowed for the adapter
        self.shimmed: List[Operator] = []

    # -- rewinders ---------------------------------------------------------------

    def rewinder(self, op: Operator, child_rewinds) -> Callable[[], None]:
        """Mirror ``Operator.rewind``: pre-order events, post-order resets.

        Pending ticks are flushed before the rewind event goes out: in the
        interpreted engine the tick that *caused* the rescan (the ⋈NL outer
        row) is recorded before the inner subtree rewinds, so event-stream
        consumers must see the same accumulation at the rewind instant.
        """
        record_rewind = self.monitor.record_rewind
        flush = self.acct.flush

        def rewind() -> None:
            flush()
            op.finished = False
            record_rewind(op.operator_id)
            for child_rewind in child_rewinds:
                child_rewind()
            op._rewind()

        return rewind

    # -- dispatch -----------------------------------------------------------------

    def compile(self, op: Operator) -> _Node:
        kind = type(op)
        if kind is TableScan or kind is RowSource:
            return self._compile_scan(op)
        if kind is Filter:
            return self._compile_filter(op)
        if kind is Project:
            return self._compile_project(op)
        if kind is HashJoin:
            return self._compile_hash_join(op)
        if kind is IndexNestedLoopsJoin:
            return self._compile_inl(op)
        if kind is NestedLoopsJoin:
            return self._compile_nl(op)
        if kind is MergeJoin:
            return self._compile_merge_join(op)
        if kind is HashAggregate:
            return self._compile_hash_aggregate(op)
        if kind is StreamAggregate:
            return self._compile_stream_aggregate(op)
        if kind is Sort:
            return self._compile_sort(op)
        if kind is TopN:
            return self._compile_topn(op)
        if kind is Limit:
            return self._compile_limit(op)
        if kind is Distinct:
            return self._compile_distinct(op)
        if kind is UnionAll:
            return self._compile_union(op)
        return self._compile_adapter(op)

    # -- leaf chains --------------------------------------------------------------

    @staticmethod
    def _source_rows(op: Operator) -> List[Row]:
        """The backing row list of a plain scan leaf (storage order)."""
        if type(op) is TableScan:
            return op.table._rows
        return op.rows  # RowSource

    def _compile_scan(self, op: Operator) -> _Node:
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush
        source = self._source_rows

        def make() -> Iterator[Row]:
            for row in source(op):
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, ()))

    def _compile_filter(self, op: Filter) -> _Node:
        child = op.child
        if type(child) is TableScan or type(child) is RowSource:
            return self._compile_filter_scan(op, child)
        child_node = self.compile(child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            predicate = op._bound
            for row in child_node.make():
                if predicate(row) is True:
                    op.rows_produced += 1
                    cell[0] += 1
                    budget[0] -= 1
                    if budget[0] <= 0:
                        flush()
                    yield row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    def _compile_filter_scan(self, op: Filter, scan: Operator) -> _Node:
        """σ fused directly over a scan leaf: one generator, zero hops."""
        acct = self.acct
        scan_cell = acct.cell(scan)
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush
        source = self._source_rows

        def make() -> Iterator[Row]:
            predicate = op._bound
            for row in source(scan):
                scan.rows_produced += 1
                scan_cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                if predicate(row) is True:
                    op.rows_produced += 1
                    cell[0] += 1
                    budget[0] -= 1
                    if budget[0] <= 0:
                        flush()
                    yield row
            acct.finish(scan)
            acct.finish(op)

        scan_rewind = self.rewinder(scan, ())
        return _Node(op, make, self.rewinder(op, (scan_rewind,)))

    def _compile_project(self, op: Project) -> _Node:
        child = op.child
        if type(child) is Filter and (
            type(child.child) is TableScan or type(child.child) is RowSource
        ):
            return self._compile_project_filter_scan(op, child, child.child)
        if type(child) is TableScan or type(child) is RowSource:
            return self._compile_project_scan(op, child)
        child_node = self.compile(child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            project = op._project
            for row in child_node.make():
                out = project(row)
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield out
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    def _compile_project_scan(self, op: Project, scan: Operator) -> _Node:
        acct = self.acct
        scan_cell = acct.cell(scan)
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush
        source = self._source_rows

        def make() -> Iterator[Row]:
            project = op._project
            for row in source(scan):
                scan.rows_produced += 1
                scan_cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                out = project(row)
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield out
            acct.finish(scan)
            acct.finish(op)

        scan_rewind = self.rewinder(scan, ())
        return _Node(op, make, self.rewinder(op, (scan_rewind,)))

    def _compile_project_filter_scan(
        self, op: Project, filt: Filter, scan: Operator
    ) -> _Node:
        """The full scan→σ→π pipeline as a single generator."""
        acct = self.acct
        scan_cell = acct.cell(scan)
        filter_cell = acct.cell(filt)
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush
        source = self._source_rows

        def make() -> Iterator[Row]:
            predicate = filt._bound
            project = op._project
            for row in source(scan):
                scan.rows_produced += 1
                scan_cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                if predicate(row) is not True:
                    continue
                filt.rows_produced += 1
                filter_cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                out = project(row)
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield out
            acct.finish(scan)
            acct.finish(filt)
            acct.finish(op)

        scan_rewind = self.rewinder(scan, ())
        filter_rewind = self.rewinder(filt, (scan_rewind,))
        return _Node(op, make, self.rewinder(op, (filter_rewind,)))

    # -- joins --------------------------------------------------------------------

    def _compile_hash_join(self, op: HashJoin) -> _Node:
        build_node = self.compile(op.left)
        probe_node = self.compile(op.right)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            if not op._built:
                # The build runs inside the first pull, exactly like the
                # interpreted engine (blocking wrt the probe pipeline).
                build_fn = op._build_fn
                table = op._table
                for row in build_node.make():
                    key = build_fn(row)
                    if key is None:
                        continue  # NULL keys never join
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
                op._built = True
            table = op._table
            probe_fn = op._probe_fn
            residual = op._residual_fn
            preserve = op.preserve_probe
            null_pad = op._null_pad
            get_bucket = table.get
            for probe_row in probe_node.make():
                key = probe_fn(probe_row)
                matches = None if key is None else get_bucket(key)
                emitted = 0
                if matches:
                    for build_row in matches:
                        joined = build_row + probe_row
                        if residual is None or residual(joined) is True:
                            emitted += 1
                            op.rows_produced += 1
                            cell[0] += 1
                            budget[0] -= 1
                            if budget[0] <= 0:
                                flush()
                            yield joined
                if preserve and emitted == 0:
                    op.rows_produced += 1
                    cell[0] += 1
                    budget[0] -= 1
                    if budget[0] <= 0:
                        flush()
                    yield null_pad + probe_row
            acct.finish(op)

        return _Node(
            op, make,
            self.rewinder(op, (build_node.rewind, probe_node.rewind)),
        )

    def _compile_inl(self, op: IndexNestedLoopsJoin) -> _Node:
        outer_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            key_fn = op._key_fn
            residual = op._residual_fn
            lookup = op.index.lookup
            for outer_row in outer_node.make():
                key = key_fn(outer_row)
                if key is None:
                    continue  # NULL keys never match
                for inner_row in lookup(key):
                    joined = outer_row + inner_row
                    if residual is None or residual(joined) is True:
                        op.rows_produced += 1
                        cell[0] += 1
                        budget[0] -= 1
                        if budget[0] <= 0:
                            flush()
                        yield joined
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (outer_node.rewind,)))

    def _compile_nl(self, op: NestedLoopsJoin) -> _Node:
        outer_node = self.compile(op.left)
        inner_node = self.compile(op.right)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            predicate = op._bound
            inner_rewind = inner_node.rewind
            inner_make = inner_node.make
            for outer_row in outer_node.make():
                inner_rewind()
                for inner_row in inner_make():
                    joined = outer_row + inner_row
                    if predicate is None or predicate(joined) is True:
                        op.rows_produced += 1
                        cell[0] += 1
                        budget[0] -= 1
                        if budget[0] <= 0:
                            flush()
                        yield joined
            acct.finish(op)

        return _Node(
            op, make,
            self.rewinder(op, (outer_node.rewind, inner_node.rewind)),
        )

    def _compile_merge_join(self, op: MergeJoin) -> _Node:
        """⋈merge transliterated over the compiled inputs.

        The generator replays ``MergeJoin._next``'s exact pull sequence —
        lookahead row on each side, NULL keys skipped, sortedness verified,
        duplicate right groups buffered — so every child tick and finish
        event lands on the interpreted instant.  When the left side runs
        dry first the right input is abandoned mid-stream without a finish
        event, exactly as the interpreter leaves it.
        """
        left_node = self.compile(op.left)
        right_node = self.compile(op.right)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            left_fn = op._left_fn
            right_fn = op._right_fn
            left_iter = left_node.make()
            right_iter = right_node.make()
            left_row = None
            right_row = None
            last_left_key = None
            last_right_key = None

            def advance_left():
                nonlocal left_row, last_left_key
                while True:
                    left_row = next(left_iter, None)
                    if left_row is None:
                        return None
                    key = left_fn(left_row)
                    if key is None:
                        continue  # NULLs never join
                    if last_left_key is not None and key < last_left_key:
                        raise ExecutionError(
                            "merge join: left input not sorted on key"
                        )
                    last_left_key = key
                    return key

            def advance_right():
                nonlocal right_row, last_right_key
                while True:
                    right_row = next(right_iter, None)
                    if right_row is None:
                        return None
                    key = right_fn(right_row)
                    if key is None:
                        continue
                    if last_right_key is not None and key < last_right_key:
                        raise ExecutionError(
                            "merge join: right input not sorted on key"
                        )
                    last_right_key = key
                    return key

            if advance_left() is None:
                acct.finish(op)
                return
            advance_right()
            right_group: List[Row] = []
            group_key = None
            while left_row is not None:
                left_key = left_fn(left_row)
                if group_key is not None and left_key == group_key:
                    # Emit the buffered matches for this left row; the
                    # interpreter emits them over consecutive pulls with no
                    # child activity in between, so a tight loop is
                    # tick-identical.
                    for right_match in right_group:
                        joined = left_row + right_match
                        op.rows_produced += 1
                        cell[0] += 1
                        budget[0] -= 1
                        if budget[0] <= 0:
                            flush()
                        yield joined
                    if advance_left() is None:
                        break
                    continue
                # Align the right side with the current left key.
                while (
                    right_row is not None
                    and right_fn(right_row) < left_key
                ):
                    advance_right()
                if (
                    right_row is not None
                    and right_fn(right_row) == left_key
                ):
                    right_group = []
                    while (
                        right_row is not None
                        and right_fn(right_row) == left_key
                    ):
                        right_group.append(right_row)
                        advance_right()
                    group_key = left_key
                    continue
                # No right match for this left key.
                group_key = None
                right_group = []
                if advance_left() is None:
                    break
            acct.finish(op)

        return _Node(
            op, make,
            self.rewinder(op, (left_node.rewind, right_node.rewind)),
        )

    # -- blocking operators --------------------------------------------------------

    def _compile_sort(self, op: Sort) -> _Node:
        child_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            if op._rows is None:
                rows = list(child_node.make())
                # Same stable multi-key sort as Sort._materialize; _rows is
                # only assigned afterwards so the boundary observer at the
                # child's finish still sees materialized_count() == None.
                child_schema = op.child.schema
                for key in reversed(op.keys):
                    bound = key.expression.bind(child_schema)
                    rows.sort(
                        key=lambda row, fn=bound: _null_first_key(fn(row)),
                        reverse=key.descending,
                    )
                op._rows = rows
            for row in op._rows:
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    def _compile_topn(self, op: TopN) -> _Node:
        child_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            if op._buffer is None:
                functions = op._key_functions()
                limit = op.limit
                buffer: List[_OrderedRow] = []
                row_key = op._row_key
                for row in child_node.make():
                    if limit == 0:
                        continue  # still drain the child (blocking contract)
                    entry = _OrderedRow(row_key(row, functions), row)
                    if len(buffer) < limit:
                        bisect.insort(buffer, entry)
                    elif entry < buffer[-1]:
                        bisect.insort(buffer, entry)
                        buffer.pop()
                op._buffer = buffer
            for entry in op._buffer:
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield entry.row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    @staticmethod
    def _compile_update(op: HashAggregate):
        """exec-specialize the per-row accumulator update into one function.

        ``_Accumulator.update`` loops over every spec maintaining
        count/sum/min/max for each; ``finalize`` only ever reads the slot
        matching the spec's kind, so the generated function touches just
        those slots, evaluates a shared argument expression object once
        (they are pure; reprs are not reliably structural — CASE elides its
        branches — so sharing is by identity), and folds the whole loop —
        including ``count_star`` — into a single frame per input row.  Emitted rows are identical; the untouched slots are not
        observable (progress bounds read ``groups_seen()``/
        ``input_consumed``, never accumulator internals).
        """
        env: dict = {}
        lines = ["def update(acc, row):", "    acc.count_star += 1"]
        preamble = []
        needs = set()
        values: dict = {}  # structural expression repr -> local name
        for index, (spec, fn) in enumerate(
            zip(op.aggregates, op._argument_fns)
        ):
            if fn is None:  # COUNT(*): only count_star, handled above
                continue
            key = id(spec.argument)
            value = values.get(key)
            if value is None:
                value = "v%d" % (len(values),)
                values[key] = value
                env["arg_" + value] = fn
                lines.append("    %s = arg_%s(row)" % (value, value))
            kind = spec.kind.name
            if kind == "COUNT":
                needs.add("counts")
                lines.append(
                    "    if %s is not None: counts[%d] += 1" % (value, index)
                )
                continue
            lines.append("    if %s is not None:" % (value,))
            if kind in ("SUM", "AVG"):
                if kind == "AVG":
                    needs.add("counts")
                    lines.append("        counts[%d] += 1" % (index,))
                needs.add("sums")
                # `cls is not bool and isinstance(...)` reproduces the
                # reference's bool-excluding numeric guard with the common
                # int/float case answered by two identity checks.
                lines += [
                    "        cls = %s.__class__" % (value,),
                    "        if cls is float or cls is int or ("
                    "cls is not bool and isinstance(%s, (int, float))):"
                    % (value,),
                    "            cur = sums[%d]" % (index,),
                    "            sums[%d] = %s if cur is None else cur + %s"
                    % (index, value, value),
                ]
            elif kind == "MIN":
                needs.add("mins")
                lines += [
                    "        cur = mins[%d]" % (index,),
                    "        if cur is None or %s < cur: mins[%d] = %s"
                    % (value, index, value),
                ]
            else:  # MAX
                needs.add("maxs")
                lines += [
                    "        cur = maxs[%d]" % (index,),
                    "        if cur is None or %s > cur: maxs[%d] = %s"
                    % (value, index, value),
                ]
        for name in sorted(needs):
            preamble.append("    %s = acc.%s" % (name, name))
        source = "\n".join(lines[:2] + preamble + lines[2:])
        exec(source, env)  # noqa: S102 — fn cells only, no user input
        return env["update"]

    def _compile_hash_aggregate(self, op: HashAggregate) -> _Node:
        child_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            if op._output is None:
                # Accumulate into op._groups in place: mid-build observers
                # read groups_seen() exactly as under the interpreted engine.
                groups = op._groups
                group_fns = op._group_fns
                spec_count = len(op.aggregates)
                update_row = self._compile_update(op)
                get_group = groups.get
                single_key = group_fns[0] if len(group_fns) == 1 else None
                for row in child_node.make():
                    if single_key is not None:
                        key = (single_key(row),)
                    else:
                        key = tuple([fn(row) for fn in group_fns])
                    accumulator = get_group(key)
                    if accumulator is None:
                        accumulator = _Accumulator(spec_count)
                        groups[key] = accumulator
                    update_row(accumulator, row)
                if not op.group_by and not groups:
                    groups[()] = _Accumulator(spec_count)
                op._materialized = True
                op._output = iter(
                    [op._emit(key, acc) for key, acc in groups.items()]
                )
            output = op._output
            while True:
                row = next(output, None)
                if row is None:
                    break
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    def _compile_stream_aggregate(self, op: StreamAggregate) -> _Node:
        """Order-based γ fused over the compiled child.

        Replicates ``StreamAggregate._next``'s lookahead loop: a group is
        emitted when the next key differs (or the input ends), the scalar
        no-GROUP-BY form emits one row on empty input, and the child's
        finish event fires during the pull that drains it — exactly the
        interpreted instants.  Keys are pure expressions, so computing each
        row's key once (the interpreter computes it twice) is unobservable.
        """
        child_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            group_fns = op._group_fns
            single_key = group_fns[0] if len(group_fns) == 1 else None
            spec_count = len(op.aggregates)
            update_row = self._compile_update(op)
            emit = op._emit
            child_iter = child_node.make()
            pending = next(child_iter, None)
            if pending is None:
                if not op.group_by:
                    row = emit((), _Accumulator(spec_count))
                    op.rows_produced += 1
                    cell[0] += 1
                    budget[0] -= 1
                    if budget[0] <= 0:
                        flush()
                    yield row
                acct.finish(op)
                return
            if single_key is not None:
                pending_key = (single_key(pending),)
            else:
                pending_key = tuple([fn(pending) for fn in group_fns])
            while pending is not None:
                key = pending_key
                accumulator = _Accumulator(spec_count)
                while pending is not None and pending_key == key:
                    update_row(accumulator, pending)
                    pending = next(child_iter, None)
                    if pending is not None:
                        if single_key is not None:
                            pending_key = (single_key(pending),)
                        else:
                            pending_key = tuple(
                                [fn(pending) for fn in group_fns]
                            )
                row = emit(key, accumulator)
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    # -- auxiliaries ----------------------------------------------------------------

    def _compile_limit(self, op: Limit) -> _Node:
        child_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            child_iter = child_node.make()
            skipped = 0
            offset = op.offset
            limit = op.limit
            while skipped < offset:
                if next(child_iter, None) is None:
                    acct.finish(op)
                    return
                skipped += 1
            returned = 0
            while returned < limit:
                row = next(child_iter, None)
                if row is None:
                    break
                returned += 1
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            # Once the limit is reached the child is simply abandoned,
            # like the interpreted engine: no finish event for it.
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    def _compile_distinct(self, op: Distinct) -> _Node:
        child_node = self.compile(op.child)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            seen = op._seen
            add = seen.add
            for row in child_node.make():
                if row in seen:
                    continue
                add(row)
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            acct.finish(op)

        return _Node(op, make, self.rewinder(op, (child_node.rewind,)))

    def _compile_union(self, op: UnionAll) -> _Node:
        child_nodes = [self.compile(child) for child in op.children]
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush

        def make() -> Iterator[Row]:
            for child_node in child_nodes:
                for row in child_node.make():
                    op.rows_produced += 1
                    cell[0] += 1
                    budget[0] -= 1
                    if budget[0] <= 0:
                        flush()
                    yield row
            acct.finish(op)

        return _Node(
            op, make,
            self.rewinder(op, tuple(node.rewind for node in child_nodes)),
        )

    # -- generic adapter -------------------------------------------------------------

    def _compile_adapter(self, op: Operator) -> _Node:
        """Drive ``op``'s own ``_next`` over compiled children.

        The children's ``get_next``/``rewind`` methods are shadowed with
        instance attributes that pull from their compiled generators, so
        the operator's exact row logic runs unchanged while everything
        below it stays fused.  Used for merge joins, stream aggregates,
        index seeks, random-order scans and user-defined operators.
        """
        child_nodes = [self.compile(child) for child in op.children]
        for child, node in zip(op.children, child_nodes):
            self._install_shim(child, node)
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush
        counted = op.counted

        def make() -> Iterator[Row]:
            # Fresh child generators every pass: after a rescan the shims
            # must pull from the rewound state, not an exhausted iterator.
            for node in child_nodes:
                node.gen = node.make()
            produce = op._next
            while True:
                row = produce()
                if row is None:
                    break
                op.rows_produced += 1
                if counted:
                    cell[0] += 1
                    budget[0] -= 1
                    if budget[0] <= 0:
                        flush()
                yield row
            acct.finish(op)

        return _Node(
            op, make,
            self.rewinder(op, tuple(node.rewind for node in child_nodes)),
        )

    def _install_shim(self, child: Operator, node: _Node) -> None:
        def shim_get_next() -> Optional[Row]:
            gen = node.gen
            if gen is None:
                gen = node.gen = node.make()
            return next(gen, None)

        def shim_rewind() -> None:
            node.rewind()
            node.gen = node.make()

        child.get_next = shim_get_next  # type: ignore[method-assign]
        child.rewind = shim_rewind  # type: ignore[method-assign]
        self.shimmed.append(child)

    def remove_shims(self) -> None:
        for child in self.shimmed:
            for attribute in ("get_next", "rewind"):
                try:
                    delattr(child, attribute)
                except AttributeError:
                    pass
        self.shimmed = []


def run_fused(root: Operator, context: Optional[ExecutionContext] = None) -> List[Row]:
    """Open ``root``, execute it through the fused engine, close it.

    Tick-for-tick equivalent to ``root.run(context)``: same rows in the
    same order, same per-operator counts, same observer firing instants,
    same finish/rewind event stream (tick events are coalesced on the
    batch-listener channel).
    """
    context = context or ExecutionContext()
    monitor = context.monitor
    root.open(context)
    compiler = _Compiler(monitor)
    try:
        program = compiler.compile(root)
        compiler.acct.reset_budget()
        return list(program.make())
    finally:
        # On an exception mid-batch the pending counts are still applied so
        # the monitor reflects every getnext that actually happened (a
        # partial batch can never cross a cadence multiple, so no observer
        # fires here).
        compiler.acct.flush()
        compiler.remove_shims()
        root.close()
