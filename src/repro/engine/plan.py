"""Physical plans: a thin wrapper over an operator tree plus inspection tools.

A :class:`Plan` names an operator tree and provides the structural queries
the progress layer needs (leaves, blocking nodes, nested-iteration nodes,
scan-based classification per §5.4 of the paper) and a textual EXPLAIN.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Type, TypeVar

from repro.engine.operators.base import LeafOperator, Operator
from repro.engine.operators.scan import RowSource, TableScan
from repro.errors import PlanError

O = TypeVar("O", bound=Operator)


class Plan:
    """A named, validated physical plan."""

    def __init__(self, root: Operator, name: str = "query") -> None:
        root.validate()
        self.root = root
        self.name = name

    # -- structure -------------------------------------------------------------

    def operators(self) -> Iterator[Operator]:
        return self.root.walk()

    def leaves(self) -> List[LeafOperator]:
        return [op for op in self.operators() if isinstance(op, LeafOperator)]

    def scanned_leaves(self) -> List[Operator]:
        """Leaves guaranteed to be scanned exactly once — the paper's ``L_s``.

        A table scan / row source qualifies unless it sits (a) under the
        inner side of a ⋈NL (it is rescanned per outer row) or (b) under a
        LIMIT with no intervening blocking operator (it may be cut off
        mid-scan).  Blocking operators — sort, hash-γ, a hash join's build
        side — always drain their input, so they restore the guarantee.
        """
        from repro.engine.operators.aggregate import HashAggregate
        from repro.engine.operators.hash_join import HashJoin
        from repro.engine.operators.misc import Limit
        from repro.engine.operators.nested_loops import NestedLoopsJoin
        from repro.engine.operators.sort import Sort
        from repro.engine.operators.topn import TopN

        scanned: List[Operator] = []

        def visit(node: Operator, once: bool) -> None:
            if isinstance(node, (TableScan, RowSource)):
                if once:
                    scanned.append(node)
                return
            for i, child in enumerate(node.children):
                child_once = once
                if isinstance(node, NestedLoopsJoin) and i == 1:
                    child_once = False  # rescanned per outer row
                elif isinstance(node, Limit):
                    child_once = False  # may be cut off mid-scan
                elif isinstance(node, (Sort, HashAggregate, TopN)):
                    child_once = True  # blocking: always drained
                elif isinstance(node, HashJoin) and i == 0:
                    child_once = True  # build side: always drained
                visit(child, child_once)

        visit(self.root, True)
        return scanned

    def find(self, operator_type: Type[O]) -> List[O]:
        return [op for op in self.operators() if isinstance(op, operator_type)]

    def internal_node_count(self) -> int:
        """Number of non-leaf operators (the ``m`` of Property 6)."""
        return sum(1 for op in self.operators() if op.children)

    def is_scan_based(self) -> bool:
        """§5.4: no ⋈NL, no ⋈INL, no index-seek anywhere in the tree."""
        return not any(op.is_nested_iteration for op in self.operators())

    def is_linear(self) -> bool:
        """True when every internal operator is linear (Property 6 setting)."""
        return all(op.is_linear for op in self.operators() if op.children)

    def blocking_operators(self) -> List[Operator]:
        return [op for op in self.operators() if op.is_blocking]

    # -- explain ----------------------------------------------------------------

    def explain(self) -> str:
        """Indented textual rendering of the operator tree."""
        lines: List[str] = []

        def render(node: Operator, depth: int) -> None:
            marks = []
            if node.is_blocking:
                marks.append("blocking")
            if node.is_nested_iteration:
                marks.append("nested-iteration")
            if node.children and not node.is_linear:
                marks.append("non-linear")
            suffix = "  [%s]" % (", ".join(marks),) if marks else ""
            lines.append("%s%s%s" % ("  " * depth, node.describe(), suffix))
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Plan(%s)" % (self.name,)
