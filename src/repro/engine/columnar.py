"""The columnar engine: batch execution with tick-exact replay.

The third engine behind :func:`repro.engine.executor.resolve_engine`.  Where
the interpreted engine pulls one row per ``get_next`` and the fused engine
compiles operator chains into generators, this engine materializes each
pipeline's data flow as whole columns (NumPy arrays when
:mod:`repro.storage.columnar` packed them, plain lists otherwise), computes
every operator's output batch with vectorized kernels — and then *replays*
the work model: every counted operator's tick positions are reconstructed
exactly, so cadence observers, pipeline-boundary forced rounds, and the
event stream fire at precisely the interpreted engine's tick numbers with
precisely the interpreted engine's observable operator state.

The replay rests on one uniform accounting model.  Every stage of a
pipeline chain exposes *items*: its ``n`` real output rows plus one
sentinel (the pull that returns end-of-stream).  A per-stage ``cons`` array
records, per item, the cumulative number of child items consumed up to and
including that item's emission — which uniformly encodes leading/trailing
consumption (a filter draining non-passing rows), stream aggregation's
lookahead (the last group's emission consumes the child's sentinel), LIMIT
truncation (the child's sentinel is consumed only if the child exhausted
during the limited pull), and finish events (an operator finishes exactly
when its sentinel is consumed).  From the ``cons`` arrays a single
recursion assigns every tick its global position; the replay loop then
advances through the positions in windows clamped to
``ExecutionMonitor.ticks_until_next_observer()`` and to the next finish
marker, updating ``rows_produced`` and blocking-operator build state
*before* each ``record_batch`` so every observer reads interpreted state.

Pipelines run in the interpreted engine's order: walking a chain top-down,
each hash join's build side executes first (a full recursive pipeline into
a build sink), then deeper joins, then — if the chain bottoms out at a
blocking operator — that operator's input pipeline; only then does the
chain itself replay.  Plans containing operators without a vectorized
translation (merge joins, plain nested loops, UNION ALL, user-defined
nodes) fall back per-subtree: fully-supported blocking islands still run
vectorized inside an otherwise fused program (see
:class:`_ColumnarCompiler`), and everything else uses the fused engine's
compilers unchanged.  Expressions without an exact vectorized translation
fall back row-at-a-time per stage via the operators' own bound functions.

NumPy is optional: every kernel has a list fallback (bisect, accumulate,
comprehensions) with identical semantics.
"""

from __future__ import annotations

import bisect
from itertools import accumulate
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import repro.storage.columnar as colstore
from repro.engine.compiled import _Compiler, _Node
from repro.engine.operators.aggregate import (
    AggregateKind,
    HashAggregate,
    StreamAggregate,
    _Accumulator,
)
from repro.engine.operators.base import ExecutionContext, Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.misc import Distinct, Limit
from repro.engine.operators.project import Project
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.sort import Sort, _null_first_key
from repro.engine.operators.topn import TopN, _OrderedRow
from repro.engine.vectorize import Unvectorizable, evaluate, tolist, truth_mask
from repro.storage.columnar import columns_for, pack_values
from repro.storage.table import Row

try:  # pragma: no cover - exercised via the no-NumPy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: operator types with a vectorized translation; anything else falls back
_VEC_TYPES = frozenset(
    (
        TableScan,
        RowSource,
        Filter,
        Project,
        HashJoin,
        IndexNestedLoopsJoin,
        Sort,
        TopN,
        HashAggregate,
        StreamAggregate,
        Limit,
        Distinct,
    )
)

#: blocking operators the fallback compiler can still run as vector islands
_BLOCKING_VEC_TYPES = (Sort, TopN, HashAggregate)


def _vec_supported(op: Operator) -> bool:
    """True when every operator in ``op``'s subtree has a vectorized path."""
    return all(type(node) in _VEC_TYPES for node in op.walk())


def _use_np() -> bool:
    return _np is not None and colstore.HAVE_NUMPY


def _is_np(values: object) -> bool:
    return _np is not None and isinstance(values, _np.ndarray)


def _gather(col, idx):
    """``col`` at positions ``idx``; arrays stay arrays, lists stay lists."""
    if type(col) is _Deferred:
        return _Deferred(col.source, _gather(col.indices, idx))
    if _is_np(col):
        return col[idx]
    if _is_np(idx):
        idx = idx.tolist()
    return [col[j] for j in idx]


class _Deferred:
    """A postponed gather: ``source`` at ``indices``, composed across stages.

    Joins and filters over wide schemas reorder every column of their
    input, but most of those columns are never read — they are joined away,
    projected out, or only carried to a sink that looks at a handful of
    them.  A stage therefore emits ``_Deferred(source, indices)`` handles
    instead of copying; stacked stages compose the int64 index arrays
    (``source[i1][i2] == source[i1[i2]]``), and only a column something
    actually touches pays for a materializing gather.
    """

    __slots__ = ("source", "indices")

    def __init__(self, source, indices) -> None:
        self.source = source
        self.indices = indices

    def resolve(self):
        return _gather(self.source, self.indices)


def _defer(col, idx):
    """Postpone gathering ``col`` at ``idx`` (composing prior deferrals)."""
    if type(col) is _Deferred:
        return _Deferred(col.source, _gather(col.indices, idx))
    return _Deferred(col, idx)


def _resolve(col):
    """Materialize a deferred gather; already-real vcols pass through."""
    if type(col) is _Deferred:
        return col.resolve()
    return col


def _slice_col(col, first: int, last: int):
    """``col[first:last]`` with deferred gathers staying deferred."""
    if type(col) is _Deferred:
        return _Deferred(col.source, col.indices[first:last])
    return col[first:last]


class _LazyCols(list):
    """A column list that materializes deferred gathers on indexed access.

    Indexing resolves (and caches in place) so expression evaluation over a
    batch sees real vcols; plain iteration yields the raw entries so stage
    gathers can keep composing deferrals instead of forcing them.
    """

    def __getitem__(self, index):
        value = list.__getitem__(self, index)
        if type(value) is _Deferred:
            value = value.resolve()
            list.__setitem__(self, index, value)
        return value


def _mask_indices(mask):
    """Positions where a selection mask holds (ascending).

    Returns an int64 array whenever NumPy is available — even for Python
    list masks (row-fallback predicates) — so downstream gathers and
    deferral compositions stay on the C fancy-indexing path.
    """
    if _is_np(mask):
        return _np.flatnonzero(mask)
    kept = [j for j, keep in enumerate(mask) if keep]
    if _use_np():
        return _np.asarray(kept, dtype=_np.int64)
    return kept


def _cons_from_indices(idx, sentinel: int):
    """``cons`` for a stage whose output ``i`` consumed child item ``idx[i]``."""
    if _is_np(idx):
        return _np.concatenate(
            (idx.astype(_np.int64) + 1, _np.array([sentinel], dtype=_np.int64))
        )
    return [j + 1 for j in idx] + [sentinel]


def _excl_cumsum(values):
    """Exclusive prefix sums: length ``len(values) + 1``, starts at 0."""
    if _is_np(values):
        out = _np.empty(len(values) + 1, dtype=_np.int64)
        out[0] = 0
        _np.cumsum(values, out=out[1:])
        return out
    return list(accumulate(values, initial=0))


class _Batch:
    """One operator's full output: a schema plus one vcol per column."""

    __slots__ = ("schema", "cols", "n", "_rows")

    def __init__(self, schema, cols, n: int) -> None:
        self.schema = schema
        self.cols = _LazyCols(cols)
        self.n = n
        self._rows: Optional[List[Row]] = None

    def rows(self) -> List[Row]:
        """The batch as native Python row tuples (cached)."""
        if self._rows is None:
            if self.n == 0:
                self._rows = []
            else:
                cols = self.cols
                self._rows = list(
                    zip(*[tolist(cols[i]) for i in range(len(cols))])
                )
        return self._rows


class _SpoolRows:
    """A committed sort's spool, transposed to row tuples only on demand.

    The sort contract pins ``op._rows`` at commit — ``materialized_count``
    reads its length, rescans index into it — but a fully vectorized plan
    only ever reads the *length*.  Transposing a wide sorted batch into
    tuples is the costliest step of a large ORDER BY, so it waits for the
    first element access (island emission, a rescanning parent).
    """

    __slots__ = ("_batch",)

    def __init__(self, batch: _Batch) -> None:
        self._batch = batch

    def __len__(self) -> int:
        return self._batch.n

    def __getitem__(self, index):
        return self._batch.rows()[index]

    def __iter__(self):
        return iter(self._batch.rows())


def _rows_to_batch(schema, rows: Sequence[Row]) -> _Batch:
    rows = list(rows)
    if not rows:
        return _Batch(schema, [[] for _ in range(len(schema))], 0)
    cols = [pack_values(values, None) for values in zip(*rows)]
    batch = _Batch(schema, cols, len(rows))
    batch._rows = rows
    return batch


class _Stage:
    """One streaming operator's computed output within a pipeline chain.

    ``cons`` has ``n + 1`` entries over the stage's items (``n`` outputs
    plus the sentinel): ``cons[i]`` is the cumulative number of child items
    consumed through item ``i``.  ``None`` for the chain's source stage.
    """

    __slots__ = ("op", "batch", "cons")

    def __init__(self, op: Operator, batch: _Batch, cons) -> None:
        self.op = op
        self.batch = batch
        self.cons = cons


# ---------------------------------------------------------------------------
# keyed equality lookups (hash-join builds and ⋈INL inner indexes)
# ---------------------------------------------------------------------------


def _kinds_joinable(a, b) -> bool:
    """True when NumPy equality on these arrays matches Python ``==``."""
    numeric = "bif"
    if a.dtype.kind in numeric and b.dtype.kind in numeric:
        return True
    return a.dtype.kind == "U" and b.dtype.kind == "U"


class _KeyedLookup:
    """Equality lookup from key values to ascending positions.

    Probing returns, per matching pair, the probe index and the matched
    position — positions ascending within one probe key, which is both the
    hash join's bucket insertion order and the order either index type
    returns matches in.  NULL keys never enter the structure and never
    match.
    """

    __slots__ = ("keys", "n", "_order", "_sorted", "_dict")

    def __init__(self, keys, n: int) -> None:
        self.keys = keys
        self.n = n
        self._order = None
        self._sorted = None
        self._dict: Optional[Dict[object, List[int]]] = None

    def _ensure_dict(self) -> Dict[object, List[int]]:
        if self._dict is None:
            table: Dict[object, List[int]] = {}
            for position, key in enumerate(tolist(self.keys)):
                if key is None:
                    continue  # NULL keys never join
                table.setdefault(key, []).append(position)
            self._dict = table
        return self._dict

    def probe(self, probe_keys, n_probe: int):
        """-> ``(probe_idx, positions)`` flat match pairs, probe order."""
        if (
            _is_np(self.keys)
            and _is_np(probe_keys)
            and _kinds_joinable(self.keys, probe_keys)
        ):
            if self._order is None:
                # A stable argsort keeps equal keys in insertion (position)
                # order — the dict path's bucket order.
                self._order = _np.argsort(self.keys, kind="stable")
                self._sorted = self.keys[self._order]
            lo = _np.searchsorted(self._sorted, probe_keys, side="left")
            hi = _np.searchsorted(self._sorted, probe_keys, side="right")
            fanout = hi - lo
            total = int(fanout.sum())
            if total == 0:
                empty = _np.zeros(0, dtype=_np.int64)
                return empty, empty
            probe_idx = _np.repeat(
                _np.arange(n_probe, dtype=_np.int64), fanout
            )
            bursts = _np.repeat(_excl_cumsum(fanout)[:-1], fanout)
            within = _np.arange(total, dtype=_np.int64) - bursts
            positions = self._order[_np.repeat(lo, fanout) + within]
            return probe_idx, positions
        table = self._ensure_dict()
        probe_idx: List[int] = []
        positions: List[int] = []
        for j, key in enumerate(tolist(probe_keys)):
            if key is None:
                continue
            matches = table.get(key)
            if matches:
                probe_idx.extend([j] * len(matches))
                positions.extend(matches)
        if _use_np():
            return (
                _np.asarray(probe_idx, dtype=_np.int64),
                _np.asarray(positions, dtype=_np.int64),
            )
        return probe_idx, positions


#: per-index probe structures, shared across runs (indexes are immutable)
_index_lookups: "WeakKeyDictionary[object, Tuple[_KeyedLookup, list]]" = (
    WeakKeyDictionary()
)


def _index_lookup(index) -> Tuple[_KeyedLookup, list]:
    cached = _index_lookups.get(index)
    if cached is not None:
        return cached
    inner_cols = columns_for(index.table)
    lookup = _KeyedLookup(inner_cols[index._position], len(index.table))
    entry = (lookup, inner_cols)
    _index_lookups[index] = entry
    return entry


# ---------------------------------------------------------------------------
# aggregation kernels (shared by HashAggregate sinks and StreamAggregate)
# ---------------------------------------------------------------------------


def _spec_value_vcols(op, batch: _Batch) -> List[Optional[object]]:
    """Per-spec evaluated argument vcols (None slot for COUNT(*))."""
    vcols: List[Optional[object]] = []
    for index, spec in enumerate(op.aggregates):
        if spec.argument is None:
            vcols.append(None)
            continue
        try:
            vcols.append(
                evaluate(spec.argument, batch.schema, batch.cols, batch.n)
            )
        except Unvectorizable:
            fn = op._argument_fns[index]
            vcols.append([fn(row) for row in batch.rows()])
    return vcols


def _group_key_vcols(op, batch: _Batch) -> List[object]:
    """One evaluated vcol per GROUP BY expression."""
    vcols: List[object] = []
    for index, (_, expression) in enumerate(op.group_by):
        try:
            vcols.append(
                evaluate(expression, batch.schema, batch.cols, batch.n)
            )
        except Unvectorizable:
            fn = op._group_fns[index]
            vcols.append([fn(row) for row in batch.rows()])
    return vcols


def _cluster_keys(vcols: List[object], n: int):
    """Cluster rows by equal key tuples, ordered by first arrival — or None.

    Returns ``(firsts, order, sizes)`` arrays: per distinct key tuple, in
    order of first occurrence, the row index of its first occurrence (so
    ``firsts`` is ascending); ``order`` holds every row index with each
    cluster contiguous and its rows in arrival order; ``sizes`` the cluster
    widths.  None when any key column is not an exact-typed array or holds
    NaNs — array equality and Python's dict/set equality agree on exact
    ints, floats, bools and strings (±0.0 land in one cluster either way),
    but NaNs do not (a dict groups by object identity first), so those
    fall back to the per-row structures.
    """
    if n == 0 or not vcols or not _use_np():
        return None
    for vcol in vcols:
        if not _is_np(vcol):
            return None
        if vcol.dtype.kind == "f" and _np.isnan(vcol).any():
            return None
    # lexsort is stable, so equal tuples land adjacent with their rows in
    # arrival order (it keys on the *last* array first, hence the reverse).
    perm = _np.lexsort(tuple(reversed(vcols)))
    boundary = _np.zeros(n - 1, dtype=bool)
    for vcol in vcols:
        ordered = vcol[perm]
        boundary |= ordered[1:] != ordered[:-1]
    starts = _np.concatenate(
        (_np.zeros(1, dtype=_np.int64), _np.flatnonzero(boundary) + 1)
    )
    sizes_sorted = _np.diff(_np.append(starts, n))
    firsts_sorted = perm[starts]
    emit = _np.argsort(firsts_sorted, kind="stable")  # first-arrival order
    rank = _np.empty(len(starts), dtype=_np.int64)
    rank[emit] = _np.arange(len(starts), dtype=_np.int64)
    order = perm[_np.argsort(_np.repeat(rank, sizes_sorted), kind="stable")]
    return firsts_sorted[emit], order, sizes_sorted[emit]


def _int_sum_in_range(arr) -> bool:
    """True when no int64 ``reduceat`` partial sum can overflow.

    Integer addition is associative, so NumPy's reassociation is harmless
    for integer sums — wraparound is the only way ``add.reduceat`` could
    diverge from the Python left-fold (whose ints are unbounded).  Bounding
    every partial sum by ``len * max|value|`` rules it out conservatively.
    """
    if not len(arr):
        return True
    peak = max(-int(arr.min()), int(arr.max()))
    return peak * len(arr) < 2 ** 63


def _reduce_spec(values, order: Optional[List[int]], bounds: List[int]):
    """Per-segment ``(counts, sums, mins, maxs)`` for one aggregate argument.

    ``order`` (None for already-clustered input) maps segment slots to row
    indices; ``bounds`` delimits the segments over the ordered rows, in row
    order within each segment.  Bit-identical to per-row
    ``_Accumulator.update``: counts ignore NULLs, sums add numeric non-bool
    values in row order, min/max keep the first extremal value.  Float sums
    left-fold with built-in ``sum`` over native values — ``np.add.reduceat``
    reassociates float additions and is deliberately NOT used for them;
    integer sums DO use ``reduceat`` (addition is associative) whenever
    :func:`_int_sum_in_range` rules out int64 wraparound.  The min/max
    ``reduceat`` on NULL-free arrays is order-insensitive for totally
    ordered values (the typed columns carry no NaNs, where NumPy's
    propagate-NaN and Python's keep-first semantics would part ways).
    """
    group_count = len(bounds) - 1
    counts = [0] * group_count
    sums: List[object] = [None] * group_count
    mins: List[object] = [None] * group_count
    maxs: List[object] = [None] * group_count
    if group_count == 0:
        return counts, sums, mins, maxs
    if _is_np(values):  # NULL-free by the packing invariant
        if order is None:
            arr = values
        else:
            arr = values[_np.asarray(order, dtype=_np.int64)]
        kind = arr.dtype.kind
        starts = _np.asarray(bounds[:-1], dtype=_np.int64)
        counts = _np.diff(_np.asarray(bounds, dtype=_np.int64)).tolist()
        if kind in "bif":
            mins = _np.minimum.reduceat(arr, starts).tolist()
            maxs = _np.maximum.reduceat(arr, starts).tolist()
        else:
            native = arr.tolist()
            for g in range(group_count):
                segment = native[bounds[g]:bounds[g + 1]]
                mins[g] = min(segment)
                maxs[g] = max(segment)
        if kind == "i" and _int_sum_in_range(arr):
            sums = _np.add.reduceat(arr, starts).tolist()
        elif kind in "if":
            native = arr.tolist()
            for g in range(group_count):
                lo, hi = bounds[g], bounds[g + 1]
                sums[g] = sum(native[lo + 1:hi], native[lo])
        return counts, sums, mins, maxs
    for g in range(group_count):
        if order is None:
            indices = range(bounds[g], bounds[g + 1])
        else:
            indices = order[bounds[g]:bounds[g + 1]]
        present = [values[j] for j in indices if values[j] is not None]
        if not present:
            continue
        counts[g] = len(present)
        numeric = [
            v
            for v in present
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if numeric:
            sums[g] = sum(numeric[1:], numeric[0])
        mins[g] = min(present)
        maxs[g] = max(present)
    return counts, sums, mins, maxs


def _finalized_spec_columns(op, sizes: List[int], reduced) -> List[object]:
    """One output column per aggregate spec — ``finalize`` semantics."""
    group_count = len(sizes)
    cols: List[object] = []
    for i, spec in enumerate(op.aggregates):
        kind = spec.kind
        if kind is AggregateKind.COUNT_STAR:
            col: List[object] = list(sizes)
        else:
            counts, sums, mins, maxs = reduced[i]
            if kind is AggregateKind.COUNT:
                col = list(counts)
            elif kind is AggregateKind.SUM:
                col = list(sums)
            elif kind is AggregateKind.AVG:
                col = [
                    None if counts[g] == 0 else sums[g] / counts[g]
                    for g in range(group_count)
                ]
            elif kind is AggregateKind.MIN:
                col = list(mins)
            else:
                col = list(maxs)
        cols.append(pack_values(col, None))
    return cols


def _stable_argsort(values, descending: bool):
    """Stable order indices, ties in original order either direction.

    Descending has no direct NumPy spelling: a stable ascending argsort of
    the *reversed* array, mapped back and reversed, yields exactly Python's
    ``sort(reverse=True)`` — descending keys with ties kept in original
    order (``reverse=True`` negates comparisons; it never reorders ties).
    """
    if not descending:
        return _np.argsort(values, kind="stable")
    reverse = _np.argsort(values[::-1], kind="stable")
    return (len(values) - 1) - reverse[::-1]


def _run_starts(key_vcols, n: int) -> List[int]:
    """Start offsets of each key run in already-clustered input."""
    if n == 0:
        return []
    if key_vcols and all(_is_np(col) for col in key_vcols):
        changed = None
        for col in key_vcols:
            delta = col[1:] != col[:-1]
            changed = delta if changed is None else (changed | delta)
        return [0] + (_np.flatnonzero(changed) + 1).tolist()
    lists = [tolist(col) for col in key_vcols]
    starts = [0]
    for j in range(1, n):
        for values in lists:
            a, b = values[j - 1], values[j]
            # Identity first: tuple equality treats identical objects as
            # equal without calling __eq__, and None == None must hold.
            if a is not b and a != b:
                starts.append(j)
                break
    return starts


# ---------------------------------------------------------------------------
# chain layout: item sizes -> tick positions -> finish markers
# ---------------------------------------------------------------------------


class _ChainLayout:
    """Every tick position and finish marker of one pipeline chain."""

    __slots__ = ("total", "ownpos", "markers")

    def __init__(self, total: int, ownpos, markers) -> None:
        self.total = total
        #: per stage: ascending chain-relative positions of its own ticks
        self.ownpos: List[List[int]] = ownpos
        #: ``(position, stage_index, op)`` sorted; bottom-up within a tie,
        #: matching the interpreted cascade (a child's finish is recorded
        #: inside the parent's pull, before the parent's own finish)
        self.markers = markers


def _chain_layout(stages: List[_Stage]) -> _ChainLayout:
    use_np = _use_np()
    stage_count = len(stages)
    counts = [stage.batch.n for stage in stages]

    conses: List[object] = [None]
    for stage in stages[1:]:
        cons = stage.cons
        if use_np:
            cons = _np.asarray(cons, dtype=_np.int64)
        elif _is_np(cons):
            cons = cons.tolist()
        conses.append(cons)

    # Bottom-up: tsizes[s][i] = ticks item i of stage s contributes (its own
    # tick if a real output, plus every child tick its consumption covers).
    tsizes: List[object] = []
    csums: List[object] = []
    if use_np:
        t0 = _np.ones(counts[0] + 1, dtype=_np.int64)
        t0[counts[0]] = 0
    else:
        t0 = [1] * counts[0] + [0]
    tsizes.append(t0)
    for s in range(1, stage_count):
        child_csum = _excl_cumsum(tsizes[s - 1])
        csums.append(child_csum)
        cons = conses[s]
        n_s = counts[s]
        if use_np:
            previous = _np.concatenate(
                (_np.zeros(1, dtype=_np.int64), cons[:-1])
            )
            sizes = child_csum[cons] - child_csum[previous]
            sizes[:n_s] += 1
        else:
            sizes = []
            previous_cons = 0
            for i in range(n_s + 1):
                consumed = cons[i]
                sizes.append(
                    (1 if i < n_s else 0)
                    + child_csum[consumed]
                    - child_csum[previous_cons]
                )
                previous_cons = consumed
        tsizes.append(sizes)

    # Top-down: item start positions, then each stage's own tick positions.
    # ``pulled[s]`` = items of stage s its consumer actually pulled (the
    # sink always exhausts the top; a truncating LIMIT abandons below).
    starts: List[object] = [None] * stage_count
    pulled = [0] * stage_count
    top = stage_count - 1
    top_csum = _excl_cumsum(tsizes[top])
    starts[top] = top_csum
    pulled[top] = counts[top] + 1
    total = int(top_csum[counts[top] + 1])
    for s in range(top, 0, -1):
        cons = conses[s]
        child_csum = csums[s - 1]
        reach = int(cons[pulled[s] - 1])
        if use_np:
            items = _np.arange(reach, dtype=_np.int64)
            owner = _np.searchsorted(cons, items, side="right")
            previous = _np.concatenate(
                (_np.zeros(1, dtype=_np.int64), cons[:-1])
            )
            child_starts = (
                _np.asarray(starts[s])[owner]
                + child_csum[items]
                - child_csum[previous[owner]]
            )
        else:
            parent_starts = starts[s]
            child_starts = []
            for j in range(reach):
                owner = bisect.bisect_right(cons, j)
                before = cons[owner - 1] if owner else 0
                child_starts.append(
                    parent_starts[owner] + child_csum[j] - child_csum[before]
                )
        starts[s - 1] = child_starts
        pulled[s - 1] = reach

    ownpos: List[List[int]] = []
    markers = []
    for s, stage in enumerate(stages):
        n_s = counts[s]
        sizes = tsizes[s]
        stage_starts = starts[s]
        real = min(pulled[s], n_s)
        if use_np:
            # Stays an int64 array: the replay seeks into it with
            # searchsorted, so the n-element tolist would be pure waste.
            positions = stage_starts[:real] + sizes[:real] - 1
        else:
            positions = [
                stage_starts[i] + sizes[i] - 1 for i in range(real)
            ]
        ownpos.append(positions)
        if pulled[s] == n_s + 1:  # sentinel consumed -> the op finishes
            markers.append(
                (int(stage_starts[n_s] + sizes[n_s]), s, stage.op)
            )
    markers.sort(key=lambda marker: (marker[0], marker[1]))
    return _ChainLayout(total, ownpos, markers)


# ---------------------------------------------------------------------------
# sinks: what consumes a chain's top output
# ---------------------------------------------------------------------------


class _RootSink:
    """The driver: collects the plan's result rows."""

    def __init__(self) -> None:
        self.rows: List[Row] = []

    def prepare(self, batch: _Batch) -> None:
        pass

    def advance(self, consumed: int) -> None:
        pass

    def commit(self, batch: _Batch) -> None:
        self.rows = list(batch.rows())


class _JoinBuildSink:
    """A hash join's build phase: key the build rows for probing."""

    def __init__(self, runner: "_VecRunner", op: HashJoin) -> None:
        self.runner = runner
        self.op = op

    def prepare(self, batch: _Batch) -> None:
        pass

    def advance(self, consumed: int) -> None:
        pass

    def commit(self, batch: _Batch) -> None:
        op = self.op
        try:
            keys = evaluate(op.build_key, batch.schema, batch.cols, batch.n)
        except Unvectorizable:
            keys = [op._build_fn(row) for row in batch.rows()]
        self.runner._builds[op.operator_id] = (
            _KeyedLookup(keys, batch.n),
            batch,
        )
        # The dict the row engines fill (op._table) stays empty: nothing
        # observes it — progress state reads build_done, set here exactly
        # where the interpreted build loop sets it (after the build child's
        # finish event, so the boundary observer still saw False).
        op._built = True


class _BlockSink:
    """A blocking operator consuming its input pipeline.

    Commit materializes the operator's exact *observable* state: emitted
    rows bit-identical to the row engines' (Python semantics decide every
    order and every aggregate value) and the progress surface operators
    expose (``materialized_count``, ``groups_seen``).  Internal scratch the
    row engines would also fill — per-key accumulator contents, like a hash
    join's ``op._table`` — is not rebuilt; nothing observes it.  For hash
    aggregation the sink also tracks the build *during* replay: observers
    sampling mid-build read ``groups_seen()``, so each group's key is
    registered the moment its first row is consumed.
    """

    def __init__(self, op: Operator) -> None:
        self.op = op
        self._key_vcols: List[object] = []
        self._spec_vcols: List[Optional[object]] = []
        self._group_keys: List[Tuple[object, ...]] = []
        self._first_at: List[int] = []
        #: row indices with each group's rows contiguous in arrival order
        #: (None = input already clustered), plus the group extents over it
        self._order: Optional[object] = None
        self._bounds: List[int] = [0]
        self._sizes: List[int] = []
        self._inserted = 0
        self._placeholder: Optional[_Accumulator] = None
        self._emit: Optional[_Batch] = None

    def emitted_batch(self) -> Optional[_Batch]:
        """The operator's output as columns, when commit could build it."""
        return self._emit

    def prepare(self, batch: _Batch) -> None:
        op = self.op
        if type(op) is not HashAggregate:
            return
        self._spec_vcols = _spec_value_vcols(op, batch)
        n = batch.n
        if n == 0:
            return
        if not op.group_by:
            # Scalar aggregation: one group, keyed (), holding every row.
            self._group_keys = [()]
            self._first_at = [0]
            self._bounds = [0, n]
            self._sizes = [n]
            return
        self._key_vcols = _group_key_vcols(op, batch)
        clustered = _cluster_keys(self._key_vcols, n)
        if clustered is not None:
            firsts, order, sizes = clustered
            self._first_at = firsts.tolist()
            self._order = order
            self._sizes = sizes.tolist()
            bounds = [0]
            for size in self._sizes:
                bounds.append(bounds[-1] + size)
            self._bounds = bounds
            self._group_keys = list(
                zip(*[vcol[firsts].tolist() for vcol in self._key_vcols])
            )
            return
        keys = list(zip(*[tolist(vcol) for vcol in self._key_vcols]))
        group_of: Dict[Tuple[object, ...], int] = {}
        group_rows: List[List[int]] = []
        for j, key in enumerate(keys):
            group = group_of.get(key)
            if group is None:
                group = len(self._group_keys)
                group_of[key] = group
                self._group_keys.append(key)
                group_rows.append([])
                self._first_at.append(j)
            group_rows[group].append(j)
        self._order = [j for indices in group_rows for j in indices]
        self._sizes = [len(indices) for indices in group_rows]
        bounds = [0]
        for size in self._sizes:
            bounds.append(bounds[-1] + size)
        self._bounds = bounds

    def advance(self, consumed: int) -> None:
        op = self.op
        if type(op) is not HashAggregate:
            return
        first_at = self._first_at
        inserted = self._inserted
        if inserted >= len(first_at):
            return
        placeholder = self._placeholder
        if placeholder is None:
            placeholder = self._placeholder = _Accumulator(len(op.aggregates))
        groups = op._groups
        group_keys = self._group_keys
        while inserted < len(first_at) and first_at[inserted] < consumed:
            # One shared placeholder for every key: mid-build observers
            # only ever read len(op._groups) (like a hash join's op._table,
            # the per-key accumulators are never observed — the emitted
            # values come from the reduced columns at commit).
            groups[group_keys[inserted]] = placeholder
            inserted += 1
        self._inserted = inserted

    def commit(self, batch: _Batch) -> None:
        op = self.op
        kind = type(op)
        if kind is Sort:
            self._commit_sort(op, batch)
            return
        if kind is TopN:
            self._commit_topn(op, batch)
            return
        self._commit_hash_aggregate(op)

    def _commit_topn(self, op: TopN, batch: _Batch) -> None:
        functions = op._key_functions()
        limit = op.limit
        permutation = (
            self._sort_permutation(op, batch) if limit > 0 else None
        )
        if permutation is not None:
            # The insort loop keeps exactly the first ``limit`` rows of the
            # stable full order: a later tie never displaces an earlier one
            # (strict ``entry < buffer[-1]``), and the popped row among ties
            # is always the latest arrival (``insort_right``).  So the
            # buffer is the truncated stable sort, keys rebuilt row-wise.
            row_key = op._row_key
            top = _Batch(
                op.schema,
                [_defer(col, permutation[:limit]) for col in batch.cols],
                min(limit, batch.n),
            )
            self._emit = top
            op._buffer = [
                _OrderedRow(row_key(row, functions), row)
                for row in top.rows()
            ]
            return
        buffer: List[_OrderedRow] = []
        if limit > 0:
            row_key = op._row_key
            for row in batch.rows():
                entry = _OrderedRow(row_key(row, functions), row)
                if len(buffer) < limit:
                    bisect.insort(buffer, entry)
                elif entry < buffer[-1]:
                    bisect.insort(buffer, entry)
                    buffer.pop()
        op._buffer = buffer

    def _commit_sort(self, op: Sort, batch: _Batch) -> None:
        permutation = self._sort_permutation(op, batch)
        if permutation is not None:
            emit = _Batch(
                op.schema,
                [_defer(col, permutation) for col in batch.cols],
                batch.n,
            )
            self._emit = emit
            op._rows = _SpoolRows(emit)
            return
        # Row path: some key has no NULL-free vectorized translation, so
        # the exact ``_null_first_key`` wrapping must decide the order.
        rows = list(batch.rows())
        child_schema = op.child.schema
        for key in reversed(op.keys):
            bound = key.expression.bind(child_schema)
            rows.sort(
                key=lambda row, fn=bound: _null_first_key(fn(row)),
                reverse=key.descending,
            )
        op._rows = rows

    @staticmethod
    def _sort_permutation(op, batch: _Batch):
        """A stable multi-key order over NULL-free array keys, else None.

        ``op`` is a :class:`Sort` or :class:`TopN` — both carry the same
        ``SortKey`` list and the same reversed-stable-sort row semantics.
        """
        key_arrays = []
        for key in op.keys:
            try:
                vcol = evaluate(
                    key.expression, batch.schema, batch.cols, batch.n
                )
            except Unvectorizable:
                return None
            if not _is_np(vcol):
                return None
            key_arrays.append((vcol, key.descending))
        permutation = _np.arange(batch.n, dtype=_np.int64)
        # Least- to most-significant key, exactly like the row path's
        # reversed stable-sort loop; NULL-free natural order is what
        # ``_null_first_key`` degenerates to without NULLs.
        for vcol, descending in reversed(key_arrays):
            permutation = permutation[
                _stable_argsort(vcol[permutation], descending)
            ]
        return permutation

    def _commit_hash_aggregate(self, op: HashAggregate) -> None:
        spec_count = len(op.aggregates)
        group_count = len(self._group_keys)
        if group_count:
            order = self._order
            bounds = self._bounds
            sizes = self._sizes
            reduced = [
                None if vcol is None else _reduce_spec(vcol, order, bounds)
                for vcol in self._spec_vcols
            ]
            # Any group the replay's advance() did not reach yet (none, in
            # a fully drained chain) still gets its key registered: the
            # groups dict carries cardinality, nothing reads its values.
            self.advance(self._bounds[-1] + 1)
            emit_cols = [
                _gather(vcol, self._first_at) for vcol in self._key_vcols
            ]
            emit_cols += _finalized_spec_columns(op, sizes, reduced)
            self._emit = _Batch(op.schema, emit_cols, group_count)
        if not op.group_by and not op._groups:
            op._groups[()] = _Accumulator(spec_count)
        op._materialized = True
        emit_batch = self._emit

        def emitted_rows():
            if emit_batch is not None:
                yield from emit_batch.rows()
            else:
                for key, accumulator in op._groups.items():
                    yield op._emit(key, accumulator)

        op._output = emitted_rows()


# ---------------------------------------------------------------------------
# the vectorized pipeline runner
# ---------------------------------------------------------------------------


class _VecRunner:
    """Executes fully-supported subtrees as vectorized pipeline phases."""

    def __init__(self, monitor) -> None:
        self.monitor = monitor
        #: hash-join op id -> (lookup over build keys, build-side batch)
        self._builds: Dict[int, Tuple[_KeyedLookup, _Batch]] = {}

    # -- pipeline orchestration ------------------------------------------------

    def run_pipeline(self, top: Operator, sink) -> None:
        chain_ops: List[Operator] = []
        node = top
        while True:
            kind = type(node)
            if kind in (TableScan, RowSource) or kind in _BLOCKING_VEC_TYPES:
                source = node
                break
            if kind is Limit and node.limit == 0 and node.offset == 0:
                # LIMIT 0 never pulls its child: the subtree below runs no
                # build phase, ticks nothing, finishes nothing.
                source = node
                break
            chain_ops.append(node)
            node = node.right if kind is HashJoin else node.child

        # Phases, in the interpreted engine's descent order: each hash
        # join's build side first (topmost join first), then the blocking
        # source's own input pipeline.
        for op in chain_ops:
            if type(op) is HashJoin:
                self.run_pipeline(op.left, _JoinBuildSink(self, op))
        source_kind = type(source)
        if source_kind in _BLOCKING_VEC_TYPES:
            block_sink = _BlockSink(source)
            self.run_pipeline(source.child, block_sink)
            batch = block_sink.emitted_batch()
            if batch is None:
                batch = _rows_to_batch(
                    source.schema, self._emitted_rows(source)
                )
        elif source_kind is TableScan:
            batch = _Batch(
                source.schema, columns_for(source.table), len(source.table)
            )
        elif source_kind is RowSource:
            batch = _rows_to_batch(source.schema, source.rows)
        else:  # LIMIT 0: an empty source
            batch = _rows_to_batch(source.schema, [])

        stages = [_Stage(source, batch, None)]
        for op in reversed(chain_ops):
            stages.append(self._build_stage(op, stages[-1].batch))

        layout = _chain_layout(stages)
        sink.prepare(stages[-1].batch)
        self._replay(stages, layout, sink)
        sink.commit(stages[-1].batch)

    @staticmethod
    def _emitted_rows(op: Operator) -> List[Row]:
        """A materialized blocking operator's output rows, emission order."""
        if type(op) is Sort:
            return op._rows
        if type(op) is TopN:
            return [entry.row for entry in op._buffer]
        return [op._emit(key, acc) for key, acc in op._groups.items()]

    # -- the replay loop --------------------------------------------------------

    def _replay(self, stages: List[_Stage], layout: _ChainLayout, sink) -> None:
        monitor = self.monitor
        total = layout.total
        ownpos = layout.ownpos
        markers = layout.markers
        pointers = [0] * len(stages)
        processed = 0
        marker_index = 0
        top_positions = ownpos[-1]
        while True:
            if (
                marker_index < len(markers)
                and markers[marker_index][0] == processed
            ):
                # A finish fires during a pull that returned None: every
                # chain output emitted so far has been returned to the
                # sink's consumer, so forced observer rounds see them all.
                sink.advance(pointers[-1])
                while (
                    marker_index < len(markers)
                    and markers[marker_index][0] == processed
                ):
                    op = markers[marker_index][2]
                    op.finished = True
                    monitor.record_finish(op.operator_id)
                    marker_index += 1
            if processed >= total:
                break
            headroom = monitor.ticks_until_next_observer()
            target = (
                total if headroom is None else min(processed + headroom, total)
            )
            if marker_index < len(markers) and markers[marker_index][0] < target:
                target = markers[marker_index][0]
            # Observable state first: the record_batch that lands on a
            # cadence multiple fires observers, which must read the state
            # as of tick ``target`` — rows_produced, aggregate groups.
            deltas = []
            for s, stage in enumerate(stages):
                before = pointers[s]
                positions = ownpos[s]
                if _is_np(positions):
                    # target only grows, so the unbounded seek can never
                    # land before the previous pointer.
                    after = int(positions.searchsorted(target))
                else:
                    after = bisect.bisect_left(positions, target, before)
                if after != before:
                    pointers[s] = after
                    stage.op.rows_produced = after
                    deltas.append((stage.op.operator_id, after - before))
            # The output emitted at the window's final tick (if any) is
            # still mid-get_next when an observer fires on that tick: only
            # outputs at strictly earlier positions have been returned.
            if _is_np(top_positions):
                returned = min(
                    int(top_positions.searchsorted(target - 1)), pointers[-1]
                )
            else:
                returned = bisect.bisect_left(
                    top_positions, target - 1, 0, pointers[-1]
                )
            sink.advance(returned)
            for operator_id, count in deltas:
                monitor.record_batch(operator_id, count)
            processed = target

    # -- per-operator stages -----------------------------------------------------

    def _build_stage(self, op: Operator, child: _Batch) -> _Stage:
        kind = type(op)
        if kind is Filter:
            return self._filter_stage(op, child)
        if kind is Project:
            return self._project_stage(op, child)
        if kind is HashJoin:
            return self._hash_join_stage(op, child)
        if kind is IndexNestedLoopsJoin:
            return self._inl_stage(op, child)
        if kind is StreamAggregate:
            return self._stream_aggregate_stage(op, child)
        if kind is Limit:
            return self._limit_stage(op, child)
        return self._distinct_stage(op, child)

    def _filter_stage(self, op: Filter, child: _Batch) -> _Stage:
        n = child.n
        try:
            mask = truth_mask(
                evaluate(op.predicate, child.schema, child.cols, n), n
            )
        except Unvectorizable:
            predicate = op._bound
            mask = [predicate(row) is True for row in child.rows()]
        kept = _mask_indices(mask)
        cols = [_defer(col, kept) for col in child.cols]
        return _Stage(
            op,
            _Batch(op.schema, cols, len(kept)),
            _cons_from_indices(kept, n + 1),
        )

    def _project_stage(self, op: Project, child: _Batch) -> _Stage:
        n = child.n
        cols = []
        try:
            for _, expression in op.outputs:
                cols.append(evaluate(expression, child.schema, child.cols, n))
            batch = _Batch(op.schema, cols, n)
        except Unvectorizable:
            project = op._project
            batch = _rows_to_batch(
                op.schema, [project(row) for row in child.rows()]
            )
        if _use_np():
            cons = _np.arange(1, n + 2, dtype=_np.int64)
            cons[n] = n + 1
        else:
            cons = list(range(1, n + 2))
            cons[n] = n + 1
        return _Stage(op, batch, cons)

    def _join_output(
        self, op, child: _Batch, out_idx, positions, side_batch_cols, outer_first
    ):
        """Joined columns + residual filtering shared by ⋈hash and ⋈INL."""
        matched_side = [_defer(col, positions) for col in side_batch_cols]
        outer_side = [_defer(col, out_idx) for col in child.cols]
        if outer_first:
            cols = outer_side + matched_side
        else:
            cols = matched_side + outer_side
        count = len(out_idx)
        if op.residual is not None and count:
            joined = _Batch(op.schema, cols, count)
            try:
                mask = truth_mask(
                    evaluate(op.residual, op.schema, joined.cols, count),
                    count,
                )
            except Unvectorizable:
                residual = op._residual_fn
                mask = [residual(row) is True for row in joined.rows()]
            kept = _mask_indices(mask)
            out_idx = _gather(out_idx, kept)
            cols = [_defer(col, kept) for col in joined.cols]
            count = len(kept)
        return out_idx, cols, count

    def _hash_join_stage(self, op: HashJoin, child: _Batch) -> _Stage:
        lookup, build_batch = self._builds[op.operator_id]
        n_probe = child.n
        try:
            keys = evaluate(op.probe_key, child.schema, child.cols, n_probe)
        except Unvectorizable:
            probe_fn = op._probe_fn
            keys = [probe_fn(row) for row in child.rows()]
        probe_idx, positions = lookup.probe(keys, n_probe)
        probe_idx, cols, count = self._join_output(
            op, child, probe_idx, positions, build_batch.cols, False
        )
        if op.preserve_probe:
            probe_idx, cols, count = self._preserve_pads(
                op, child, probe_idx, cols, count
            )
        return _Stage(
            op,
            _Batch(op.schema, cols, count),
            _cons_from_indices(probe_idx, n_probe + 1),
        )

    def _preserve_pads(self, op: HashJoin, child: _Batch, probe_idx, cols, count):
        """Probe-preserving outer join: pad matchless probes with NULLs."""
        n_probe = child.n
        build_width = len(op._null_pad)
        if _is_np(probe_idx):
            emitted = _np.bincount(probe_idx, minlength=n_probe)
            pads = _np.flatnonzero(emitted == 0)
            if not len(pads):
                return probe_idx, cols, count
            merged_idx = _np.concatenate((probe_idx, pads))
            order = _np.argsort(merged_idx, kind="stable")
        else:
            emitted = [0] * n_probe
            for j in probe_idx:
                emitted[j] += 1
            pads = [j for j in range(n_probe) if not emitted[j]]
            if not pads:
                return probe_idx, cols, count
            merged_idx = list(probe_idx) + pads
            order = sorted(range(len(merged_idx)), key=merged_idx.__getitem__)
        pad_count = len(pads)
        out_cols = []
        for position, col in enumerate(cols):
            if position < build_width:
                values = tolist(_resolve(col)) + [None] * pad_count
                out_cols.append(_gather(values, order))
            else:
                source = child.cols[position - build_width]
                out_cols.append(_gather(source, _gather(merged_idx, order)))
        return (
            _gather(merged_idx, order),
            out_cols,
            count + pad_count,
        )

    def _inl_stage(self, op: IndexNestedLoopsJoin, child: _Batch) -> _Stage:
        lookup, inner_cols = _index_lookup(op.index)
        n_outer = child.n
        try:
            keys = evaluate(op.outer_key, child.schema, child.cols, n_outer)
        except Unvectorizable:
            key_fn = op._key_fn
            keys = [key_fn(row) for row in child.rows()]
        outer_idx, positions = lookup.probe(keys, n_outer)
        outer_idx, cols, count = self._join_output(
            op, child, outer_idx, positions, inner_cols, True
        )
        return _Stage(
            op,
            _Batch(op.schema, cols, count),
            _cons_from_indices(outer_idx, n_outer + 1),
        )

    def _stream_aggregate_stage(
        self, op: StreamAggregate, child: _Batch
    ) -> _Stage:
        n = child.n
        spec_count = len(op.aggregates)
        if n == 0:
            if op.group_by:
                return _Stage(op, _rows_to_batch(op.schema, []), [1])
            row = op._emit((), _Accumulator(spec_count))
            return _Stage(op, _rows_to_batch(op.schema, [row]), [1, 1])
        if op.group_by:
            key_vcols = _group_key_vcols(op, child)
            starts = _run_starts(key_vcols, n)
        else:
            key_vcols = []
            starts = [0]
        bounds = starts + [n]
        group_count = len(starts)
        sizes = [bounds[g + 1] - bounds[g] for g in range(group_count)]
        reduced = [
            None if vcol is None else _reduce_spec(vcol, None, bounds)
            for vcol in _spec_value_vcols(op, child)
        ]
        cols = [_gather(vcol, starts) for vcol in key_vcols]
        cols += _finalized_spec_columns(op, sizes, reduced)
        # Emitting a group consumes through the next group's first row
        # (the lookahead); the last group drains the child's sentinel.
        cons = [
            bounds[g + 1] + 1 if g < group_count - 1 else n + 1
            for g in range(group_count)
        ]
        cons.append(n + 1)
        return _Stage(op, _Batch(op.schema, cols, group_count), cons)

    def _limit_stage(self, op: Limit, child: _Batch) -> _Stage:
        n = child.n
        first = min(op.offset, n)
        last = min(n, op.offset + op.limit)
        taken = max(0, last - first)
        cols = [_slice_col(col, first, last) for col in child.cols]
        if _use_np():
            cons = _np.arange(
                first + 1, first + taken + 2, dtype=_np.int64
            )
        else:
            cons = list(range(first + 1, first + taken + 2))
        # The sentinel: the child's own sentinel is consumed only when the
        # child ran out before the limit was filled; otherwise the child is
        # abandoned mid-stream (and therefore never finishes).
        cons[taken] = n + 1 if n < op.offset + op.limit else op.offset + op.limit
        return _Stage(op, _Batch(op.schema, cols, taken), cons)

    def _distinct_stage(self, op: Distinct, child: _Batch) -> _Stage:
        # Every column is part of the distinctness key: resolve by indexed
        # access (caching into the batch) before clustering.
        resolved = [child.cols[i] for i in range(len(child.cols))]
        clustered = _cluster_keys(resolved, child.n)
        if clustered is not None:
            # First occurrence of each distinct tuple, already ascending
            # (clusters are ordered by first arrival).
            kept = clustered[0]
        else:
            seen = set()
            kept = []
            for j, row in enumerate(child.rows()):
                if row not in seen:
                    seen.add(row)
                    kept.append(j)
            if _use_np():
                kept = _np.asarray(kept, dtype=_np.int64)
        cols = [_defer(col, kept) for col in child.cols]
        return _Stage(
            op,
            _Batch(op.schema, cols, len(kept)),
            _cons_from_indices(kept, child.n + 1),
        )


# ---------------------------------------------------------------------------
# fallback compiler: vector islands inside a fused program
# ---------------------------------------------------------------------------


class _ColumnarCompiler(_Compiler):
    """The fused compiler, with vectorized blocking islands.

    A Sort/TopN/HashAggregate whose whole subtree is vectorizable runs its
    build as columnar pipeline phases, then emits rows fused-style; every
    other operator compiles exactly as the fused engine would.  This is the
    per-subtree fallback: plans with merge joins, plain nested loops or
    UNION ALL still vectorize the supported islands under them.
    """

    def __init__(self, monitor) -> None:
        super().__init__(monitor)
        self._vec = _VecRunner(monitor)

    def compile(self, op: Operator) -> _Node:
        if type(op) in _BLOCKING_VEC_TYPES and _vec_supported(op):
            return self._compile_vec_island(op)
        return super().compile(op)

    def _compile_vec_island(self, op: Operator) -> _Node:
        acct = self.acct
        cell = acct.cell(op)
        budget = acct.budget
        flush = acct.flush
        vec = self._vec
        kind = type(op)

        def materialized() -> bool:
            if kind is Sort:
                return op._rows is not None
            if kind is TopN:
                return op._buffer is not None
            return op._output is not None

        emitted_cache: List[List[Row]] = []

        def make():
            if not materialized():
                # Ticks pending from enclosing fused generators must land
                # before the island's phases tick the monitor.
                flush()
                sink = _BlockSink(op)
                vec.run_pipeline(op.child, sink)
                emit_batch = sink.emitted_batch()
                emitted_cache[:] = [
                    emit_batch.rows() if emit_batch is not None
                    else _VecRunner._emitted_rows(op)
                ]
                acct.reset_budget()
            elif not emitted_cache:
                emitted_cache.append(_VecRunner._emitted_rows(op))
            for row in emitted_cache[0]:
                op.rows_produced += 1
                cell[0] += 1
                budget[0] -= 1
                if budget[0] <= 0:
                    flush()
                yield row
            acct.finish(op)

        def rewind() -> None:
            # Operator.rewind gives the exact interpreted event cascade and
            # spool semantics (blocking state kept, cursors reset); no part
            # of the island's subtree is compiled, so nothing is shimmed.
            flush()
            op.rewind()

        return _Node(op, make, rewind)


def run_columnar(
    root: Operator, context: Optional[ExecutionContext] = None
) -> List[Row]:
    """Open ``root``, execute it through the columnar engine, close it.

    Tick-for-tick equivalent to ``root.run(context)`` and to
    :func:`repro.engine.compiled.run_fused`: same rows in the same order,
    same per-operator counts, same observer firing instants, same
    finish/rewind event stream (tick events coalesced per replay window on
    the batch-listener channel).
    """
    context = context or ExecutionContext()
    monitor = context.monitor
    root.open(context)
    try:
        if _vec_supported(root):
            runner = _VecRunner(monitor)
            sink = _RootSink()
            runner.run_pipeline(root, sink)
            return sink.rows
        compiler = _ColumnarCompiler(monitor)
        try:
            program = compiler.compile(root)
            compiler.acct.reset_budget()
            return list(program.make())
        finally:
            compiler.acct.flush()
            compiler.remove_shims()
    finally:
        root.close()
