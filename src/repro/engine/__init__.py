"""Execution engine: expressions, physical operators, plans and executor."""

from repro.engine.executor import (
    ExecutionResult,
    execute,
    measure_total_work,
    pipeline_boundary_operators,
)
from repro.engine.monitor import ExecutionMonitor
from repro.engine.plan import Plan

__all__ = [
    "ExecutionMonitor",
    "ExecutionResult",
    "Plan",
    "execute",
    "measure_total_work",
    "pipeline_boundary_operators",
]
