"""Execution engine: expressions, physical operators, plans and executor."""

from repro.engine.executor import (
    DEFAULT_ENGINE,
    ENGINES,
    ExecutionResult,
    execute,
    measure_total_work,
    pipeline_boundary_operators,
    resolve_engine,
)
from repro.engine.monitor import ExecutionMonitor
from repro.engine.plan import Plan

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ExecutionMonitor",
    "ExecutionResult",
    "Plan",
    "execute",
    "measure_total_work",
    "pipeline_boundary_operators",
    "resolve_engine",
]
