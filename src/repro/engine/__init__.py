"""Execution engine: expressions, physical operators, plans and executor."""

import warnings

from repro.engine.executor import (
    ENGINES,
    ExecutionResult,
    default_engine,
    execute,
    measure_total_work,
    pipeline_boundary_operators,
    resolve_engine,
)
from repro.engine.monitor import ExecutionMonitor
from repro.engine.plan import Plan

__all__ = [
    "ENGINES",
    "ExecutionMonitor",
    "ExecutionResult",
    "Plan",
    "default_engine",
    "execute",
    "measure_total_work",
    "pipeline_boundary_operators",
    "resolve_engine",
]


def __getattr__(name: str):
    if name == "DEFAULT_ENGINE":
        warnings.warn(
            "repro.engine.DEFAULT_ENGINE is deprecated; use "
            "repro.api.ExecutionOptions().resolve().engine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.engine.executor import _engine_choice

        return _engine_choice(None)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
