"""Scalar expressions evaluated over rows, with SQL NULL semantics.

Expressions form a small tree language (literals, column references,
comparisons, boolean connectives, arithmetic, BETWEEN/IN/LIKE/CASE).  An
expression is *bound* against a schema once (resolving column names to tuple
positions), yielding a plain Python callable that is then applied per row —
the Volcano operators never re-resolve names in their inner loops.

NULL handling follows SQL's three-valued logic: comparisons and arithmetic
involving NULL yield NULL, AND/OR/NOT use Kleene logic, and a filter keeps a
row only when its predicate is exactly ``True``.
"""

from __future__ import annotations

import abc
import re
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError
from repro.storage.schema import Schema

BoundFn = Callable[[Sequence[object]], object]

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")

_COMPARE_FNS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC_FNS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: None if b == 0 else a / b,
    "%": lambda a, b: None if b == 0 else a % b,
}


def _make_col_lit_factories():
    """Per-operator closure factories for ``row[pos] <op> constant``.

    The hottest comparison shape in every workload; generating the operator
    inline (instead of calling a shared ``compare`` lambda) saves one
    Python frame per evaluated row.
    """
    factories = {}
    for op_name, symbol in (
        ("=", "=="), ("<>", "!="), ("<", "<"),
        ("<=", "<="), (">", ">"), (">=", ">="),
    ):
        namespace: dict = {}
        exec(
            "def factory(position, constant):\n"
            "    def evaluate_col_lit(row):\n"
            "        a = row[position]\n"
            "        if a is None:\n"
            "            return None\n"
            "        return a %s constant\n"
            "    return evaluate_col_lit\n" % (symbol,),
            namespace,
        )
        factories[op_name] = namespace["factory"]
    return factories


_COL_LIT_COMPARE_FACTORIES = _make_col_lit_factories()


class Expression(abc.ABC):
    """Base class for all scalar expression nodes."""

    @abc.abstractmethod
    def bind(self, schema: Schema) -> BoundFn:
        """Resolve column names against ``schema``; return an evaluator."""

    @abc.abstractmethod
    def references(self) -> Tuple[str, ...]:
        """Column names referenced anywhere in this expression tree."""

    def evaluate(self, row: Sequence[object], schema: Schema) -> object:
        """Convenience one-shot evaluation (binds every call; tests only)."""
        return self.bind(schema)(row)

    # Operator sugar so plans read naturally: col("a") == lit(3), etc.
    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, _coerce(other))

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("<>", self, _coerce(other))

    def __lt__(self, other: object) -> "Comparison":
        return Comparison("<", self, _coerce(other))

    def __le__(self, other: object) -> "Comparison":
        return Comparison("<=", self, _coerce(other))

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(">", self, _coerce(other))

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(">=", self, _coerce(other))

    def __add__(self, other: object) -> "Arithmetic":
        return Arithmetic("+", self, _coerce(other))

    def __sub__(self, other: object) -> "Arithmetic":
        return Arithmetic("-", self, _coerce(other))

    def __mul__(self, other: object) -> "Arithmetic":
        return Arithmetic("*", self, _coerce(other))

    def __truediv__(self, other: object) -> "Arithmetic":
        return Arithmetic("/", self, _coerce(other))

    def __mod__(self, other: object) -> "Arithmetic":
        return Arithmetic("%", self, _coerce(other))

    def __hash__(self) -> int:
        return hash(repr(self))


def _coerce(value: object) -> "Expression":
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: object) -> None:
        self.value = value

    def bind(self, schema: Schema) -> BoundFn:
        value = self.value
        return lambda row: value

    def references(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return "lit(%r)" % (self.value,)


class ColumnRef(Expression):
    """A reference to a column by (possibly qualified) name."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ExpressionError("column reference needs a name")
        self.name = name

    def bind(self, schema: Schema) -> BoundFn:
        position = schema.index_of(self.name)
        return lambda row: row[position]

    def references(self) -> Tuple[str, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return "col(%r)" % (self.name,)


class Comparison(Expression):
    """A binary comparison with SQL NULL propagation."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in COMPARISON_OPS:
            raise ExpressionError("unknown comparison operator %r" % (op,))
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> BoundFn:
        compare = _COMPARE_FNS[self.op]
        # Bind-time constant folding: a literal operand is evaluated here,
        # not per row, and a literal NULL makes the whole comparison NULL.
        # ``col <op> literal`` — the overwhelmingly common shape — collapses
        # to a single closure with zero nested calls.
        if isinstance(self.right, Literal):
            b = self.right.value
            if b is None:
                return lambda row: None
            if isinstance(self.left, ColumnRef):
                position = schema.index_of(self.left.name)
                return _COL_LIT_COMPARE_FACTORIES[self.op](position, b)
            left = self.left.bind(schema)

            def evaluate_lit_right(row: Sequence[object]) -> object:
                a = left(row)
                if a is None:
                    return None
                return compare(a, b)

            return evaluate_lit_right
        if isinstance(self.left, Literal):
            a = self.left.value
            if a is None:
                return lambda row: None
            right = self.right.bind(schema)

            def evaluate_lit_left(row: Sequence[object]) -> object:
                b = right(row)
                if b is None:
                    return None
                return compare(a, b)

            return evaluate_lit_left
        if isinstance(self.left, ColumnRef) and isinstance(
            self.right, ColumnRef
        ):
            left_pos = schema.index_of(self.left.name)
            right_pos = schema.index_of(self.right.name)

            def evaluate_col_col(row: Sequence[object]) -> object:
                a = row[left_pos]
                b = row[right_pos]
                if a is None or b is None:
                    return None
                return compare(a, b)

            return evaluate_col_col
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def evaluate(row: Sequence[object]) -> object:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return compare(a, b)

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class Arithmetic(Expression):
    """Binary arithmetic with NULL propagation; division by zero is NULL."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in ARITHMETIC_OPS:
            raise ExpressionError("unknown arithmetic operator %r" % (op,))
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> BoundFn:
        # One closure per operator: string dispatch at bind time, not per
        # row.  / and % keep their division-by-zero-is-NULL guard.  Literal
        # operands fold at bind time (``1 - discount`` evaluates one nested
        # call per row, not two).
        arith = _ARITHMETIC_FNS[self.op]
        if isinstance(self.right, Literal):
            b = self.right.value
            if b is None:
                return lambda row: None
            left = self.left.bind(schema)

            def evaluate_lit_right(row: Sequence[object]) -> object:
                a = left(row)
                if a is None:
                    return None
                return arith(a, b)

            return evaluate_lit_right
        if isinstance(self.left, Literal):
            a = self.left.value
            if a is None:
                return lambda row: None
            right = self.right.bind(schema)

            def evaluate_lit_left(row: Sequence[object]) -> object:
                b = right(row)
                if b is None:
                    return None
                return arith(a, b)

            return evaluate_lit_left
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def evaluate(row: Sequence[object]) -> object:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return arith(a, b)

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class And(Expression):
    """Kleene-logic conjunction over two or more operands."""

    def __init__(self, *operands: Expression) -> None:
        if len(operands) < 2:
            raise ExpressionError("AND needs at least two operands")
        self.operands = tuple(operands)

    def bind(self, schema: Schema) -> BoundFn:
        bound = [operand.bind(schema) for operand in self.operands]
        # Unrolled conjunctions for the common arities: no list iteration,
        # no saw_null flag updates in the inner loop.  Semantics match the
        # generic loop exactly (short-circuit on the first False, NULL only
        # when no operand is False and at least one is NULL).
        if len(bound) == 2:
            f0, f1 = bound

            def evaluate2(row: Sequence[object]) -> object:
                a = f0(row)
                if a is False:
                    return False
                b = f1(row)
                if b is False:
                    return False
                return None if (a is None or b is None) else True

            return evaluate2
        if len(bound) == 3:
            f0, f1, f2 = bound

            def evaluate3(row: Sequence[object]) -> object:
                a = f0(row)
                if a is False:
                    return False
                b = f1(row)
                if b is False:
                    return False
                c = f2(row)
                if c is False:
                    return False
                return None if (a is None or b is None or c is None) else True

            return evaluate3
        if len(bound) == 4:
            f0, f1, f2, f3 = bound

            def evaluate4(row: Sequence[object]) -> object:
                a = f0(row)
                if a is False:
                    return False
                b = f1(row)
                if b is False:
                    return False
                c = f2(row)
                if c is False:
                    return False
                d = f3(row)
                if d is False:
                    return False
                return None if (
                    a is None or b is None or c is None or d is None
                ) else True

            return evaluate4

        def evaluate(row: Sequence[object]) -> object:
            saw_null = False
            for fn in bound:
                value = fn(row)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return tuple(name for operand in self.operands for name in operand.references())

    def __repr__(self) -> str:
        return "AND(%s)" % (", ".join(repr(operand) for operand in self.operands),)


class Or(Expression):
    """Kleene-logic disjunction over two or more operands."""

    def __init__(self, *operands: Expression) -> None:
        if len(operands) < 2:
            raise ExpressionError("OR needs at least two operands")
        self.operands = tuple(operands)

    def bind(self, schema: Schema) -> BoundFn:
        bound = [operand.bind(schema) for operand in self.operands]
        # Mirror of And.bind's unrolled fast paths.
        if len(bound) == 2:
            f0, f1 = bound

            def evaluate2(row: Sequence[object]) -> object:
                a = f0(row)
                if a is True:
                    return True
                b = f1(row)
                if b is True:
                    return True
                return None if (a is None or b is None) else False

            return evaluate2
        if len(bound) == 3:
            f0, f1, f2 = bound

            def evaluate3(row: Sequence[object]) -> object:
                a = f0(row)
                if a is True:
                    return True
                b = f1(row)
                if b is True:
                    return True
                c = f2(row)
                if c is True:
                    return True
                return None if (a is None or b is None or c is None) else False

            return evaluate3

        def evaluate(row: Sequence[object]) -> object:
            saw_null = False
            for fn in bound:
                value = fn(row)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return tuple(name for operand in self.operands for name in operand.references())

    def __repr__(self) -> str:
        return "OR(%s)" % (", ".join(repr(operand) for operand in self.operands),)


class Not(Expression):
    """Kleene-logic negation."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def bind(self, schema: Schema) -> BoundFn:
        bound = self.operand.bind(schema)

        def evaluate(row: Sequence[object]) -> object:
            value = bound(row)
            if value is None:
                return None
            return not value

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def __repr__(self) -> str:
        return "NOT(%r)" % (self.operand,)


class IsNull(Expression):
    """``expr IS NULL`` (or IS NOT NULL with ``negated=True``)."""

    def __init__(self, operand: Expression, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def bind(self, schema: Schema) -> BoundFn:
        bound = self.operand.bind(schema)
        negated = self.negated
        return lambda row: (bound(row) is not None) if negated else (bound(row) is None)

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def __repr__(self) -> str:
        return "IS %sNULL(%r)" % ("NOT " if self.negated else "", self.operand)


class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive on both ends, as in SQL)."""

    def __init__(self, operand: Expression, low: Expression, high: Expression) -> None:
        self.operand = operand
        self.low = low
        self.high = high

    def bind(self, schema: Schema) -> BoundFn:
        # Literal bounds (the usual case) fold at bind time, leaving a
        # closure with a single nested call — or none when the operand is a
        # bare column reference.
        if isinstance(self.low, Literal) and isinstance(self.high, Literal):
            lo = self.low.value
            hi = self.high.value
            if lo is None or hi is None:
                return lambda row: None
            if isinstance(self.operand, ColumnRef):
                position = schema.index_of(self.operand.name)

                def evaluate_col(row: Sequence[object]) -> object:
                    value = row[position]
                    if value is None:
                        return None
                    return lo <= value <= hi  # type: ignore[operator]

                return evaluate_col
            bound = self.operand.bind(schema)

            def evaluate_lit(row: Sequence[object]) -> object:
                value = bound(row)
                if value is None:
                    return None
                return lo <= value <= hi  # type: ignore[operator]

            return evaluate_lit
        bound = self.operand.bind(schema)
        low = self.low.bind(schema)
        high = self.high.bind(schema)

        def evaluate(row: Sequence[object]) -> object:
            value = bound(row)
            lo = low(row)
            hi = high(row)
            if value is None or lo is None or hi is None:
                return None
            return lo <= value <= hi  # type: ignore[operator]

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return (
            self.operand.references() + self.low.references() + self.high.references()
        )

    def __repr__(self) -> str:
        return "BETWEEN(%r, %r, %r)" % (self.operand, self.low, self.high)


class InList(Expression):
    """``expr IN (v1, v2, ...)`` over literal values."""

    def __init__(self, operand: Expression, values: Sequence[object]) -> None:
        self.operand = operand
        self.values = tuple(values)

    def bind(self, schema: Schema) -> BoundFn:
        allowed = set(self.values)
        if isinstance(self.operand, ColumnRef):
            position = schema.index_of(self.operand.name)

            def evaluate_col(row: Sequence[object]) -> object:
                value = row[position]
                if value is None:
                    return None
                return value in allowed

            return evaluate_col
        bound = self.operand.bind(schema)

        def evaluate(row: Sequence[object]) -> object:
            value = bound(row)
            if value is None:
                return None
            return value in allowed

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def __repr__(self) -> str:
        return "IN(%r, %r)" % (self.operand, list(self.values))


class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards (compiled to a regex once)."""

    def __init__(self, operand: Expression, pattern: str) -> None:
        self.operand = operand
        self.pattern = pattern
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        self._compiled = re.compile("^%s$" % (regex,), re.DOTALL)

    def bind(self, schema: Schema) -> BoundFn:
        bound = self.operand.bind(schema)
        compiled = self._compiled

        def evaluate(row: Sequence[object]) -> object:
            value = bound(row)
            if value is None:
                return None
            return compiled.match(str(value)) is not None

        return evaluate

    def references(self) -> Tuple[str, ...]:
        return self.operand.references()

    def __repr__(self) -> str:
        return "LIKE(%r, %r)" % (self.operand, self.pattern)


class Case(Expression):
    """``CASE WHEN cond THEN value ... ELSE value END``."""

    def __init__(
        self,
        branches: Sequence[Tuple[Expression, Expression]],
        default: Optional[Expression] = None,
    ) -> None:
        if not branches:
            raise ExpressionError("CASE needs at least one WHEN branch")
        self.branches = tuple(branches)
        self.default = default if default is not None else Literal(None)

    def bind(self, schema: Schema) -> BoundFn:
        bound = [
            (condition.bind(schema), value.bind(schema))
            for condition, value in self.branches
        ]
        default = self.default.bind(schema)

        def evaluate(row: Sequence[object]) -> object:
            for condition, value in bound:
                if condition(row) is True:
                    return value(row)
            return default(row)

        return evaluate

    def references(self) -> Tuple[str, ...]:
        names: List[str] = []
        for condition, value in self.branches:
            names.extend(condition.references())
            names.extend(value.references())
        names.extend(self.default.references())
        return tuple(names)

    def __repr__(self) -> str:
        return "CASE(%d branches)" % (len(self.branches),)


# -- convenience constructors (the public plan-building vocabulary) -----------


def col(name: str) -> ColumnRef:
    """A column reference."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """A literal value."""
    return Literal(value)


# -- structural analysis helpers ----------------------------------------------


def conjuncts(expression: Expression) -> List[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(expression, And):
        flattened: List[Expression] = []
        for operand in expression.operands:
            flattened.extend(conjuncts(operand))
        return flattened
    return [expression]


def conjoin(parts: Sequence[Expression]) -> Expression:
    """Combine conjuncts back into a single expression."""
    if not parts:
        raise ExpressionError("cannot conjoin an empty list")
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def as_column_equality(expression: Expression) -> Optional[Tuple[str, str]]:
    """If ``expression`` is ``col = col``, return the two column names."""
    if (
        isinstance(expression, Comparison)
        and expression.op == "="
        and isinstance(expression.left, ColumnRef)
        and isinstance(expression.right, ColumnRef)
    ):
        return expression.left.name, expression.right.name
    return None


def as_column_constant(
    expression: Expression,
) -> Optional[Tuple[str, str, object]]:
    """If ``expression`` compares one column with a constant, normalize it.

    Returns ``(column, op, value)`` with the column on the left, or None.
    """
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if isinstance(expression, Comparison):
        if isinstance(expression.left, ColumnRef) and isinstance(
            expression.right, Literal
        ):
            return expression.left.name, expression.op, expression.right.value
        if isinstance(expression.left, Literal) and isinstance(
            expression.right, ColumnRef
        ):
            return expression.right.name, flip[expression.op], expression.left.value
    if isinstance(expression, Between) and isinstance(expression.operand, ColumnRef):
        # Callers that care about BETWEEN should use as_column_range instead.
        return None
    return None


def as_column_range(
    expression: Expression,
) -> Optional[Tuple[str, Optional[object], Optional[object], bool, bool]]:
    """Normalize a range-shaped predicate on a single column.

    Returns ``(column, low, high, low_inclusive, high_inclusive)`` for
    comparisons with constants and BETWEEN, or None.
    """
    if isinstance(expression, Between):
        if isinstance(expression.operand, ColumnRef) and isinstance(
            expression.low, Literal
        ) and isinstance(expression.high, Literal):
            return (
                expression.operand.name,
                expression.low.value,
                expression.high.value,
                True,
                True,
            )
        return None
    simple = as_column_constant(expression)
    if simple is None:
        return None
    column, op, value = simple
    if op == "=":
        return column, value, value, True, True
    if op == "<":
        return column, None, value, True, False
    if op == "<=":
        return column, None, value, True, True
    if op == ">":
        return column, value, None, False, True
    if op == ">=":
        return column, value, None, True, True
    return None
