"""Vectorized expression evaluation over columns, with exact row semantics.

The columnar engine evaluates an :class:`~repro.engine.expressions.Expression`
against a whole batch at once.  The contract is strict bit-identity with the
bound-function path in ``expressions.py``: SQL NULL propagation, Kleene
AND/OR with ``is False`` / ``is True`` identity checks, division by zero as
NULL, bind-time folding of literal NULL operands — every rule is replicated
here, and anything not replicated raises :class:`Unvectorizable` so the
caller can fall back to the row-at-a-time bound function (always correct,
just slower).

Value representation (a "vcol"):

* a NumPy array — NULL-free by construction (operations that can introduce
  NULLs, like division by a zero divisor, demote their result to a list);
* a plain Python list — may contain ``None`` for NULL, one element per row.

NumPy paths are taken only when they are provably equivalent: float64
arithmetic is IEEE-754 like Python floats, int64 comparisons and floored
``%`` match Python ints, ``'<U'`` string comparisons are lexicographic like
``str``.  Anything doubtful (float ``%``, cross-kind IN lists, CASE dtype
merging) runs the exact Python loop instead — over lists, which is still
far cheaper than re-entering the expression interpreter per row.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.expressions import (
    _ARITHMETIC_FNS,
    _COMPARE_FNS,
    And,
    Arithmetic,
    Between,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.storage.schema import Schema

try:  # pragma: no cover - exercised via the no-NumPy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class Unvectorizable(Exception):
    """Raised when an expression has no exact vectorized translation."""


class _Const:
    """A literal operand, kept scalar until an operation needs a column."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value


def _is_np(values: object) -> bool:
    return _np is not None and isinstance(values, _np.ndarray)


def _expand(values, n: int):
    """Materialize a `_Const` into a per-row list; pass columns through."""
    if isinstance(values, _Const):
        return [values.value] * n
    return values


def tolist(values) -> List[object]:
    """A vcol as a plain Python list of native values."""
    if _is_np(values):
        return values.tolist()
    return values


_NP_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate(expr: Expression, schema: Schema, cols: Sequence[object], n: int):
    """Evaluate ``expr`` over a batch; returns a vcol of length ``n``.

    ``cols`` holds one vcol per column of ``schema``.  Raises
    :class:`Unvectorizable` when any node lacks an exact translation.
    """
    return _expand(_ev(expr, schema, cols, n), n)


def truth_mask(values, n: int):
    """Selection mask under SQL's ``value is True`` filter semantics."""
    if isinstance(values, _Const):
        return [values.value is True] * n
    if _is_np(values):
        if values.dtype == _np.bool_:
            return values
        # Row-at-a-time ``value is True`` can never hold for non-bool
        # values (identity, not equality), so the mask is all-False.
        return _np.zeros(n, dtype=bool)
    return [value is True for value in values]


def _ev(expr: Expression, schema, cols, n: int):
    kind = type(expr)
    if kind is ColumnRef:
        return cols[schema.index_of(expr.name)]
    if kind is Literal:
        return _Const(expr.value)
    if kind is Comparison:
        return _ev_compare(expr, schema, cols, n)
    if kind is Arithmetic:
        return _ev_arith(expr, schema, cols, n)
    if kind is And:
        return _ev_connective(expr.operands, schema, cols, n, is_and=True)
    if kind is Or:
        return _ev_connective(expr.operands, schema, cols, n, is_and=False)
    if kind is Not:
        return _ev_not(expr, schema, cols, n)
    if kind is IsNull:
        return _ev_is_null(expr, schema, cols, n)
    if kind is Between:
        return _ev_between(expr, schema, cols, n)
    if kind is InList:
        return _ev_in_list(expr, schema, cols, n)
    if kind is Like:
        return _ev_like(expr, schema, cols, n)
    if kind is Case:
        return _ev_case(expr, schema, cols, n)
    raise Unvectorizable(type(expr).__name__)


def _ev_compare(expr: Comparison, schema, cols, n: int):
    a = _ev(expr.left, schema, cols, n)
    b = _ev(expr.right, schema, cols, n)
    if isinstance(a, _Const) and a.value is None:
        return _Const(None)  # bind-time literal-NULL fold
    if isinstance(b, _Const) and b.value is None:
        return _Const(None)
    compare = _COMPARE_FNS[expr.op]
    if isinstance(a, _Const) and isinstance(b, _Const):
        return _Const(compare(a.value, b.value))
    np_compare = _NP_COMPARE[expr.op]
    if _is_np(a) and _is_np(b):
        try:
            return np_compare(a, b)
        except (TypeError, ValueError):
            raise Unvectorizable("array comparison failed")
    if _is_np(a) and isinstance(b, _Const):
        return _np_scalar_compare(np_compare, a, b.value, False)
    if _is_np(b) and isinstance(a, _Const):
        return _np_scalar_compare(np_compare, b, a.value, True)
    av = tolist(_expand(a, n))
    bv = tolist(_expand(b, n))
    return [
        None if (x is None or y is None) else compare(x, y)
        for x, y in zip(av, bv)
    ]


def _np_scalar_compare(np_compare, arr, scalar, flipped: bool):
    if not _comparable_with(arr, scalar):
        raise Unvectorizable("cross-kind comparison")
    try:
        result = np_compare(scalar, arr) if flipped else np_compare(arr, scalar)
    except (TypeError, ValueError):
        raise Unvectorizable("scalar comparison failed")
    if not (_is_np(result) and result.dtype == _np.bool_):
        raise Unvectorizable("comparison did not broadcast")
    return result


def _comparable_with(arr, scalar) -> bool:
    """True when NumPy's compare agrees with Python's for this pairing."""
    kind = arr.dtype.kind
    if kind in ("i", "f", "b"):
        return type(scalar) in (int, float, bool)
    if kind == "U":
        return type(scalar) is str
    return False


def _ev_arith(expr: Arithmetic, schema, cols, n: int):
    a = _ev(expr.left, schema, cols, n)
    b = _ev(expr.right, schema, cols, n)
    if isinstance(a, _Const) and a.value is None:
        return _Const(None)
    if isinstance(b, _Const) and b.value is None:
        return _Const(None)
    arith = _ARITHMETIC_FNS[expr.op]
    if isinstance(a, _Const) and isinstance(b, _Const):
        return _Const(arith(a.value, b.value))
    op = expr.op
    a_np = _is_np(a) or (isinstance(a, _Const) and type(a.value) in (int, float))
    b_np = _is_np(b) or (isinstance(b, _Const) and type(b.value) in (int, float))
    if a_np and b_np and (_is_np(a) or _is_np(b)):
        av = a.value if isinstance(a, _Const) else a
        bv = b.value if isinstance(b, _Const) else b
        if op in ("+", "-", "*"):
            fn = {"+": _np.add, "-": _np.subtract, "*": _np.multiply}[op]
            return fn(av, bv)
        if op == "/":
            zeros = bv == 0
            has_zero = bool(zeros.any()) if _is_np(zeros) else bool(zeros)
            if not has_zero:
                return _np.true_divide(av, bv)
            with _np.errstate(divide="ignore", invalid="ignore"):
                result = _np.true_divide(av, bv).tolist()
            if _is_np(zeros):
                for index in _np.flatnonzero(zeros).tolist():
                    result[index] = None
                return result
            return [None] * n
        if op == "%":
            # Floored int % matches Python exactly; float % may differ by
            # an ulp between libm implementations, so it runs in Python.
            def _kind(value):
                if _is_np(value):
                    return value.dtype.kind
                return "i" if type(value) is int else "f"

            if _kind(av) == "i" and _kind(bv) == "i":
                zeros = bv == 0
                has_zero = bool(zeros.any()) if _is_np(zeros) else bool(zeros)
                if not has_zero:
                    return _np.mod(av, bv)
    av = tolist(_expand(a, n))
    bv = tolist(_expand(b, n))
    return [
        None if (x is None or y is None) else arith(x, y)
        for x, y in zip(av, bv)
    ]


def _ev_connective(operands, schema, cols, n: int, is_and: bool):
    evaluated = [_ev(operand, schema, cols, n) for operand in operands]
    dominant = False if is_and else True  # the short-circuiting value
    # NULL-free non-bool columns can never be ``is False``/``is True``/None
    # per row, so they contribute nothing to Kleene logic — drop them.
    effective = []
    for value in evaluated:
        if isinstance(value, _Const):
            if value.value is dominant:
                return _Const(dominant)
            if value.value is None or type(value.value) is bool:
                effective.append(value)
            continue
        if _is_np(value) and value.dtype != _np.bool_:
            continue
        effective.append(value)
    if not effective:
        return _Const(not dominant)
    if all(_is_np(value) for value in effective):
        if is_and:
            result = effective[0]
            for value in effective[1:]:
                result = result & value
            return result
        result = effective[0]
        for value in effective[1:]:
            result = result | value
        return result
    lists = [tolist(_expand(value, n)) for value in effective]
    out: List[object] = []
    # Identity checks (``is False`` / ``is True``), not ``in``/``==``: an
    # integer 0 operand must not count as False, matching the interpreter.
    for row_values in zip(*lists):
        dominated = False
        saw_null = False
        for value in row_values:
            if value is dominant:
                dominated = True
                break
            if value is None:
                saw_null = True
        if dominated:
            out.append(dominant)
        elif saw_null:
            out.append(None)
        else:
            out.append(not dominant)
    return out


def _ev_not(expr: Not, schema, cols, n: int):
    value = _ev(expr.operand, schema, cols, n)
    if isinstance(value, _Const):
        inner = value.value
        return _Const(None if inner is None else (not inner))
    if _is_np(value):
        if value.dtype == _np.bool_:
            return ~value
        raise Unvectorizable("NOT over non-boolean column")
    return [None if v is None else (not v) for v in value]


def _ev_is_null(expr: IsNull, schema, cols, n: int):
    value = _ev(expr.operand, schema, cols, n)
    negated = expr.negated
    if isinstance(value, _Const):
        is_null = value.value is None
        return _Const((not is_null) if negated else is_null)
    if _is_np(value):  # NULL-free by construction
        if _np is None:
            raise Unvectorizable("unreachable")
        return (
            _np.ones(n, dtype=bool) if negated else _np.zeros(n, dtype=bool)
        )
    if negated:
        return [v is not None for v in value]
    return [v is None for v in value]


def _ev_between(expr: Between, schema, cols, n: int):
    value = _ev(expr.operand, schema, cols, n)
    low = _ev(expr.low, schema, cols, n)
    high = _ev(expr.high, schema, cols, n)
    literal_bounds = isinstance(expr.low, Literal) and isinstance(
        expr.high, Literal
    )
    if literal_bounds and (expr.low.value is None or expr.high.value is None):
        return _Const(None)  # bind-time fold
    for operand in (value, low, high):
        if isinstance(operand, _Const) and operand.value is None:
            return _Const(None)
    if (
        _is_np(value)
        and isinstance(low, _Const)
        and isinstance(high, _Const)
        and _comparable_with(value, low.value)
        and _comparable_with(value, high.value)
    ):
        return (low.value <= value) & (value <= high.value)
    values = tolist(_expand(value, n))
    lows = tolist(_expand(low, n))
    highs = tolist(_expand(high, n))
    return [
        None if (v is None or lo is None or hi is None) else (lo <= v <= hi)
        for v, lo, hi in zip(values, lows, highs)
    ]


def _ev_in_list(expr: InList, schema, cols, n: int):
    value = _ev(expr.operand, schema, cols, n)
    allowed = set(expr.values)
    if isinstance(value, _Const):
        if value.value is None:
            return _Const(None)
        return _Const(value.value in allowed)
    if _is_np(value) and all(
        _comparable_with(value, item) for item in allowed
    ):
        return _np.isin(value, list(allowed))
    return [None if v is None else (v in allowed) for v in tolist(value)]


def _ev_like(expr: Like, schema, cols, n: int):
    value = _ev(expr.operand, schema, cols, n)
    match = expr._compiled.match
    if isinstance(value, _Const):
        inner = value.value
        if inner is None:
            return _Const(None)
        return _Const(match(str(inner)) is not None)
    return [
        None if v is None else (match(str(v)) is not None)
        for v in tolist(value)
    ]


def _ev_case(expr: Case, schema, cols, n: int):
    condition_lists = []
    value_lists = []
    for condition, value in expr.branches:
        condition_lists.append(
            tolist(_expand(_ev(condition, schema, cols, n), n))
        )
        value_lists.append(tolist(_expand(_ev(value, schema, cols, n), n)))
    default_list = tolist(_expand(_ev(expr.default, schema, cols, n), n))
    out: List[object] = []
    branch_count = len(condition_lists)
    for row in range(n):
        for branch in range(branch_count):
            if condition_lists[branch][row] is True:
                out.append(value_lists[branch][row])
                break
        else:
            out.append(default_list[row])
    return out
