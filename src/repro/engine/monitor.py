"""GetNext instrumentation: the observable side of the work model.

The paper models the execution of a query as a sequence of ``getnext`` calls
across all operators of the plan (§2.2).  :class:`ExecutionMonitor` *is* that
sequence: every counted operator reports each row-returning ``get_next`` call
("a tick"), and observers — progress estimators, trace recorders — are
invoked on a configurable cadence.

Only calls that return a row are counted; the final end-of-stream call is
free.  Which operators count at all is an operator-level property (e.g. the
inner index lookups of an index-nested-loops join are not plan operators and
therefore never tick; see DESIGN.md §4).

Beyond cadence observers, the monitor carries a low-level *event* channel:
tick listeners receive every state transition — ``tick`` (a counted row),
``finish`` (an operator returned end-of-stream), ``rewind`` (a subtree
restarted for a ⋈NL rescan), ``reset`` (counters zeroed) — as
``listener(operator_id, event)``.  This is the feed the incremental
:class:`repro.core.bounds.BoundsTracker` uses to maintain dirty sets instead
of re-walking the plan on every sample.

A parallel *batch* channel (``add_batch_listener``) delivers the same
events with EVENT_TICK coalesced per ``record_batch`` call; together with
:meth:`ExecutionMonitor.ticks_until_next_observer` it lets the fused engine
(:mod:`repro.engine.compiled`) account whole row batches in O(1) while
firing every cadence observer at exactly the same tick numbers as the
row-at-a-time path.

Operators marked as *pipeline boundaries* (blocking operators and the nodes
that feed them) additionally force all observers to run the moment they
finish, so blocking-operator transitions are always sampled regardless of
the observer cadence.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

Observer = Callable[["ExecutionMonitor"], None]
#: ``listener(operator_id, event)`` with event one of the EVENT_* constants
TickListener = Callable[[int, str], None]
#: ``listener(operator_id, event, n)`` — ``n`` is the number of coalesced
#: ticks for EVENT_TICK and 0 for finish/rewind/reset
BatchListener = Callable[[int, str, int], None]

EVENT_TICK = "tick"
EVENT_FINISH = "finish"
EVENT_REWIND = "rewind"
EVENT_RESET = "reset"


class ExecutionMonitor:
    """Counts getnext calls per operator and drives tick observers."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._labels: Dict[int, str] = {}
        self.total_ticks = 0
        #: True while observers run from :meth:`notify_now` (a boundary- or
        #: caller-forced round, as opposed to a cadence firing); observers
        #: that must treat forced rounds specially read this flag
        self.forced_notification = False
        self._observers: List[Tuple[int, Observer]] = []
        self._tick_listeners: List[TickListener] = []
        self._batch_listeners: List[BatchListener] = []
        self._boundary_ops: frozenset = frozenset()
        #: set once the per-tick-listener batch-degradation warning fired
        self._warned_tick_fanout = False

    # -- operator registration -------------------------------------------------

    def register(self, operator_id: int, label: str) -> None:
        """Declare a counted operator before execution begins."""
        self._counts.setdefault(operator_id, 0)
        self._labels[operator_id] = label

    # -- ticking ----------------------------------------------------------------

    def record(self, operator_id: int) -> None:
        """One counted getnext call returned a row on ``operator_id``."""
        self._counts[operator_id] = self._counts.get(operator_id, 0) + 1
        total = self.total_ticks + 1
        self.total_ticks = total
        if self._tick_listeners:
            for listener in self._tick_listeners:
                listener(operator_id, EVENT_TICK)
        if self._batch_listeners:
            for listener in self._batch_listeners:
                listener(operator_id, EVENT_TICK, 1)
        if self._observers:
            for every, observer in self._observers:
                if total % every == 0:
                    observer(self)

    def record_batch(self, operator_id: int, n: int) -> None:
        """``n`` counted getnext calls on ``operator_id``, coalesced.

        Equivalent to ``n`` calls to :meth:`record`, except that batch
        listeners are invoked once with the coalesced count and cadence
        observers fire once per cadence multiple the batch *crosses* (an
        oversized batch crossing k multiples of an observer's ``every``
        fires that observer k times — the same number of firings as k
        row-at-a-time ticks, though every firing sees the post-batch
        total).  Callers who need observers at *exactly* the interpreted
        tick numbers (the fused and columnar engines) must keep ``n``
        within :meth:`ticks_until_next_observer`, so the batch lands
        precisely on the next cadence multiple and each observer fires at
        most once.  Per-tick listeners still receive one event per tick —
        a Python loop of ``n`` calls that erases the batching gain, so
        attaching one alongside batched engines warns once (see
        :meth:`add_tick_listener`).
        """
        if n <= 0:
            return
        self._counts[operator_id] = self._counts.get(operator_id, 0) + n
        before = self.total_ticks
        total = before + n
        self.total_ticks = total
        if self._tick_listeners:
            if n > 1 and not self._warned_tick_fanout:
                self._warned_tick_fanout = True
                # Lazy import: repro.core pulls in the engine package.
                from repro.core.observe import warn_once

                warn_once(
                    "per-tick-listener-batch-fanout",
                    "a per-tick listener is attached while ticks are "
                    "recorded in batches; record_batch degrades to one "
                    "Python call per tick, erasing the batching gain — "
                    "subscribe via add_batch_listener instead",
                )
            for listener in self._tick_listeners:
                for _ in range(n):
                    listener(operator_id, EVENT_TICK)
        if self._batch_listeners:
            for listener in self._batch_listeners:
                listener(operator_id, EVENT_TICK, n)
        if self._observers:
            for every, observer in self._observers:
                crossings = total // every - before // every
                for _ in range(crossings):
                    observer(self)

    def ticks_until_next_observer(self) -> Optional[int]:
        """Ticks left before any cadence observer is due, or None if none.

        This is the batching headroom: a ``record_batch`` of at most this
        many ticks fires each observer at exactly the tick number the
        row-at-a-time path would have.
        """
        if not self._observers:
            return None
        total = self.total_ticks
        return min(every - total % every for every, _ in self._observers)

    def record_finish(self, operator_id: int) -> None:
        """``operator_id`` returned end-of-stream (not a counted tick).

        If the operator was marked as a pipeline boundary, all observers run
        immediately: blocking-operator transitions (a sort finishing its
        input, a hash join completing its build) are sampled even when they
        fall between cadence points.
        """
        for listener in self._tick_listeners:
            listener(operator_id, EVENT_FINISH)
        for listener in self._batch_listeners:
            listener(operator_id, EVENT_FINISH, 0)
        if operator_id in self._boundary_ops:
            self.notify_now()

    def record_rewind(self, operator_id: int) -> None:
        """``operator_id`` restarted for a rescan (⋈NL inner side)."""
        for listener in self._tick_listeners:
            listener(operator_id, EVENT_REWIND)
        for listener in self._batch_listeners:
            listener(operator_id, EVENT_REWIND, 0)

    def notify_now(self) -> None:
        """Force all observers to run (used at pipeline/plan boundaries).

        :attr:`forced_notification` is True for the duration, so observers
        can distinguish a forced round from a cadence firing (the runner
        pins boundary-forced samples against trace decimation).
        """
        self.forced_notification = True
        try:
            for _, observer in self._observers:
                observer(self)
        finally:
            self.forced_notification = False

    # -- observers ---------------------------------------------------------------

    def add_observer(self, observer: Observer, every: int = 1) -> None:
        """Invoke ``observer(self)`` after every ``every``-th tick."""
        if every < 1:
            raise ValueError("observer cadence must be >= 1")
        self._observers.append((every, observer))

    def set_observer_cadence(self, observer: Observer, every: int) -> None:
        """Retune a registered observer's cadence mid-run.

        Takes effect from the next recorded tick.  Safe to call from inside
        the observer itself: the row-at-a-time path re-reads the observer
        list on every tick, and the fused engine re-reads
        :meth:`ticks_until_next_observer` after every flush, so both engines
        pick the new cadence up at exactly the same tick number.
        """
        if every < 1:
            raise ValueError("observer cadence must be >= 1")
        rebound: List[Tuple[int, Observer]] = []
        found = False
        for current, existing in self._observers:
            if existing is observer:
                rebound.append((every, existing))
                found = True
            else:
                rebound.append((current, existing))
        if not found:
            raise ValueError("observer is not registered")
        self._observers = rebound

    def clear_observers(self) -> None:
        self._observers = []

    # -- event listeners ----------------------------------------------------------

    def add_tick_listener(self, listener: TickListener) -> None:
        """Subscribe to every tick/finish/rewind/reset event (hot path).

        Under the batched engines this forces :meth:`record_batch` into a
        Python loop of one call per coalesced tick — the first such batch
        warns once.  Internal consumers all use the batch channel; this
        channel remains for per-event diagnostics and tests.
        """
        self._tick_listeners.append(listener)

    def remove_tick_listener(self, listener: TickListener) -> None:
        self._tick_listeners = [l for l in self._tick_listeners if l is not listener]

    def add_batch_listener(self, listener: BatchListener) -> None:
        """Subscribe as ``listener(operator_id, event, n)``.

        Batch listeners see EVENT_TICK coalesced (one call per recorded
        batch, with the tick count as ``n``); finish/rewind/reset arrive
        individually with ``n == 0``.  Consumers whose per-tick work is
        additive (counters) or idempotent (dirty marking) should prefer
        this channel — it is what keeps the fused engine's accounting flat.
        """
        self._batch_listeners.append(listener)

    def remove_batch_listener(self, listener: BatchListener) -> None:
        self._batch_listeners = [
            l for l in self._batch_listeners if l is not listener
        ]

    # -- pipeline boundaries ------------------------------------------------------

    def mark_pipeline_boundaries(self, operator_ids: Iterable[int]) -> None:
        """Operators whose ``finish`` constitutes a pipeline boundary."""
        self._boundary_ops = frozenset(operator_ids)

    # -- inspection ----------------------------------------------------------------

    def count_for(self, operator_id: int) -> int:
        """Getnext calls recorded so far for one operator."""
        return self._counts.get(operator_id, 0)

    def counts(self) -> Dict[int, int]:
        """A snapshot of all per-operator counts."""
        return dict(self._counts)

    def label_for(self, operator_id: int) -> str:
        return self._labels.get(operator_id, "op#%d" % (operator_id,))

    def reset(self) -> None:
        """Zero all counters (observers and listeners are kept)."""
        self._counts = {key: 0 for key in self._counts}
        self.total_ticks = 0
        for listener in self._tick_listeners:
            listener(0, EVENT_RESET)
        for listener in self._batch_listeners:
            listener(0, EVENT_RESET, 0)

    def __repr__(self) -> str:
        return "ExecutionMonitor(%d ticks over %d operators)" % (
            self.total_ticks,
            len(self._counts),
        )
