"""GetNext instrumentation: the observable side of the work model.

The paper models the execution of a query as a sequence of ``getnext`` calls
across all operators of the plan (§2.2).  :class:`ExecutionMonitor` *is* that
sequence: every counted operator reports each row-returning ``get_next`` call
("a tick"), and observers — progress estimators, trace recorders — are
invoked on a configurable cadence.

Only calls that return a row are counted; the final end-of-stream call is
free.  Which operators count at all is an operator-level property (e.g. the
inner index lookups of an index-nested-loops join are not plan operators and
therefore never tick; see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

Observer = Callable[["ExecutionMonitor"], None]


class ExecutionMonitor:
    """Counts getnext calls per operator and drives tick observers."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._labels: Dict[int, str] = {}
        self.total_ticks = 0
        self._observers: List[Tuple[int, Observer]] = []

    # -- operator registration -------------------------------------------------

    def register(self, operator_id: int, label: str) -> None:
        """Declare a counted operator before execution begins."""
        self._counts.setdefault(operator_id, 0)
        self._labels[operator_id] = label

    # -- ticking ----------------------------------------------------------------

    def record(self, operator_id: int) -> None:
        """One counted getnext call returned a row on ``operator_id``."""
        self._counts[operator_id] = self._counts.get(operator_id, 0) + 1
        self.total_ticks += 1
        for every, observer in self._observers:
            if self.total_ticks % every == 0:
                observer(self)

    def notify_now(self) -> None:
        """Force all observers to run (used at pipeline/plan boundaries)."""
        for _, observer in self._observers:
            observer(self)

    # -- observers ---------------------------------------------------------------

    def add_observer(self, observer: Observer, every: int = 1) -> None:
        """Invoke ``observer(self)`` after every ``every``-th tick."""
        if every < 1:
            raise ValueError("observer cadence must be >= 1")
        self._observers.append((every, observer))

    def clear_observers(self) -> None:
        self._observers = []

    # -- inspection ----------------------------------------------------------------

    def count_for(self, operator_id: int) -> int:
        """Getnext calls recorded so far for one operator."""
        return self._counts.get(operator_id, 0)

    def counts(self) -> Dict[int, int]:
        """A snapshot of all per-operator counts."""
        return dict(self._counts)

    def label_for(self, operator_id: int) -> str:
        return self._labels.get(operator_id, "op#%d" % (operator_id,))

    def reset(self) -> None:
        """Zero all counters (observers are kept)."""
        self._counts = {key: 0 for key in self._counts}
        self.total_ticks = 0

    def __repr__(self) -> str:
        return "ExecutionMonitor(%d ticks over %d operators)" % (
            self.total_ticks,
            len(self._counts),
        )
