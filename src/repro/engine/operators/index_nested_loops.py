"""Index nested-loops join (⋈INL): per outer row, look up the inner index.

The inner side is an *access path* (a hash or sorted index on the inner
table), not a plan operator — matching the work-model calibration in
DESIGN.md §4: the lookups themselves do not tick the monitor; only the join's
own output rows count.  This is exactly the operator the paper's lower bound
(§3, Example 1) is built around: a single outer tuple can silently trigger an
enormous number of inner matches.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.engine.expressions import BoundFn, ColumnRef, Expression
from repro.engine.operators.base import Operator, UnaryOperator
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import Row

InnerIndex = Union[HashIndex, SortedIndex]


class IndexNestedLoopsJoin(UnaryOperator):
    """Equality ⋈INL driven by the outer child.

    ``outer_key`` is evaluated per outer row and looked up in ``index``;
    matching inner rows are concatenated to the outer row.  An optional
    ``residual`` predicate filters the joined row.  The output schema is the
    outer schema plus the inner table's schema qualified by ``inner_alias``.
    """

    is_nested_iteration = True

    def __init__(
        self,
        outer: Operator,
        index: InnerIndex,
        outer_key: Expression,
        inner_alias: Optional[str] = None,
        residual: Optional[Expression] = None,
        linear: bool = False,
    ) -> None:
        qualifier = inner_alias or index.table.name
        inner_schema = index.table.schema.qualified(qualifier)
        super().__init__(outer.schema.concat(inner_schema), outer)
        self.index = index
        self.outer_key = outer_key
        self.inner_alias = qualifier
        self.residual = residual
        self.is_linear = linear
        self._key_fn: Optional[BoundFn] = None
        self._residual_fn: Optional[BoundFn] = None
        self._outer_row: Optional[Row] = None
        self._matches: List[Row] = []
        self._match_cursor = 0

    @property
    def name(self) -> str:
        return "IndexNestedLoopsJoin"

    def describe(self) -> str:
        return "IndexNestedLoopsJoin(%r = %s.%s)" % (
            self.outer_key,
            self.inner_alias,
            self.index.column,
        )

    @property
    def outer(self) -> Operator:
        return self.child

    def _open(self) -> None:
        self._key_fn = self.outer_key.bind(self.child.schema)
        self._residual_fn = (
            self.residual.bind(self.schema) if self.residual is not None else None
        )
        self._outer_row = None
        self._matches = []
        self._match_cursor = 0

    def _next(self) -> Optional[Row]:
        assert self._key_fn is not None
        while True:
            while self._match_cursor < len(self._matches):
                assert self._outer_row is not None
                joined = self._outer_row + self._matches[self._match_cursor]
                self._match_cursor += 1
                if self._residual_fn is None or self._residual_fn(joined) is True:
                    return joined
            self._outer_row = self.child.get_next()
            if self._outer_row is None:
                return None
            key = self._key_fn(self._outer_row)
            # NULL keys never match (SQL equality semantics).
            self._matches = [] if key is None else self.index.lookup(key)
            self._match_cursor = 0
