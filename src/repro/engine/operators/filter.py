"""Filter (σ): keep rows whose predicate evaluates to exactly TRUE."""

from __future__ import annotations

from typing import Optional

from repro.engine.expressions import BoundFn, Expression
from repro.engine.operators.base import Operator, UnaryOperator
from repro.storage.table import Row


class Filter(UnaryOperator):
    """Relational selection with SQL semantics (NULL predicate drops rows)."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        super().__init__(child.schema, child)
        self.predicate = predicate
        self._bound: Optional[BoundFn] = None

    @property
    def name(self) -> str:
        return "Filter"

    def describe(self) -> str:
        return "Filter(%r)" % (self.predicate,)

    def _open(self) -> None:
        self._bound = self.predicate.bind(self.child.schema)

    def _next(self) -> Optional[Row]:
        assert self._bound is not None
        while True:
            row = self.child.get_next()
            if row is None:
                return None
            if self._bound(row) is True:
                return row
