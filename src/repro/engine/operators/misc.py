"""Auxiliary operators: LIMIT, UNION ALL, DISTINCT.

These round out the operator set so the SQL front end can cover the TPC-H
query shapes; none of them changes the progress-estimation story (all are
linear, and only DISTINCT's dedup state is worth a remark — it streams,
emitting a row on first sight, so it does not end a pipeline).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.engine.operators.base import Operator, UnaryOperator
from repro.errors import PlanError
from repro.storage.table import Row


class Limit(UnaryOperator):
    """Return at most ``limit`` rows, after skipping ``offset``."""

    def __init__(self, child: Operator, limit: int, offset: int = 0) -> None:
        if limit < 0 or offset < 0:
            raise PlanError("limit and offset must be non-negative")
        super().__init__(child.schema, child)
        self.limit = limit
        self.offset = offset
        self._skipped = 0
        self._returned = 0

    @property
    def name(self) -> str:
        return "Limit"

    def describe(self) -> str:
        if self.offset:
            return "Limit(%d offset %d)" % (self.limit, self.offset)
        return "Limit(%d)" % (self.limit,)

    def _open(self) -> None:
        self._skipped = 0
        self._returned = 0

    def _next(self) -> Optional[Row]:
        while self._skipped < self.offset:
            if self.child.get_next() is None:
                return None
            self._skipped += 1
        if self._returned >= self.limit:
            return None
        row = self.child.get_next()
        if row is None:
            return None
        self._returned += 1
        return row


class UnionAll(Operator):
    """Concatenate any number of schema-compatible inputs, in order."""

    def __init__(self, *children: Operator) -> None:
        if len(children) < 2:
            raise PlanError("UNION ALL needs at least two inputs")
        first = children[0].schema
        for child in children[1:]:
            if len(child.schema) != len(first):
                raise PlanError("UNION ALL inputs must have the same arity")
        super().__init__(first, list(children))
        self._current = 0

    @property
    def name(self) -> str:
        return "UnionAll"

    def describe(self) -> str:
        return "UnionAll(%d inputs)" % (len(self.children),)

    def _open(self) -> None:
        self._current = 0

    def _next(self) -> Optional[Row]:
        while self._current < len(self.children):
            row = self.children[self._current].get_next()
            if row is not None:
                return row
            self._current += 1
        return None


class Distinct(UnaryOperator):
    """Streaming duplicate elimination (emit each distinct row once)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.schema, child)
        self._seen: Set[Tuple[object, ...]] = set()

    @property
    def name(self) -> str:
        return "Distinct"

    def _open(self) -> None:
        self._seen = set()

    def _next(self) -> Optional[Row]:
        while True:
            row = self.child.get_next()
            if row is None:
                return None
            if row not in self._seen:
                self._seen.add(row)
                return row

    def _close(self) -> None:
        self._seen = set()
