"""Leaf row sources: full table scans and literal row sources.

A :class:`TableScan` returns rows in the table's stored order — the paper's
adversarial arguments depend on scan order being exactly the storage order,
so no reordering ever happens here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.operators.base import LeafOperator
from repro.storage.schema import Schema
from repro.storage.table import Row, Table


class TableScan(LeafOperator):
    """Sequential scan of a heap table, in stored row order.

    ``alias`` re-qualifies the output schema, so the same table can appear
    twice in a plan under different names.
    """

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        qualifier = alias or table.name
        super().__init__(table.schema.qualified(qualifier))
        self.table = table
        self.alias = qualifier
        self._cursor = 0

    @property
    def name(self) -> str:
        return "TableScan"

    def describe(self) -> str:
        return "TableScan(%s as %s)" % (self.table.name, self.alias)

    def _open(self) -> None:
        self._cursor = 0

    def _next(self) -> Optional[Row]:
        if self._cursor >= len(self.table):
            return None
        row = self.table[self._cursor]
        self._cursor += 1
        return row

    def base_cardinality(self) -> int:
        """Exact input size — 'accurately available from the catalogs'."""
        return len(self.table)


class RowSource(LeafOperator):
    """A leaf that yields a fixed list of rows (tests and VALUES clauses)."""

    def __init__(self, schema: Schema, rows: Sequence[Row]) -> None:
        super().__init__(schema)
        self.rows = [tuple(row) for row in rows]
        self._cursor = 0

    @property
    def name(self) -> str:
        return "RowSource"

    def describe(self) -> str:
        return "RowSource(%d rows)" % (len(self.rows),)

    def _open(self) -> None:
        self._cursor = 0

    def _next(self) -> Optional[Row]:
        if self._cursor >= len(self.rows):
            return None
        row = self.rows[self._cursor]
        self._cursor += 1
        return row

    def base_cardinality(self) -> int:
        return len(self.rows)
