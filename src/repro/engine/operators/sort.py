"""Sort: a blocking operator that materializes and orders its input.

Sorting ends a pipeline in the paper's decomposition: the child's getnext
calls all happen before the sort's first output row, after which the sort
drives a new pipeline with an exactly known cardinality (its input count) —
which is why bounds become tight the moment a sort finishes consuming.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.expressions import Expression
from repro.engine.operators.base import Operator, UnaryOperator
from repro.errors import PlanError
from repro.storage.table import Row


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY term: an expression plus a direction."""

    expression: Expression
    descending: bool = False


def _null_first_key(value: object):
    """Sort key wrapper placing NULLs first and avoiding mixed-type compares."""
    return (value is not None, value)


class Sort(UnaryOperator):
    """Full in-memory sort over one or more keys (stable, NULLs first)."""

    is_blocking = True

    def __init__(self, child: Operator, keys: Sequence[SortKey]) -> None:
        if not keys:
            raise PlanError("sort needs at least one key")
        super().__init__(child.schema, child)
        self.keys = list(keys)
        self._rows: Optional[List[Row]] = None
        self._cursor = 0

    @property
    def name(self) -> str:
        return "Sort"

    def describe(self) -> str:
        terms = ", ".join(
            "%r%s" % (key.expression, " DESC" if key.descending else "")
            for key in self.keys
        )
        return "Sort(%s)" % (terms,)

    def _open(self) -> None:
        self._rows = None
        self._cursor = 0

    def _rewind(self) -> None:
        # Keep the materialized sort (spool semantics on ⋈NL rescans).
        self._cursor = 0

    def _materialize(self) -> None:
        rows: List[Row] = []
        while True:
            row = self.child.get_next()
            if row is None:
                break
            rows.append(row)
        # Stable multi-key sort: apply keys from least to most significant.
        for key in reversed(self.keys):
            bound = key.expression.bind(self.child.schema)
            rows.sort(
                key=lambda row, fn=bound: _null_first_key(fn(row)),
                reverse=key.descending,
            )
        self._rows = rows

    def _next(self) -> Optional[Row]:
        if self._rows is None:
            self._materialize()
        assert self._rows is not None
        if self._cursor >= len(self._rows):
            return None
        row = self._rows[self._cursor]
        self._cursor += 1
        return row

    def _close(self) -> None:
        self._rows = None

    def materialized_count(self) -> Optional[int]:
        """Exact output cardinality once the input is consumed, else None.

        The progress layer uses this: the moment a sort finishes consuming,
        the cardinality of the pipeline it drives becomes exactly known.
        """
        return None if self._rows is None else len(self._rows)
