"""Top-N: the fused sort+limit operator real optimizers emit for
``ORDER BY ... LIMIT n``.

Blocking like a sort (it must see every input row), but it only ever
buffers ``limit`` rows, and its output cardinality is *known in advance* to
be ``min(limit, |input|)`` — which makes its bounds the tightest of any
blocking operator and is why the planner prefers it for top-k queries.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.engine.operators.base import Operator, UnaryOperator
from repro.engine.operators.sort import SortKey, _null_first_key
from repro.errors import PlanError
from repro.storage.table import Row


class _OrderedRow:
    """A row wrapped with its sort key; comparable per the key spec."""

    __slots__ = ("key", "row")

    def __init__(self, key: Tuple, row: Row) -> None:
        self.key = key
        self.row = row

    def __lt__(self, other: "_OrderedRow") -> bool:
        return self.key < other.key


class TopN(UnaryOperator):
    """Keep the ``limit`` smallest rows under the given sort keys.

    Descending keys are supported by negating numeric values and by a
    generic inversion wrapper for other types.
    """

    is_blocking = True

    def __init__(self, child: Operator, keys: Sequence[SortKey], limit: int) -> None:
        if not keys:
            raise PlanError("TopN needs at least one sort key")
        if limit < 0:
            raise PlanError("TopN limit must be non-negative")
        super().__init__(child.schema, child)
        self.keys = list(keys)
        self.limit = limit
        self._buffer: Optional[List[_OrderedRow]] = None
        self._cursor = 0

    @property
    def name(self) -> str:
        return "TopN"

    def describe(self) -> str:
        terms = ", ".join(
            "%r%s" % (key.expression, " DESC" if key.descending else "")
            for key in self.keys
        )
        return "TopN(%d by %s)" % (self.limit, terms)

    def _open(self) -> None:
        self._buffer = None
        self._cursor = 0

    def _rewind(self) -> None:
        # Spool semantics: keep the materialized top-N on rescans.
        self._cursor = 0

    def _key_functions(self):
        return [
            (key.expression.bind(self.child.schema), key.descending)
            for key in self.keys
        ]

    def _row_key(self, row: Row, functions) -> Tuple:
        parts = []
        for fn, descending in functions:
            base = _null_first_key(fn(row))
            parts.append(_Inverted(base) if descending else base)
        return tuple(parts)

    def _materialize(self) -> None:
        functions = self._key_functions()
        buffer: List[_OrderedRow] = []
        while True:
            row = self.child.get_next()
            if row is None:
                break
            if self.limit == 0:
                continue  # still drain the child (blocking contract)
            entry = _OrderedRow(self._row_key(row, functions), row)
            if len(buffer) < self.limit:
                bisect.insort(buffer, entry)
            elif entry < buffer[-1]:
                bisect.insort(buffer, entry)
                buffer.pop()
        self._buffer = buffer

    def _next(self) -> Optional[Row]:
        if self._buffer is None:
            self._materialize()
        assert self._buffer is not None
        if self._cursor >= len(self._buffer):
            return None
        row = self._buffer[self._cursor].row
        self._cursor += 1
        return row

    def _close(self) -> None:
        self._buffer = None

    def materialized_count(self) -> Optional[int]:
        """Exact output cardinality once the input is drained, else None."""
        return None if self._buffer is None else len(self._buffer)


class _Inverted:
    """Reverses the ordering of any comparable value (for DESC keys)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Inverted") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and self.value == other.value
