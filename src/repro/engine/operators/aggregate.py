"""Grouping and aggregation (γ): hash-based and stream variants.

:class:`HashAggregate` is blocking (it consumes its whole input before
emitting groups) and therefore ends a pipeline.  :class:`StreamAggregate`
requires input sorted on the grouping keys and emits each group as it
closes, staying inside the pipeline — this distinction matters to the
pipeline decomposition that the dne estimator is built on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.expressions import BoundFn, ColumnRef, Expression
from repro.engine.operators.base import Operator, UnaryOperator
from repro.errors import PlanError
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Row


class AggregateKind(enum.Enum):
    COUNT_STAR = "count(*)"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: a kind, its argument, and an output name."""

    kind: AggregateKind
    argument: Optional[Expression]
    output_name: str

    def __post_init__(self) -> None:
        needs_argument = self.kind is not AggregateKind.COUNT_STAR
        if needs_argument and self.argument is None:
            raise PlanError("%s needs an argument" % (self.kind.value,))

    @property
    def output_type(self) -> ColumnType:
        if self.kind in (AggregateKind.COUNT_STAR, AggregateKind.COUNT):
            return ColumnType.INT
        return ColumnType.FLOAT


def count_star(output_name: str = "count") -> AggregateSpec:
    return AggregateSpec(AggregateKind.COUNT_STAR, None, output_name)


def count(argument: Expression, output_name: str = "count") -> AggregateSpec:
    return AggregateSpec(AggregateKind.COUNT, argument, output_name)


def agg_sum(argument: Expression, output_name: str = "sum") -> AggregateSpec:
    return AggregateSpec(AggregateKind.SUM, argument, output_name)


def agg_avg(argument: Expression, output_name: str = "avg") -> AggregateSpec:
    return AggregateSpec(AggregateKind.AVG, argument, output_name)


def agg_min(argument: Expression, output_name: str = "min") -> AggregateSpec:
    return AggregateSpec(AggregateKind.MIN, argument, output_name)


def agg_max(argument: Expression, output_name: str = "max") -> AggregateSpec:
    return AggregateSpec(AggregateKind.MAX, argument, output_name)


class _Accumulator:
    """Running state for all aggregates of one group."""

    __slots__ = ("count_star", "counts", "sums", "mins", "maxs")

    def __init__(self, spec_count: int) -> None:
        self.count_star = 0
        self.counts = [0] * spec_count
        self.sums: List[Optional[float]] = [None] * spec_count
        self.mins: List[object] = [None] * spec_count
        self.maxs: List[object] = [None] * spec_count

    def update(self, row: Row, argument_fns: Sequence[Optional[BoundFn]]) -> None:
        self.count_star += 1
        for i, fn in enumerate(argument_fns):
            if fn is None:
                continue
            value = fn(row)
            if value is None:
                continue  # SQL aggregates ignore NULLs
            self.counts[i] += 1
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.sums[i] = value if self.sums[i] is None else self.sums[i] + value
            if self.mins[i] is None or value < self.mins[i]:  # type: ignore[operator]
                self.mins[i] = value
            if self.maxs[i] is None or value > self.maxs[i]:  # type: ignore[operator]
                self.maxs[i] = value

    def finalize(self, specs: Sequence[AggregateSpec]) -> Tuple[object, ...]:
        values: List[object] = []
        for i, spec in enumerate(specs):
            if spec.kind is AggregateKind.COUNT_STAR:
                values.append(self.count_star)
            elif spec.kind is AggregateKind.COUNT:
                values.append(self.counts[i])
            elif spec.kind is AggregateKind.SUM:
                values.append(self.sums[i])
            elif spec.kind is AggregateKind.AVG:
                values.append(
                    None if self.counts[i] == 0 else self.sums[i] / self.counts[i]  # type: ignore[operator]
                )
            elif spec.kind is AggregateKind.MIN:
                values.append(self.mins[i])
            else:
                values.append(self.maxs[i])
        return tuple(values)


def _aggregate_schema(
    child: Operator,
    group_by: Sequence[Tuple[str, Expression]],
    aggregates: Sequence[AggregateSpec],
) -> Schema:
    columns: List[Column] = []
    for name, expression in group_by:
        if isinstance(expression, ColumnRef):
            source = child.schema.column_at(child.schema.index_of(expression.name))
            columns.append(Column(name, source.type, source.nullable))
        else:
            columns.append(Column(name, ColumnType.FLOAT, True))
    for spec in aggregates:
        columns.append(Column(spec.output_name, spec.output_type, True))
    return Schema.of(None, columns)


class _AggregateBase(UnaryOperator):
    """Shared machinery for hash and stream aggregation."""

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[Tuple[str, Expression]],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        if not group_by and not aggregates:
            raise PlanError("aggregate needs grouping columns or aggregates")
        super().__init__(_aggregate_schema(child, group_by, aggregates), child)
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self._group_fns: List[BoundFn] = []
        self._argument_fns: List[Optional[BoundFn]] = []

    def _bind(self) -> None:
        self._group_fns = [
            expression.bind(self.child.schema) for _, expression in self.group_by
        ]
        self._argument_fns = [
            spec.argument.bind(self.child.schema) if spec.argument is not None else None
            for spec in self.aggregates
        ]

    def _group_key(self, row: Row) -> Tuple[object, ...]:
        return tuple(fn(row) for fn in self._group_fns)

    def _emit(self, key: Tuple[object, ...], accumulator: _Accumulator) -> Row:
        return key + accumulator.finalize(self.aggregates)


class HashAggregate(_AggregateBase):
    """Hash-based γ: blocking; groups emitted in first-seen order.

    With no grouping columns this is a scalar aggregate and emits exactly
    one row even over empty input (COUNT = 0, SUM/AVG/MIN/MAX = NULL).
    """

    is_blocking = True

    def __init__(self, child, group_by, aggregates) -> None:
        super().__init__(child, group_by, aggregates)
        self._groups: Dict[Tuple[object, ...], _Accumulator] = {}
        self._materialized = False
        self._output: Optional[Iterator[Row]] = None

    @property
    def name(self) -> str:
        return "HashAggregate"

    def describe(self) -> str:
        return "HashAggregate(by=%s, aggs=%s)" % (
            [name for name, _ in self.group_by],
            [spec.output_name for spec in self.aggregates],
        )

    def _open(self) -> None:
        self._bind()
        self._groups: Dict[Tuple[object, ...], _Accumulator] = {}
        self._materialized = False
        self._output: Optional[Iterator[Row]] = None

    def _rewind(self) -> None:
        # Keep the materialized groups (spool semantics on ⋈NL rescans).
        if self._materialized:
            self._output = iter(
                [self._emit(key, acc) for key, acc in self._groups.items()]
            )

    def _materialize(self) -> None:
        # Groups accumulate on self so mid-build observers (progress bound
        # refinement) can see how many groups exist so far.
        while True:
            row = self.child.get_next()
            if row is None:
                break
            key = self._group_key(row)
            accumulator = self._groups.get(key)
            if accumulator is None:
                accumulator = _Accumulator(len(self.aggregates))
                self._groups[key] = accumulator
            accumulator.update(row, self._argument_fns)
        if not self.group_by and not self._groups:
            self._groups[()] = _Accumulator(len(self.aggregates))
        self._materialized = True
        self._output = iter(
            [self._emit(key, acc) for key, acc in self._groups.items()]
        )

    def groups_seen(self) -> int:
        """Distinct groups accumulated so far (grows during the build)."""
        return len(self._groups)

    @property
    def input_consumed(self) -> bool:
        return self._materialized

    def _next(self) -> Optional[Row]:
        if self._output is None:
            self._materialize()
        assert self._output is not None
        return next(self._output, None)

    def _close(self) -> None:
        self._groups = {}
        self._materialized = False
        self._output = None


class StreamAggregate(_AggregateBase):
    """Order-based γ: input must arrive sorted (clustered) by group key.

    Emits each group when the next key appears, so it does not end the
    pipeline it sits in.
    """

    @property
    def name(self) -> str:
        return "StreamAggregate"

    def describe(self) -> str:
        return "StreamAggregate(by=%s, aggs=%s)" % (
            [name for name, _ in self.group_by],
            [spec.output_name for spec in self.aggregates],
        )

    def _open(self) -> None:
        self._bind()
        self._pending_row: Optional[Row] = None
        self._started = False
        self._exhausted = False

    def _next(self) -> Optional[Row]:
        if self._exhausted:
            return None
        if not self._started:
            self._started = True
            self._pending_row = self.child.get_next()
            if self._pending_row is None:
                self._exhausted = True
                if not self.group_by:
                    return self._emit((), _Accumulator(len(self.aggregates)))
                return None
        if self._pending_row is None:
            self._exhausted = True
            return None
        key = self._group_key(self._pending_row)
        accumulator = _Accumulator(len(self.aggregates))
        while self._pending_row is not None and self._group_key(self._pending_row) == key:
            accumulator.update(self._pending_row, self._argument_fns)
            self._pending_row = self.child.get_next()
        return self._emit(key, accumulator)
