"""Index seek: an index-driven leaf access path.

``IndexSeek`` performs an equality or range lookup through a sorted index
and streams the matching base rows in key order.  It is one of the
nested-iteration operators the paper's scan-based class excludes (§5.4):
together with ⋈NL and ⋈INL it can make the amount of work per input tuple
unbounded and unobservable.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.operators.base import LeafOperator
from repro.errors import PlanError
from repro.storage.index import SortedIndex
from repro.storage.table import Row


class IndexSeek(LeafOperator):
    """Range (or equality) scan through a sorted index.

    ``low``/``high`` bound the key range; either may be None for an open
    end.  The output schema is the base table's, re-qualified by ``alias``.
    """

    is_nested_iteration = True

    def __init__(
        self,
        index: SortedIndex,
        low: Optional[object] = None,
        high: Optional[object] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        alias: Optional[str] = None,
    ) -> None:
        if low is None and high is None and not (low_inclusive and high_inclusive):
            raise PlanError("an unbounded index seek cannot be exclusive")
        qualifier = alias or index.table.name
        super().__init__(index.table.schema.qualified(qualifier))
        self.index = index
        self.alias = qualifier
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self._iterator: Optional[Iterator[Row]] = None

    @property
    def name(self) -> str:
        return "IndexSeek"

    def describe(self) -> str:
        low = "*" if self.low is None else repr(self.low)
        high = "*" if self.high is None else repr(self.high)
        return "IndexSeek(%s.%s in %s%s, %s%s)" % (
            self.index.table.name,
            self.index.column,
            "[" if self.low_inclusive else "(",
            low,
            high,
            "]" if self.high_inclusive else ")",
        )

    def _open(self) -> None:
        self._iterator = self.index.range_scan(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        )

    def _next(self) -> Optional[Row]:
        assert self._iterator is not None
        return next(self._iterator, None)

    def _close(self) -> None:
        self._iterator = None

    def exact_match_count(self) -> int:
        """Exact number of rows this seek will return (index metadata)."""
        return self.index.range_count(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        )
