"""Random-order scan: the §7 online-aggregation connection.

"There has been prior work in the context of online aggregation which
propose specialized operators (e.g., ripple joins) in order to provide a
random order.  The dne estimator is guaranteed to work well for such
operators."  :class:`RandomOrderScan` is that access path: a table scan
that returns rows in a seeded random permutation of the heap order, making
Theorem 3's random-order assumption true *by construction* regardless of
how adversarially the table is laid out.

It subclasses :class:`TableScan`, so every structural analysis (scanned
leaves, pipeline drivers, cardinality bounds) treats it exactly like an
ordinary full scan — only the row order differs.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.engine.operators.scan import TableScan
from repro.storage.table import Row, Table


class RandomOrderScan(TableScan):
    """Scan in a seeded random permutation of the stored row order.

    The permutation is fixed per seed, so runs stay reproducible; with
    ``reshuffle=True`` every fresh ``open`` draws a new permutation (the
    online-aggregation setting wants a new sample order per run — note the
    progress runner's oracle pass and trace pass then see different orders,
    which is fine: ``total(Q)`` does not depend on scan order).
    """

    def __init__(self, table: Table, seed: int = 0,
                 alias: Optional[str] = None, reshuffle: bool = False) -> None:
        super().__init__(table, alias)
        self.seed = seed
        self.reshuffle = reshuffle
        self._order = self._permutation(seed)
        self._runs = 0

    def _permutation(self, seed: int):
        order = list(range(len(self.table)))
        random.Random(seed).shuffle(order)
        return order

    @property
    def name(self) -> str:
        return "RandomOrderScan"

    def describe(self) -> str:
        return "RandomOrderScan(%s as %s, seed=%d)" % (
            self.table.name, self.alias, self.seed,
        )

    def _open(self) -> None:
        if self.reshuffle and self._runs > 0:
            self._order = self._permutation(self.seed + self._runs)
        self._runs += 1
        self._cursor = 0

    def _next(self) -> Optional[Row]:
        if self._cursor >= len(self._order):
            return None
        row = self.table[self._order[self._cursor]]
        self._cursor += 1
        return row
