"""Projection (π): compute named output expressions per input row."""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.expressions import BoundFn, ColumnRef, Expression
from repro.engine.operators.base import Operator, UnaryOperator
from repro.errors import PlanError
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Row


def infer_output_column(
    name: str, expression: Expression, input_schema: Schema
) -> Column:
    """Best-effort output column typing.

    Plain column references keep the referenced column's type; computed
    expressions default to FLOAT (sufficient for this engine's workloads,
    and rows themselves are never re-validated downstream).
    """
    if isinstance(expression, ColumnRef):
        position = input_schema.index_of(expression.name)
        source = input_schema.column_at(position)
        return Column(name, source.type, source.nullable)
    return Column(name, ColumnType.FLOAT, True)


class Project(UnaryOperator):
    """Compute ``(name, expression)`` outputs for every input row.

    The output schema is unqualified unless ``qualifier`` is given.
    """

    def __init__(
        self,
        child: Operator,
        outputs: Sequence[Tuple[str, Expression]],
        qualifier: Optional[str] = None,
    ) -> None:
        if not outputs:
            raise PlanError("projection needs at least one output")
        columns = [
            infer_output_column(name, expression, child.schema)
            for name, expression in outputs
        ]
        super().__init__(Schema.of(qualifier, columns), child)
        self.outputs = list(outputs)
        self._bound: List[BoundFn] = []
        self._project: Optional[Callable[[Row], Row]] = None

    @property
    def name(self) -> str:
        return "Project"

    def describe(self) -> str:
        return "Project(%s)" % (", ".join(name for name, _ in self.outputs),)

    def _open(self) -> None:
        schema = self.child.schema
        self._bound = [
            expression.bind(schema) for _, expression in self.outputs
        ]
        # Specialize the whole-row projector once per open: a pure column
        # selection becomes a C-level itemgetter, small computed projections
        # an unrolled tuple build.  Both engines route rows through it.
        expressions = [expression for _, expression in self.outputs]
        if all(isinstance(e, ColumnRef) for e in expressions):
            positions = [schema.index_of(e.name) for e in expressions]
            if len(positions) == 1:
                p = positions[0]
                self._project = lambda row: (row[p],)
            else:
                self._project = itemgetter(*positions)
        elif len(self._bound) == 1:
            (f0,) = self._bound
            self._project = lambda row: (f0(row),)
        elif len(self._bound) == 2:
            f0, f1 = self._bound
            self._project = lambda row: (f0(row), f1(row))
        elif len(self._bound) == 3:
            f0, f1, f2 = self._bound
            self._project = lambda row: (f0(row), f1(row), f2(row))
        else:
            bound = self._bound
            self._project = lambda row: tuple([fn(row) for fn in bound])

    def _next(self) -> Optional[Row]:
        row = self.child.get_next()
        if row is None:
            return None
        assert self._project is not None
        return self._project(row)
