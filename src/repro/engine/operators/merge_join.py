"""Merge join (⋈merge): equality join over inputs sorted on the join keys.

Each input is consumed exactly once (duplicate key groups on the right are
buffered), so merge join belongs to the paper's scan-based class when fed by
sorts or ordered scans (§5.4, "if the join operator is a sort-merge join
where each input is sorted, we obtain a similar result").
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.expressions import BoundFn, Expression
from repro.engine.operators.base import BinaryOperator, Operator
from repro.errors import ExecutionError
from repro.storage.table import Row


class MergeJoin(BinaryOperator):
    """Sorted-input equality join; verifies input order as it consumes."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: Expression,
        right_key: Expression,
        linear: bool = False,
    ) -> None:
        super().__init__(left.schema.concat(right.schema), left, right)
        self.left_key = left_key
        self.right_key = right_key
        self.is_linear = linear
        self._left_fn: Optional[BoundFn] = None
        self._right_fn: Optional[BoundFn] = None
        self._left_row: Optional[Row] = None
        self._right_row: Optional[Row] = None
        self._right_group: List[Row] = []
        self._group_key: Optional[object] = None
        self._group_cursor = 0
        self._left_started = False
        self._last_left_key: Optional[object] = None
        self._last_right_key: Optional[object] = None

    @property
    def name(self) -> str:
        return "MergeJoin"

    def describe(self) -> str:
        return "MergeJoin(%r = %r)" % (self.left_key, self.right_key)

    def _open(self) -> None:
        self._left_fn = self.left_key.bind(self.left.schema)
        self._right_fn = self.right_key.bind(self.right.schema)
        self._left_row = None
        self._right_row = None
        self._right_group = []
        self._group_key = None
        self._group_cursor = 0
        self._left_started = False
        self._last_left_key = None
        self._last_right_key = None

    def _advance_left(self) -> Optional[object]:
        assert self._left_fn is not None
        while True:
            self._left_row = self.left.get_next()
            if self._left_row is None:
                return None
            key = self._left_fn(self._left_row)
            if key is None:
                continue  # NULLs never join
            if self._last_left_key is not None and key < self._last_left_key:  # type: ignore[operator]
                raise ExecutionError("merge join: left input not sorted on key")
            self._last_left_key = key
            return key

    def _advance_right(self) -> Optional[object]:
        assert self._right_fn is not None
        while True:
            self._right_row = self.right.get_next()
            if self._right_row is None:
                return None
            key = self._right_fn(self._right_row)
            if key is None:
                continue
            if self._last_right_key is not None and key < self._last_right_key:  # type: ignore[operator]
                raise ExecutionError("merge join: right input not sorted on key")
            self._last_right_key = key
            return key

    def _load_right_group(self, key: object) -> None:
        """Buffer all right rows equal to ``key``; leaves cursor past them."""
        self._right_group = []
        assert self._right_fn is not None
        while self._right_row is not None and self._right_fn(self._right_row) == key:
            self._right_group.append(self._right_row)
            self._advance_right()
        self._group_key = key

    def _next(self) -> Optional[Row]:
        assert self._left_fn is not None and self._right_fn is not None
        if not self._left_started:
            self._left_started = True
            if self._advance_left() is None:
                return None
            self._advance_right()
        while True:
            if self._left_row is None:
                return None
            left_key = self._left_fn(self._left_row)
            # Emit buffered matches for the current left row.
            if self._group_key is not None and left_key == self._group_key:
                if self._group_cursor < len(self._right_group):
                    joined = self._left_row + self._right_group[self._group_cursor]
                    self._group_cursor += 1
                    return joined
                self._group_cursor = 0
                if self._advance_left() is None:
                    return None
                continue
            # Align the right side with the current left key.
            while (
                self._right_row is not None
                and self._right_fn(self._right_row) < left_key  # type: ignore[operator]
            ):
                self._advance_right()
            if self._right_row is not None and self._right_fn(
                self._right_row
            ) == left_key:
                self._load_right_group(left_key)
                self._group_cursor = 0
                continue
            # No right match for this left key.
            self._group_key = None
            self._right_group = []
            if self._advance_left() is None:
                return None
