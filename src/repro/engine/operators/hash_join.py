"""Hash join (⋈hash): build on the left input, probe with the right.

Both inputs are consumed exactly once — the property Example 3 of the paper
leans on: for a scan-based plan the total number of getnext calls is squeezed
between Σ|inputs| and a small multiple of it, which is what makes progress
estimation worst-case tractable (§5.4).

With ``preserve_probe=True`` the join is a probe-side outer join: probe rows
without a surviving match are emitted once, padded with NULLs on the build
side (the LEFT JOIN shape of TPC-H Q13).  Outer joins are a small gift to
the bounds machinery — the output is now *at least* the probe cardinality.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.expressions import BoundFn, Expression
from repro.engine.operators.base import BinaryOperator, Operator
from repro.storage.table import Row


class HashJoin(BinaryOperator):
    """Equality hash join; the *left* child is the build side.

    The build phase runs inside the first ``get_next`` call (blocking with
    respect to the probe pipeline): the left child's getnext calls all tick
    before the first output row appears, which is exactly how the paper's
    pipeline decomposition sees a hash join.
    """

    is_blocking = True

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_key: Expression,
        probe_key: Expression,
        residual: Optional[Expression] = None,
        linear: bool = False,
        preserve_probe: bool = False,
    ) -> None:
        super().__init__(build.schema.concat(probe.schema), build, probe)
        self.build_key = build_key
        self.probe_key = probe_key
        self.residual = residual
        self.is_linear = linear
        self.preserve_probe = preserve_probe
        self._null_pad: Row = (None,) * len(build.schema)
        self._emitted_for_probe = 0
        self._table: Dict[object, List[Row]] = {}
        self._built = False
        self._probe_row: Optional[Row] = None
        self._matches: List[Row] = []
        self._match_cursor = 0
        self._build_fn: Optional[BoundFn] = None
        self._probe_fn: Optional[BoundFn] = None
        self._residual_fn: Optional[BoundFn] = None

    @property
    def name(self) -> str:
        return "HashJoin"

    def describe(self) -> str:
        kind = "HashJoin(outer, " if self.preserve_probe else "HashJoin("
        return "%s%r = %r)" % (kind, self.build_key, self.probe_key)

    @property
    def build_child(self) -> Operator:
        return self.left

    @property
    def probe_child(self) -> Operator:
        return self.right

    @property
    def build_done(self) -> bool:
        """True once the build input is fully consumed."""
        return self._built

    def _open(self) -> None:
        self._build_fn = self.build_key.bind(self.left.schema)
        self._probe_fn = self.probe_key.bind(self.right.schema)
        self._residual_fn = (
            self.residual.bind(self.schema) if self.residual is not None else None
        )
        self._table = {}
        self._built = False
        self._probe_row = None
        self._matches = []
        self._match_cursor = 0
        self._emitted_for_probe = 0

    def _rewind(self) -> None:
        # Keep the built hash table (spool semantics on ⋈NL rescans); only
        # the probe-side position restarts.
        self._probe_row = None
        self._matches = []
        self._match_cursor = 0
        self._emitted_for_probe = 0

    def _build(self) -> None:
        assert self._build_fn is not None
        while True:
            row = self.left.get_next()
            if row is None:
                break
            key = self._build_fn(row)
            if key is None:
                continue  # NULL keys never join
            self._table.setdefault(key, []).append(row)
        self._built = True

    def _next(self) -> Optional[Row]:
        if not self._built:
            self._build()
        assert self._probe_fn is not None
        while True:
            while self._match_cursor < len(self._matches):
                assert self._probe_row is not None
                joined = self._matches[self._match_cursor] + self._probe_row
                self._match_cursor += 1
                if self._residual_fn is None or self._residual_fn(joined) is True:
                    self._emitted_for_probe += 1
                    return joined
            if (
                self.preserve_probe
                and self._probe_row is not None
                and self._emitted_for_probe == 0
            ):
                self._emitted_for_probe += 1
                return self._null_pad + self._probe_row
            self._probe_row = self.right.get_next()
            if self._probe_row is None:
                return None
            key = self._probe_fn(self._probe_row)
            self._matches = [] if key is None else self._table.get(key, [])
            self._match_cursor = 0
            self._emitted_for_probe = 0

    def _close(self) -> None:
        self._table = {}
        self._matches = []
