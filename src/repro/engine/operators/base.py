"""The Volcano operator protocol and the properties the paper cares about.

Every physical operator implements ``open`` / ``get_next`` / ``close``.  The
base class owns the bookkeeping the progress-estimation layer reads:

* ``rows_produced`` — counted getnext calls on this node so far;
* ``finished`` — whether the node has returned end-of-stream;
* ``is_blocking`` — whether the node materializes its input before emitting
  (this determines pipeline boundaries, §4.1 of the paper);
* ``is_nested_iteration`` — whether the node re-iterates an input per outer
  row (⋈NL, ⋈INL, index-seek); scan-based plans exclude these (§5.4);
* ``is_linear`` — whether output cardinality is bounded by the largest input
  (σ, π, γ, sort are linear; joins only when declared, e.g. FK joins).

Operators are *re-runnable*: ``open`` fully resets state, so the same plan
object can be executed twice (the work model runs a plan once to measure
``total(Q)`` and again to trace estimators).
"""

from __future__ import annotations

import abc
import itertools
from typing import Iterator, List, Optional, Sequence

from repro.errors import ExecutionError, PlanError
from repro.engine.monitor import ExecutionMonitor
from repro.storage.schema import Schema
from repro.storage.table import Row

_operator_ids = itertools.count(1)


class ExecutionContext:
    """Everything an operator needs at runtime besides its children."""

    def __init__(self, monitor: Optional[ExecutionMonitor] = None) -> None:
        self.monitor = monitor or ExecutionMonitor()


class Operator(abc.ABC):
    """Base class for all physical operators."""

    #: whether getnext calls on this node count toward the work model
    counted: bool = True
    #: whether this node materializes input before producing output
    is_blocking: bool = False
    #: whether this node performs nested iteration (§5.4 exclusion list)
    is_nested_iteration: bool = False

    def __init__(self, schema: Schema, children: Sequence["Operator"]) -> None:
        self.operator_id = next(_operator_ids)
        self.schema = schema
        self.children: List[Operator] = list(children)
        self.rows_produced = 0
        self.finished = False
        self.is_open = False
        #: output cardinality bounded by the largest input (set by planner
        #: for joins when a key/foreign-key relationship is known)
        self.is_linear = True
        self._context: Optional[ExecutionContext] = None

    # -- identity ----------------------------------------------------------------

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short operator name for explain output, e.g. ``"HashJoin"``."""

    def label(self) -> str:
        return "%s#%d" % (self.name, self.operator_id)

    def describe(self) -> str:
        """One-line description used by explain; override to add detail."""
        return self.name

    # -- lifecycle ----------------------------------------------------------------

    def open(self, context: ExecutionContext) -> None:
        """Reset state and prepare to produce rows."""
        self._context = context
        self.rows_produced = 0
        self.finished = False
        self.is_open = True
        if self.counted:
            context.monitor.register(self.operator_id, self.label())
        for child in self.children:
            child.open(context)
        self._open()

    def get_next(self) -> Optional[Row]:
        """Return the next output row, or None at end of stream."""
        if not self.is_open:
            raise ExecutionError("%s: get_next before open" % (self.label(),))
        if self.finished:
            return None
        row = self._next()
        if row is None:
            self.finished = True
            if self._context is not None:
                self._context.monitor.record_finish(self.operator_id)
            return None
        self.rows_produced += 1
        if self.counted and self._context is not None:
            self._context.monitor.record(self.operator_id)
        return row

    def close(self) -> None:
        if not self.is_open:
            return
        self._close()
        for child in self.children:
            child.close()
        self.is_open = False

    def rewind(self) -> None:
        """Restart this subtree from the beginning (used by ⋈NL rescans).

        Counters in the monitor keep accumulating across rewinds — each
        rescan's getnext calls are real work under the paper's model.
        """
        if self._context is None:
            raise ExecutionError("%s: rewind before open" % (self.label(),))
        self.finished = False
        self._context.monitor.record_rewind(self.operator_id)
        for child in self.children:
            child.rewind()
        self._rewind()

    def _rewind(self) -> None:
        """Reset output position for a rescan.

        Defaults to a full :meth:`_open`; blocking operators override this to
        keep their materialized state (spool semantics) so ⋈NL rescans do not
        recompute sorts or hash tables.
        """
        self._open()

    # -- subclass hooks --------------------------------------------------------------

    @abc.abstractmethod
    def _open(self) -> None:
        """Initialize per-run state; children are already open."""

    @abc.abstractmethod
    def _next(self) -> Optional[Row]:
        """Produce the next row or None; no counting concerns here."""

    def _close(self) -> None:
        """Release per-run state (optional)."""

    # -- convenience -----------------------------------------------------------------

    def iterate(self, context: Optional[ExecutionContext] = None) -> Iterator[Row]:
        """Open, stream all rows, close — the standard driver loop."""
        context = context or ExecutionContext()
        self.open(context)
        try:
            while True:
                row = self.get_next()
                if row is None:
                    break
                yield row
        finally:
            self.close()

    def run(self, context: Optional[ExecutionContext] = None) -> List[Row]:
        """Execute to completion and materialize the result."""
        return list(self.iterate(context))

    # -- tree walking ------------------------------------------------------------------

    def walk(self) -> Iterator["Operator"]:
        """Pre-order traversal of this operator subtree."""
        yield self
        for child in self.children:
            for descendant in child.walk():
                yield descendant

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`PlanError` on problems."""
        seen = set()
        for operator in self.walk():
            if operator.operator_id in seen:
                raise PlanError(
                    "operator %s appears twice in the plan" % (operator.label(),)
                )
            seen.add(operator.operator_id)

    def __repr__(self) -> str:
        return self.label()


class UnaryOperator(Operator):
    """An operator with exactly one child."""

    def __init__(self, schema: Schema, child: Operator) -> None:
        super().__init__(schema, [child])

    @property
    def child(self) -> Operator:
        return self.children[0]


class BinaryOperator(Operator):
    """An operator with exactly two children (left/outer, right/inner)."""

    def __init__(self, schema: Schema, left: Operator, right: Operator) -> None:
        super().__init__(schema, [left, right])

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]


class LeafOperator(Operator):
    """An operator with no children (scans, seeks, row sources)."""

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema, [])
