"""Physical operators of the Volcano-style execution engine."""

from repro.engine.operators.aggregate import (
    AggregateKind,
    AggregateSpec,
    HashAggregate,
    StreamAggregate,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count,
    count_star,
)
from repro.engine.operators.base import (
    BinaryOperator,
    ExecutionContext,
    LeafOperator,
    Operator,
    UnaryOperator,
)
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.index_seek import IndexSeek
from repro.engine.operators.merge_join import MergeJoin
from repro.engine.operators.misc import Distinct, Limit, UnionAll
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.project import Project
from repro.engine.operators.scan import RowSource, TableScan
from repro.engine.operators.shuffle_scan import RandomOrderScan
from repro.engine.operators.sort import Sort, SortKey
from repro.engine.operators.topn import TopN

__all__ = [
    "AggregateKind",
    "AggregateSpec",
    "BinaryOperator",
    "Distinct",
    "ExecutionContext",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopsJoin",
    "IndexSeek",
    "LeafOperator",
    "Limit",
    "MergeJoin",
    "NestedLoopsJoin",
    "Operator",
    "Project",
    "RandomOrderScan",
    "RowSource",
    "Sort",
    "SortKey",
    "StreamAggregate",
    "TableScan",
    "TopN",
    "UnaryOperator",
    "UnionAll",
]
