"""Nested-loops join (⋈NL): rescan the inner input once per outer row.

Every rescan's getnext calls on the inner subtree are counted work — this is
precisely why ⋈NL is excluded from the paper's scan-based class (§5.4): the
work per outer tuple is unbounded and depends on data the statistics cannot
reveal.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.expressions import BoundFn, Expression
from repro.engine.operators.base import BinaryOperator, Operator
from repro.storage.table import Row


class NestedLoopsJoin(BinaryOperator):
    """Tuple-at-a-time nested loops; left is the outer input.

    ``predicate`` may be None for a cross product.  Linearity is *not*
    assumed; pass ``linear=True`` only when a key constraint guarantees
    output ≤ max(input) (the planner does this for FK joins).
    """

    is_nested_iteration = True

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        predicate: Optional[Expression] = None,
        linear: bool = False,
    ) -> None:
        super().__init__(outer.schema.concat(inner.schema), outer, inner)
        self.predicate = predicate
        self.is_linear = linear
        self._bound: Optional[BoundFn] = None
        self._outer_row: Optional[Row] = None

    @property
    def name(self) -> str:
        return "NestedLoopsJoin"

    def describe(self) -> str:
        return "NestedLoopsJoin(%r)" % (self.predicate,)

    def _open(self) -> None:
        self._bound = (
            self.predicate.bind(self.schema) if self.predicate is not None else None
        )
        self._outer_row = None

    def _next(self) -> Optional[Row]:
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.get_next()
                if self._outer_row is None:
                    return None
                self.right.rewind()
            inner_row = self.right.get_next()
            if inner_row is None:
                self._outer_row = None
                continue
            joined = self._outer_row + inner_row
            if self._bound is None or self._bound(joined) is True:
                return joined
