"""Executor: run a plan to completion under a monitored context.

The executor is the only place that wires plans, contexts and monitors
together; everything above it (the progress runner, the benchmark harness)
goes through :func:`execute` or :func:`measure_total_work`.

Three engines produce identical results (rows, per-operator counts, observer
firing instants, event streams — see ``tests/engine/test_compiled_engine``):

* ``"fused"`` (default) — the pipeline compiler in
  :mod:`repro.engine.compiled`: operator chains fused into generators,
  accounting batched between observer cadence points;
* ``"interpreted"`` — the row-at-a-time Volcano reference path;
* ``"columnar"`` — the batch engine in :mod:`repro.engine.columnar`:
  whole-column kernels (NumPy when available, lists otherwise) with a
  tick-exact replay of the work model; unsupported operators fall back
  per-subtree to the fused compilers.

``REPRO_ENGINE=interpreted`` in the environment flips the default.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.engine.monitor import ExecutionMonitor
from repro.engine.operators.base import ExecutionContext
from repro.engine.plan import Plan
from repro.errors import ExecutionError
from repro.options import ENGINES, ExecutionOptions
from repro.storage.table import Row


def _engine_choice(engine: Optional[str]) -> str:
    """Internal resolution: explicit value → ``$REPRO_ENGINE`` → fused."""
    return ExecutionOptions(engine=engine).resolve().engine


def default_engine() -> str:
    """Deprecated: the default engine now resolves through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call.
    """
    warnings.warn(
        "default_engine() is deprecated; use "
        "repro.api.ExecutionOptions().resolve().engine instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _engine_choice(None)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Deprecated: ``engine=`` keywords now resolve through
    :class:`repro.api.ExecutionOptions`.

    Kept as a shim per the documented stability policy; emits one
    :class:`DeprecationWarning` per call and delegates to the same
    resolution path, so behaviour (explicit value → ``$REPRO_ENGINE`` →
    ``"fused"``, unknown names raising :class:`ExecutionError`) is
    unchanged.
    """
    warnings.warn(
        "resolve_engine() is deprecated; use "
        "repro.api.ExecutionOptions(engine=...).resolve().engine instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _engine_choice(engine)


def __getattr__(name: str):
    # Deprecated module attribute, kept as a shim: the old import-time
    # constant could silently disagree with a later $REPRO_ENGINE change.
    if name == "DEFAULT_ENGINE":
        warnings.warn(
            "repro.engine.executor.DEFAULT_ENGINE is deprecated; use "
            "repro.api.ExecutionOptions().resolve().engine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _engine_choice(None)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def pipeline_boundary_operators(plan: Plan) -> Set[int]:
    """Operator ids whose ``finish`` event is a pipeline boundary.

    A blocking operator finishing means the pipeline it drives has ended;
    one of its inputs finishing means the pipeline feeding it has been fully
    drained (the build of a hash join, the input of a sort).  Both are the
    blocking-operator transitions progress observers must not miss, so the
    monitor forces an observer round when any of them finishes.
    """
    boundary: Set[int] = set()
    for operator in plan.blocking_operators():
        boundary.add(operator.operator_id)
        for child in operator.children:
            boundary.add(child.operator_id)
    return boundary


@dataclass
class ExecutionResult:
    """The rows a plan produced plus its work-model accounting."""

    rows: List[Row]
    total_getnext: int
    per_operator: Dict[str, int] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        return len(self.rows)


def execute(
    plan: Plan,
    context: Optional[ExecutionContext] = None,
    engine: Optional[str] = None,
) -> ExecutionResult:
    """Run ``plan`` to completion; return rows and getnext accounting."""
    engine = _engine_choice(engine)
    context = context or ExecutionContext()
    context.monitor.mark_pipeline_boundaries(pipeline_boundary_operators(plan))
    if engine == "fused":
        from repro.engine.compiled import run_fused

        rows = run_fused(plan.root, context)
    elif engine == "columnar":
        from repro.engine.columnar import run_columnar

        rows = run_columnar(plan.root, context)
    else:
        rows = plan.root.run(context)
    monitor = context.monitor
    per_operator = {
        monitor.label_for(operator_id): ticks
        for operator_id, ticks in monitor.counts().items()
    }
    return ExecutionResult(rows, monitor.total_ticks, per_operator)


def measure_total_work(
    plan: Plan,
    engine: Optional[str] = None,
    *,
    monitor: Optional[ExecutionMonitor] = None,
) -> int:
    """``total(Q)``: the exact number of counted getnext calls for ``plan``.

    Runs the plan once on a private monitor.  This is the oracle quantity a
    progress estimator is *not* allowed to precompute (it would require
    running the query, §2.4); it exists for evaluation only.

    This survives as the explicit standalone oracle API: the default
    single-pass evaluation protocol never calls it (truth is labeled from
    the instrumented run's own final tick count), and the legacy
    ``protocol="two_pass"`` escape hatch routes through it for its oracle
    pre-run.  Call it directly when you want ``total(Q)`` without an
    instrumented run.

    Pipeline boundaries are marked exactly as :func:`execute` marks them, so
    an observer attached to the private monitor (none by default) would see
    the same boundary-forced rounds on either entry point.  ``monitor``
    substitutes the private monitor — the query service passes one whose
    ``record`` checks cancellation and deadlines, so even the oracle phase
    of an instrumented run stays responsive.
    """
    engine = _engine_choice(engine)
    context = ExecutionContext(monitor or ExecutionMonitor())
    context.monitor.mark_pipeline_boundaries(pipeline_boundary_operators(plan))
    if engine == "fused":
        from repro.engine.compiled import run_fused

        run_fused(plan.root, context)
    elif engine == "columnar":
        from repro.engine.columnar import run_columnar

        run_columnar(plan.root, context)
    else:
        for _ in plan.root.iterate(context):
            pass
    return context.monitor.total_ticks
