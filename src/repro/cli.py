"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — run a monitored query on a generated database and print
                    a live-style progress table for dne/pmax/safe;
* ``sql``         — plan, explain and execute a SQL query against the
                    bundled mini TPC-H database, with progress monitoring;
* ``progress``    — run a query under full progress observability: live
                    JSONL event trace, tick-rate/ETA gauges, per-estimator
                    wall-time profile;
* ``explain``     — just show the physical plan for a SQL query;
* ``serve``       — stress the concurrent query service: admit a workload
                    mix onto a bounded worker pool and poll live progress,
                    with optional mid-flight cancellation and deadlines;
* ``tpch-mu``     — print Table 2 (μ per TPC-H query);
* ``sky-mu``      — print Table 3 (μ per SkyServer query);
* ``experiments`` — regenerate paper artifacts (figures/tables/ablations).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.bench import (
    ablation_bytes_model,
    ablation_scale_sweep,
    ablation_skew_sweep,
    ablation_feedback,
    ablation_hybrid,
    ablation_lower_bound,
    ablation_predictive_orders,
    ablation_scan_based,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    render_series,
    render_table,
    table1,
    table2,
    table3,
)
from repro.bench.harness import downsample
from repro.core import (
    JsonlTraceWriter,
    ProgressRunner,
    estimator_names,
    mu,
    run_with_estimators,
    standard_toolkit,
    toolkit_from_names,
)
from repro.core.runner import ProgressReport
from repro.options import (
    BACKENDS,
    BOUND_PROVIDERS,
    ENGINES,
    PROTOCOLS,
    ExecutionOptions,
)
from repro.sql import plan_query
from repro.workloads import (
    SKYSERVER_QUERIES,
    build_query,
    build_skyserver_query,
    generate_skyserver,
    generate_tpch,
)

EXPERIMENTS = {
    "figure3": lambda: _series_artifact(figure3(), "Figure 3"),
    "figure4": lambda: _series_artifact(figure4(), "Figure 4"),
    "figure5": lambda: _series_artifact(figure5(), "Figure 5"),
    "figure6": lambda: _series_artifact(figure6(), "Figure 6"),
    "figure7": lambda: _series_artifact(figure7(), "Figure 7"),
    "table1": lambda: render_table(
        ["estimator", "max INL", "max hash", "avg INL", "avg hash"],
        [[r.estimator, r.max_err_inl, r.max_err_hash, r.avg_err_inl,
          r.avg_err_hash] for r in table1()],
        title="Table 1",
    ),
    "table2": lambda: render_table(
        ["query", "mu"], sorted(table2().items()), title="Table 2"
    ),
    "table3": lambda: render_table(
        ["query", "mu"], sorted(table3().items()), title="Table 3"
    ),
    "lower-bound": lambda: str(ablation_lower_bound()),
    "predictive-orders": lambda: str(ablation_predictive_orders()),
    "scan-based": lambda: str(ablation_scan_based()),
    "hybrid": lambda: str(ablation_hybrid()),
    "bytes-model": lambda: str(ablation_bytes_model()),
    "skew-sweep": lambda: str(ablation_skew_sweep()),
    "scale-sweep": lambda: str(ablation_scale_sweep()),
    "feedback": lambda: str(ablation_feedback()),
}


def _series_artifact(result, title: str) -> str:
    return render_series(result["series"], title=title)


def _bounds_for(args: argparse.Namespace) -> Optional[List[str]]:
    if getattr(args, "bounds", None) is None:
        return None
    return [name.strip() for name in args.bounds.split(",") if name.strip()]


def _toolkit_for(args: argparse.Namespace):
    """The run's toolkit: ``--estimators`` names, or the paper's three.

    History-backed estimators (``feedback``, ``robust``) start cold here —
    a CLI invocation is one run — so they answer exactly as safe until an
    application wires a shared history through :class:`repro.api.Session`.
    """
    names = getattr(args, "estimators", None)
    if not names:
        return standard_toolkit()
    return toolkit_from_names(
        [part.strip() for part in names.split(",") if part.strip()]
    )


def _print_progress_table(report: ProgressReport, points: int = 15) -> None:
    names = report.trace.estimator_names()
    print("%9s" % ("actual",) + "".join("%10s" % (name,) for name in names))
    for sample in downsample(report.trace.samples, points):
        cells = "".join(
            "%9.1f%%" % (sample.estimates[name] * 100,) for name in names
        )
        print("%8.1f%%%s" % (sample.actual * 100, cells))
    print("total getnext calls: %d" % (report.total,))
    if report.mu is not None:
        print("mu (work per input tuple): %.3f" % (report.mu,))
    for name in names:
        print(
            "%-10s max abs err %6.2f%%   avg abs err %6.2f%%"
            % (
                name,
                report.trace.max_abs_error(name) * 100,
                report.trace.avg_abs_error(name) * 100,
            )
        )


def cmd_demo(args: argparse.Namespace) -> int:
    db = generate_tpch(scale=args.scale, skew=args.skew, seed=args.seed)
    print("generated mini TPC-H:", db.cardinalities())
    plan = build_query(db, args.query)
    print("\nphysical plan for Q%d:" % (args.query,))
    print(plan.explain())
    print()
    report = run_with_estimators(
        plan, _toolkit_for(args), db.catalog, engine=args.engine,
        protocol=args.protocol, bounds=_bounds_for(args),
    )
    _print_progress_table(report)
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    db = generate_tpch(scale=args.scale, skew=args.skew, seed=args.seed)
    plan = plan_query(args.query, db.catalog, name="cli-sql")
    print(plan.explain())
    print()
    report = run_with_estimators(
        plan, _toolkit_for(args), db.catalog, engine=args.engine,
        protocol=args.protocol, bounds=_bounds_for(args),
    )
    _print_progress_table(report)
    if args.rows:
        from repro.engine.executor import execute

        result = execute(plan, engine=args.engine)
        print("\nfirst %d rows:" % (min(args.rows, result.row_count),))
        for row in result.rows[: args.rows]:
            print(" ", row)
    return 0


def cmd_progress(args: argparse.Namespace) -> int:
    db = generate_tpch(scale=args.scale, skew=args.skew, seed=args.seed)
    if args.sql:
        plan = plan_query(args.sql, db.catalog, name="cli-progress")
    else:
        plan = build_query(db, args.tpch)
    print(plan.explain())
    print()
    sinks = []
    if args.trace:
        sinks.append(JsonlTraceWriter(args.trace))
    runner = ProgressRunner(
        plan,
        _toolkit_for(args),
        db.catalog,
        target_samples=args.samples,
        sinks=sinks,
        engine=args.engine,
        protocol=args.protocol,
        bounds=_bounds_for(args),
    )
    report = runner.run()
    _print_progress_table(report)
    profile = report.profile
    if profile is not None:
        print()
        rate = profile.ticks_per_second
        print("elapsed: %.3fs   ticks: %d   rate: %s ticks/s   "
              "sampling overhead: %.1f%%" % (
                  profile.elapsed_seconds,
                  profile.ticks,
                  "%.0f" % (rate,) if rate else "n/a",
                  profile.overhead_fraction * 100,
              ))
        for name, estimator_profile in sorted(profile.estimators.items()):
            print("%-10s %5d calls   avg %8.1fus   max %8.1fus" % (
                name,
                estimator_profile.calls,
                estimator_profile.avg_seconds * 1e6,
                estimator_profile.max_seconds * 1e6,
            ))
    if args.trace:
        print("\nwrote %d events to %s" % (sinks[0].lines_written, args.trace))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Stress the HTTP/WebSocket server: admit a tenant workload mix,
    watch live progress over the wire, and report via ``/metrics``."""
    from repro.server import (
        ReproServer,
        ServerClient,
        ServerConfig,
        TenantQuota,
    )

    db = generate_tpch(scale=args.scale, skew=args.skew, seed=args.seed)
    numbers = [int(part) for part in args.queries.split(",") if part]
    total = len(numbers) * args.repeat
    options = ExecutionOptions(
        engine=args.engine,
        protocol=args.protocol,
        bounds=_bounds_for(args),
        backend=args.backend,
        start_method=args.start_method,
        max_workers=args.workers,
        queue_depth=max(args.queue_depth, total),
        target_samples=args.samples,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        options=options,
        default_quota=TenantQuota(
            max_pending=max(TenantQuota().max_pending, total),
            max_inflight=max(1, args.workers),
        ),
        default_deadline=args.deadline,
    )
    server = ReproServer(db.catalog, config=config)
    with server.running():
        resolved = server.config.options
        client = ServerClient(server.config.host, server.port)
        scheduled = []
        for round_index in range(args.repeat):
            for number in numbers:
                # Plan objects hold runtime state: the scheduler calls the
                # factory at dispatch time so every run gets a fresh plan.
                factory = (lambda db=db, number=number:
                           build_query(db, number))
                scheduled.append(server.scheduler.submit(
                    args.tenant, factory,
                    name="Q%d#%d" % (number, round_index),
                    target_samples=args.samples,
                ))
        print("admitted %d queries onto %d %s workers (engine=%s) "
              "at http://%s:%d"
              % (len(scheduled), resolved.max_workers, resolved.backend,
                 resolved.engine, server.config.host, server.port))
        cancel_target = None
        if args.cancel is not None and 0 <= args.cancel < len(scheduled):
            cancel_target = scheduled[args.cancel]
            # Spin for the first live sample so the DELETE lands while the
            # query is still on a worker (tiny test databases finish in
            # tens of milliseconds — a coarse poll would miss the window).
            while (cancel_target.latest_progress() is None
                   and not cancel_target.done):
                time.sleep(0.001)
            client.cancel(cancel_target.query_id)
            print("cancelled %s mid-flight" % (cancel_target.name,))
        while not all(query.done for query in scheduled):
            line = []
            for query in scheduled:
                record = client.status(query.query_id)
                progress = record.get("progress")
                if record["done"] or progress is None:
                    line.append("%s:%s" % (record["query"],
                                           record["state"]))
                else:
                    # Single-pass protocol: no truth label while the query
                    # runs — show the first estimator's answer.
                    value = progress["actual"]
                    if value is None:
                        value = next(
                            iter(progress["estimates"].values()), 0.0,
                        )
                    line.append("%s:%4.1f%%" % (record["query"],
                                                value * 100))
            print("  ".join(line))
            time.sleep(args.poll)
        print()
        print("%-10s %-10s" % ("query", "state"))
        for record in client.queries():
            print("%-10s %-10s" % (record["query"], record["state"]))
        metrics = client.metrics()
        all_done = all(query.done for query in scheduled)
    queries = metrics["queries"]
    stats = dict(queries["completed"])
    stats["submitted"] = queries["submitted"]
    stats["throttled"] = queries["throttled"]
    print("stats: " + "  ".join(
        "%s=%d" % (key, stats[key]) for key in sorted(stats)
    ))
    tenant = metrics["tenants"].get(args.tenant, {})
    print("ticks=%d  http_requests=%d  p50=%.3fs  p99=%.3fs" % (
        tenant.get("ticks", 0),
        metrics["http_requests"],
        metrics["latency"]["p50_seconds"] or 0.0,
        metrics["latency"]["p99_seconds"] or 0.0,
    ))
    if all_done:
        print("all queries reached a terminal state")
        return 0
    return 1


def cmd_explain(args: argparse.Namespace) -> int:
    db = generate_tpch(scale=args.scale, skew=args.skew, seed=args.seed)
    plan = plan_query(args.query, db.catalog, name="cli-explain")
    print(plan.explain())
    print("scan-based: %s   linear: %s   internal nodes: %d" % (
        plan.is_scan_based(), plan.is_linear(), plan.internal_node_count(),
    ))
    return 0


def cmd_tpch_mu(args: argparse.Namespace) -> int:
    db = generate_tpch(scale=args.scale, skew=args.skew, seed=args.seed)
    rows = []
    for number in range(1, 23):
        rows.append([number, mu(build_query(db, number))])
    print(render_table(["query", "mu"], rows,
                       title="mu per TPC-H query (skew z=%g)" % (args.skew,)))
    return 0


def cmd_sky_mu(args: argparse.Namespace) -> int:
    db = generate_skyserver(scale=args.size, seed=args.seed)
    rows = [
        [number, mu(build_skyserver_query(db, number))]
        for number in sorted(SKYSERVER_QUERIES)
    ]
    print(render_table(["query", "mu"], rows,
                       title="mu per SkyServer query (%d objects)" % (args.size,)))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    names = args.names or sorted(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            print("unknown experiment %r (choose from: %s)"
                  % (name, ", ".join(sorted(EXPERIMENTS))), file=sys.stderr)
            return 2
        print("== %s ==" % (name,))
        print(EXPERIMENTS[name]())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Progress estimation for SQL queries (SIGMOD 2005 repro)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    defaults = ExecutionOptions().resolve()

    def add_db_options(p):
        p.add_argument("--scale", type=float, default=0.001,
                       help="TPC-H scale (fraction of SF-1)")
        p.add_argument("--skew", type=float, default=2.0,
                       help="zipf skew parameter z")
        p.add_argument("--seed", type=int, default=42)

    def add_engine_option(p):
        p.add_argument("--engine", choices=ENGINES, default=None,
                       help="execution engine (default: $REPRO_ENGINE or %s)"
                       % (defaults.engine,))

    def add_bounds_option(p):
        p.add_argument("--bounds", default=None, metavar="NAME,NAME,...",
                       help="comma-separated bound-provider stack for the "
                            "runtime bounds tracker (default: $REPRO_BOUNDS "
                            "or %s; choose from: %s)"
                       % (",".join(defaults.bounds),
                          ", ".join(BOUND_PROVIDERS)))

    def add_protocol_option(p):
        p.add_argument("--protocol", choices=PROTOCOLS, default=None,
                       help="evaluation protocol: single_pass executes once "
                            "and labels truth at completion, two_pass runs "
                            "the legacy oracle pre-run for eager live labels "
                            "(default: $REPRO_PROTOCOL or %s)"
                       % (defaults.protocol,))

    def add_estimators_option(p):
        p.add_argument("--estimators", default=None, metavar="NAME,NAME,...",
                       help="comma-separated estimator names to sample "
                            "(default: dne,pmax,safe; choose from: %s)"
                       % (", ".join(estimator_names()),))

    demo = subparsers.add_parser("demo", help="monitor a TPC-H query")
    add_db_options(demo)
    add_engine_option(demo)
    add_protocol_option(demo)
    add_bounds_option(demo)
    add_estimators_option(demo)
    demo.add_argument("--query", type=int, default=1, choices=range(1, 23),
                      metavar="N", help="TPC-H query number (1-22)")
    demo.set_defaults(func=cmd_demo)

    sql = subparsers.add_parser("sql", help="run SQL with progress monitoring")
    add_db_options(sql)
    add_engine_option(sql)
    add_protocol_option(sql)
    add_bounds_option(sql)
    add_estimators_option(sql)
    sql.add_argument("query", help="SQL text against the TPC-H schema")
    sql.add_argument("--rows", type=int, default=0,
                     help="also print the first N result rows")
    sql.set_defaults(func=cmd_sql)

    progress = subparsers.add_parser(
        "progress", help="run with full progress observability"
    )
    add_db_options(progress)
    add_engine_option(progress)
    add_protocol_option(progress)
    add_bounds_option(progress)
    add_estimators_option(progress)
    progress.add_argument("sql", nargs="?", default=None,
                          help="SQL text (default: the --tpch query)")
    progress.add_argument("--tpch", type=int, default=1, choices=range(1, 23),
                          metavar="N", help="TPC-H query number (1-22)")
    progress.add_argument("--trace", metavar="OUT.JSONL", default=None,
                          help="stream progress events as JSON Lines")
    progress.add_argument("--samples", type=int, default=200,
                          help="target number of samples")
    progress.set_defaults(func=cmd_progress)

    serve = subparsers.add_parser(
        "serve", help="stress the concurrent query service"
    )
    add_db_options(serve)
    add_engine_option(serve)
    add_protocol_option(serve)
    add_bounds_option(serve)
    serve.add_argument("--queries", default="1,3,6,10,12,14,19,6",
                       help="comma-separated TPC-H query numbers")
    serve.add_argument("--repeat", type=int, default=1,
                       help="submit the whole mix this many times")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-depth", type=int, default=16)
    serve.add_argument("--backend", choices=BACKENDS, default=None,
                       help="execution backend: thread (default) shares the "
                            "GIL, process runs queries on worker processes "
                            "($REPRO_BACKEND overrides)")
    serve.add_argument("--start-method", default=None,
                       metavar="{fork,spawn,forkserver}",
                       help="how process workers start (process backend "
                            "only; $REPRO_START_METHOD overrides)")
    serve.add_argument("--samples", type=int, default=50,
                       help="target progress samples per query")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-query deadline in seconds")
    serve.add_argument("--cancel", type=int, default=None, metavar="I",
                       help="cancel the I-th admitted query mid-flight")
    serve.add_argument("--poll", type=float, default=0.2,
                       help="seconds between live progress polls")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for the HTTP/WebSocket server")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0: pick an ephemeral port)")
    serve.add_argument("--tenant", default="cli",
                       help="tenant name the workload is admitted under")
    serve.set_defaults(func=cmd_serve)

    explain = subparsers.add_parser("explain", help="show the physical plan")
    add_db_options(explain)
    explain.add_argument("query")
    explain.set_defaults(func=cmd_explain)

    tpch_mu = subparsers.add_parser("tpch-mu", help="Table 2: mu per query")
    add_db_options(tpch_mu)
    tpch_mu.set_defaults(func=cmd_tpch_mu)

    sky_mu = subparsers.add_parser("sky-mu", help="Table 3: mu per query")
    sky_mu.add_argument("--size", type=int, default=6000)
    sky_mu.add_argument("--seed", type=int, default=11)
    sky_mu.set_defaults(func=cmd_sky_mu)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate paper artifacts"
    )
    experiments.add_argument("names", nargs="*",
                             help="subset (default: all): %s"
                             % (", ".join(sorted(EXPERIMENTS)),))
    experiments.set_defaults(func=cmd_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
