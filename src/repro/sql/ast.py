"""SQL AST nodes for the supported subset.

Scalar expressions reuse the engine's :mod:`repro.engine.expressions` tree
directly; the only SQL-specific expression node is :class:`AggregateCall`,
which the planner replaces before anything is ever bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.expressions import Expression
from repro.engine.operators.aggregate import AggregateKind
from repro.errors import ExpressionError


class AggregateCall(Expression):
    """``COUNT(*) / COUNT / SUM / AVG / MIN / MAX`` inside a query.

    Not evaluable per-row: the planner rewrites every occurrence into a
    reference to a γ operator's output column.
    """

    def __init__(self, kind: AggregateKind, argument: Optional[Expression]) -> None:
        if kind is not AggregateKind.COUNT_STAR and argument is None:
            raise ExpressionError("%s needs an argument" % (kind.value,))
        self.kind = kind
        self.argument = argument

    def bind(self, schema):
        raise ExpressionError(
            "aggregate %s must be planned before evaluation" % (self.kind.value,)
        )

    def references(self) -> Tuple[str, ...]:
        if self.argument is None:
            return ()
        return self.argument.references()

    def __repr__(self) -> str:
        return "%s(%r)" % (self.kind.value, self.argument)


def contains_aggregate(expression: Expression) -> bool:
    """True if any :class:`AggregateCall` occurs in the expression tree."""
    if isinstance(expression, AggregateCall):
        return True
    for attribute in ("left", "right", "operand", "low", "high", "default"):
        child = getattr(expression, attribute, None)
        if isinstance(child, Expression) and contains_aggregate(child):
            return True
    for attribute in ("operands",):
        children = getattr(expression, attribute, None)
        if children:
            if any(contains_aggregate(child) for child in children):
                return True
    branches = getattr(expression, "branches", None)
    if branches:
        for condition, value in branches:
            if contains_aggregate(condition) or contains_aggregate(value):
                return True
    return False


def collect_aggregates(expression: Expression, out: List[AggregateCall]) -> None:
    """Append every AggregateCall in the tree to ``out`` (pre-order)."""
    if isinstance(expression, AggregateCall):
        out.append(expression)
        return
    for attribute in ("left", "right", "operand", "low", "high", "default"):
        child = getattr(expression, attribute, None)
        if isinstance(child, Expression):
            collect_aggregates(child, out)
    children = getattr(expression, "operands", None)
    if children:
        for child in children:
            collect_aggregates(child, out)
    branches = getattr(expression, "branches", None)
    if branches:
        for condition, value in branches:
            collect_aggregates(condition, out)
            collect_aggregates(value, out)


@dataclass
class SelectItem:
    """One output column: an expression and an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A FROM-clause table with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table


@dataclass
class OrderItem:
    """One ORDER BY term."""

    expression: Expression
    descending: bool = False


@dataclass
class SelectStatement:
    """The supported SELECT shape.

    Explicit ``JOIN ... ON`` clauses are folded by the parser into
    ``tables`` plus ``where`` conjuncts — the planner re-derives joins from
    equality predicates, as a textbook System-R-style planner would.
    """

    items: List[SelectItem] = field(default_factory=list)
    distinct: bool = False
    tables: List[TableRef] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    def has_aggregates(self) -> bool:
        if self.group_by:
            return True
        if any(contains_aggregate(item.expression) for item in self.items):
            return True
        return self.having is not None and contains_aggregate(self.having)
