"""SQL front end: lexer, parser and the heuristic planner."""

from repro.sql.ast import (
    AggregateCall,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse
from repro.sql.planner import Planner, plan_query, run_query

__all__ = [
    "AggregateCall",
    "OrderItem",
    "Planner",
    "SelectItem",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "parse",
    "plan_query",
    "run_query",
    "tokenize",
]
