"""Heuristic SQL planner: AST → physical operator tree.

A deliberately classical pipeline:

1. one :class:`TableScan` per FROM entry, with single-table WHERE conjuncts
   pushed down as filters;
2. greedy join ordering from the smallest estimated input, following
   equality-join edges; per join the planner picks ⋈INL when the inner side
   has an index and the outer is estimated much smaller, otherwise ⋈hash
   (smaller side builds); disconnected tables fall back to ⋈NL;
3. joins are marked *linear* when a statistic shows one join column is
   (near-)unique — the key/FK case §5.1 uses to tighten upper bounds;
4. γ for GROUP BY/aggregates, HAVING as a filter above it, then projection,
   DISTINCT, ORDER BY and LIMIT.

Estimates come from :class:`repro.stats.estimate.CardinalityEstimator`; they
carry no guarantees, which is the point — the progress layer must survive
their errors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.expressions import (
    ColumnRef,
    Expression,
    conjoin,
    conjuncts,
    as_column_equality,
)
from repro.engine.operators.aggregate import AggregateSpec, HashAggregate
from repro.engine.operators.base import Operator
from repro.engine.operators.filter import Filter
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.index_nested_loops import IndexNestedLoopsJoin
from repro.engine.operators.misc import Distinct, Limit
from repro.engine.operators.nested_loops import NestedLoopsJoin
from repro.engine.operators.project import Project
from repro.engine.operators.scan import TableScan
from repro.engine.operators.sort import Sort, SortKey
from repro.engine.operators.topn import TopN
from repro.engine.plan import Plan
from repro.errors import PlanningError, SchemaError
from repro.sql.ast import (
    AggregateCall,
    SelectItem,
    SelectStatement,
    collect_aggregates,
    contains_aggregate,
)
from repro.sql.parser import parse
from repro.stats.base import ColumnStatistic
from repro.stats.estimate import CardinalityEstimator
from repro.storage.catalog import Catalog

#: prefer ⋈INL when the estimated outer input is this much smaller than the
#: indexed inner table
INL_OUTER_FRACTION = 0.25
#: a column is treated as a key when its distinct estimate covers this much
#: of the rows
UNIQUENESS_THRESHOLD = 0.95


class Planner:
    """Translates parsed SELECT statements into physical plans."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)

    # -- public ------------------------------------------------------------------

    def plan(self, statement: SelectStatement, name: str = "query") -> Plan:
        base_inputs = self._build_inputs(statement)
        where_parts = conjuncts(statement.where) if statement.where is not None else []
        single, join_edges, residual = self._classify_predicates(
            where_parts, base_inputs
        )
        inputs = {
            alias: self._apply_filters(scan, single.get(alias, []))
            for alias, scan in base_inputs.items()
        }
        root = self._join_inputs(inputs, join_edges, residual)
        root = self._apply_remaining(root, residual)
        root = self._aggregate_and_project(root, statement)
        if statement.distinct:
            root = Distinct(root)
        root = self._order_and_limit(root, statement)
        return Plan(root, name)

    # -- FROM --------------------------------------------------------------------

    def _build_inputs(self, statement: SelectStatement) -> Dict[str, TableScan]:
        if not statement.tables:
            raise PlanningError("query has no FROM clause tables")
        inputs: Dict[str, TableScan] = {}
        for ref in statement.tables:
            if not self.catalog.has_table(ref.table):
                raise PlanningError("unknown table %r" % (ref.table,))
            alias = ref.effective_alias
            if alias in inputs:
                raise PlanningError("duplicate table alias %r" % (alias,))
            inputs[alias] = TableScan(self.catalog.table(ref.table), alias)
        return inputs

    # -- predicate classification -----------------------------------------------------

    def _classify_predicates(
        self,
        parts: Sequence[Expression],
        inputs: Dict[str, TableScan],
    ) -> Tuple[Dict[str, List[Expression]], List[Tuple[str, str, str, str, Expression]],
               List[Expression]]:
        """Split conjuncts into per-table filters, join edges and residuals.

        A join edge is ``(left_alias, left_column, right_alias, right_column,
        expression)``.
        """
        single: Dict[str, List[Expression]] = {}
        edges: List[Tuple[str, str, str, str, Expression]] = []
        residual: List[Expression] = []
        for part in parts:
            equality = as_column_equality(part)
            if equality is not None:
                left_owner = self._owner_of(equality[0], inputs)
                right_owner = self._owner_of(equality[1], inputs)
                if (
                    left_owner is not None
                    and right_owner is not None
                    and left_owner != right_owner
                ):
                    edges.append(
                        (left_owner, equality[0], right_owner, equality[1], part)
                    )
                    continue
            owners = {self._owner_of(name, inputs) for name in part.references()}
            owners.discard(None)
            if len(owners) == 1:
                single.setdefault(owners.pop(), []).append(part)
            else:
                residual.append(part)
        return single, edges, residual

    def _owner_of(self, column: str, inputs: Dict[str, TableScan]) -> Optional[str]:
        matches = [
            alias
            for alias, scan in inputs.items()
            if scan.schema.has_column(column)
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    @staticmethod
    def _apply_filters(scan: TableScan, predicates: List[Expression]) -> Operator:
        if not predicates:
            return scan
        return Filter(scan, conjoin(predicates))

    # -- joins --------------------------------------------------------------------------

    def _join_inputs(
        self,
        inputs: Dict[str, Operator],
        edges: List[Tuple[str, str, str, str, Expression]],
        residual: List[Expression],
    ) -> Operator:
        remaining = dict(inputs)
        if len(remaining) == 1:
            return next(iter(remaining.values()))

        sizes = {
            alias: self._estimate(operator) for alias, operator in remaining.items()
        }
        # Start from the smallest estimated input.
        current_alias = min(sizes, key=lambda alias: sizes[alias])
        current = remaining.pop(current_alias)
        joined_aliases = {current_alias}
        current_size = sizes[current_alias]

        while remaining:
            edge = self._pick_edge(edges, joined_aliases, remaining, sizes)
            if edge is None:
                # No connecting predicate: cross join with the smallest rest.
                next_alias = min(remaining, key=lambda alias: sizes[alias])
                current = NestedLoopsJoin(current, remaining.pop(next_alias))
                joined_aliases.add(next_alias)
                current_size *= max(1.0, sizes[next_alias])
                continue
            left_alias, left_column, right_alias, right_column, _ = edge
            if left_alias in joined_aliases:
                inner_alias, outer_column, inner_column = (
                    right_alias, left_column, right_column,
                )
            else:
                inner_alias, outer_column, inner_column = (
                    left_alias, right_column, left_column,
                )
            inner = remaining.pop(inner_alias)
            linear = self._is_linear_join(outer_column, inner_alias, inner_column)
            current = self._make_join(
                current, current_size, inner, sizes[inner_alias],
                outer_column, inner_alias, inner_column, linear,
            )
            joined_aliases.add(inner_alias)
            current_size = self._estimate(current)
            edges = [e for e in edges if e is not edge]
        return current

    def _pick_edge(self, edges, joined_aliases, remaining, sizes):
        """The edge joining the joined set to the smallest new table."""
        candidates = []
        for edge in edges:
            left_alias, _, right_alias, _, _ = edge
            if left_alias in joined_aliases and right_alias in remaining:
                candidates.append((sizes[right_alias], edge))
            elif right_alias in joined_aliases and left_alias in remaining:
                candidates.append((sizes[left_alias], edge))
        if not candidates:
            return None
        return min(candidates, key=lambda pair: pair[0])[1]

    def _make_join(
        self,
        outer: Operator,
        outer_size: float,
        inner: Operator,
        inner_size: float,
        outer_column: str,
        inner_alias: str,
        inner_column: str,
        linear: bool,
    ) -> Operator:
        inner_table_name = self._base_table_of(inner)
        bare_inner = inner_column.split(".")[-1]
        index = (
            self.catalog.any_index(inner_table_name, bare_inner)
            if inner_table_name is not None
            else None
        )
        inner_is_bare_scan = isinstance(inner, TableScan)
        if (
            index is not None
            and inner_is_bare_scan
            and outer_size <= INL_OUTER_FRACTION * inner_size
        ):
            return IndexNestedLoopsJoin(
                outer,
                index,
                ColumnRef(outer_column),
                inner_alias=inner_alias,
                linear=linear,
            )
        # Hash join: build on the smaller estimated side.
        if outer_size <= inner_size:
            return HashJoin(
                outer, inner, ColumnRef(outer_column), ColumnRef(inner_column),
                linear=linear,
            )
        return HashJoin(
            inner, outer, ColumnRef(inner_column), ColumnRef(outer_column),
            linear=linear,
        )

    def _base_table_of(self, operator: Operator) -> Optional[str]:
        if isinstance(operator, TableScan):
            return operator.table.name
        if isinstance(operator, Filter):
            return self._base_table_of(operator.child)
        return None

    def _is_linear_join(
        self, outer_column: str, inner_alias: str, inner_column: str
    ) -> bool:
        """Linear when either join column is (estimated) unique."""
        for column in (outer_column, inner_column):
            statistic = self._column_statistic(column)
            if statistic is None or statistic.row_count == 0:
                continue
            if statistic.estimate_distinct() >= UNIQUENESS_THRESHOLD * statistic.row_count:
                return True
        return False

    def _column_statistic(self, column: str) -> Optional[ColumnStatistic]:
        qualifier, _, bare = column.rpartition(".")
        candidates = []
        if qualifier and self.catalog.has_table(qualifier):
            candidates.append((qualifier, bare))
        else:
            bare = column.split(".")[-1]
            for table in self.catalog.tables():
                if table.schema.has_column(bare):
                    candidates.append((table.name, bare))
        if len(candidates) == 1:
            statistic = self.catalog.statistic(*candidates[0])
            if isinstance(statistic, ColumnStatistic):
                return statistic
        return None

    def _estimate(self, operator: Operator) -> float:
        estimates: Dict[int, float] = {}
        self.estimator._estimate_node(operator, estimates)
        return estimates[operator.operator_id]

    def _apply_remaining(
        self, root: Operator, residual: List[Expression]
    ) -> Operator:
        applicable = [part for part in residual if not contains_aggregate(part)]
        if not applicable:
            return root
        return Filter(root, conjoin(applicable))

    # -- aggregation and projection -----------------------------------------------------

    def _aggregate_and_project(
        self, root: Operator, statement: SelectStatement
    ) -> Operator:
        items = self._expand_star(root, statement.items)
        if not statement.has_aggregates():
            outputs = [
                (self._output_name(item, i), item.expression)
                for i, item in enumerate(items)
            ]
            return Project(root, outputs)

        group_outputs: List[Tuple[str, Expression]] = []
        group_names: Dict[str, str] = {}
        for i, expression in enumerate(statement.group_by):
            name = (
                expression.name.split(".")[-1]
                if isinstance(expression, ColumnRef)
                else "group_%d" % (i,)
            )
            if name in group_names.values():
                name = "group_%d" % (i,)
            group_outputs.append((name, expression))
            group_names[repr(expression)] = name

        aggregate_calls: List[AggregateCall] = []
        for item in items:
            collect_aggregates(item.expression, aggregate_calls)
        if statement.having is not None:
            collect_aggregates(statement.having, aggregate_calls)

        specs: List[AggregateSpec] = []
        call_names: Dict[str, str] = {}
        for call in aggregate_calls:
            key = repr(call)
            if key in call_names:
                continue
            name = "agg_%d" % (len(specs),)
            call_names[key] = name
            specs.append(AggregateSpec(call.kind, call.argument, name))

        aggregate = HashAggregate(root, group_outputs, specs)

        def rewrite(expression: Expression) -> Expression:
            return _rewrite_post_aggregate(expression, group_names, call_names)

        post: Operator = aggregate
        if statement.having is not None:
            post = Filter(post, rewrite(statement.having))
        outputs = [
            (self._output_name(item, i), rewrite(item.expression))
            for i, item in enumerate(items)
        ]
        return Project(post, outputs)

    def _expand_star(
        self, root: Operator, items: Sequence[SelectItem]
    ) -> List[SelectItem]:
        expanded: List[SelectItem] = []
        for item in items:
            if isinstance(item.expression, ColumnRef) and item.expression.name == "*":
                for name in root.schema.qualified_names():
                    expanded.append(SelectItem(ColumnRef(name)))
            else:
                expanded.append(item)
        return expanded

    @staticmethod
    def _output_name(item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expression, ColumnRef):
            return item.expression.name.split(".")[-1]
        if isinstance(item.expression, AggregateCall):
            return item.expression.kind.value.replace("(*)", "")
        return "col_%d" % (position,)

    # -- order / limit -------------------------------------------------------------------

    def _order_and_limit(self, root: Operator, statement: SelectStatement) -> Operator:
        if statement.order_by:
            keys = []
            for order_item in statement.order_by:
                expression = order_item.expression
                # Rewrite to the projected output column when possible.
                if isinstance(expression, ColumnRef):
                    bare = expression.name.split(".")[-1]
                    if root.schema.has_column(bare):
                        expression = ColumnRef(bare)
                    elif not root.schema.has_column(expression.name):
                        raise PlanningError(
                            "ORDER BY column %r not in output" % (expression.name,)
                        )
                keys.append(SortKey(expression, order_item.descending))
            if statement.limit is not None and statement.offset == 0:
                # ORDER BY + LIMIT without OFFSET: fuse into Top-N.
                return TopN(root, keys, statement.limit)
            root = Sort(root, keys)
        if statement.limit is not None:
            root = Limit(root, statement.limit, statement.offset)
        return root


def _rewrite_post_aggregate(
    expression: Expression,
    group_names: Dict[str, str],
    call_names: Dict[str, str],
) -> Expression:
    """Replace aggregate calls / group expressions with γ-output columns."""
    key = repr(expression)
    if isinstance(expression, AggregateCall):
        return ColumnRef(call_names[key])
    if key in group_names:
        return ColumnRef(group_names[key])
    if isinstance(expression, ColumnRef):
        raise PlanningError(
            "column %r must appear in GROUP BY or inside an aggregate"
            % (expression.name,)
        )
    clone = expression
    import copy

    clone = copy.copy(expression)
    for attribute in ("left", "right", "operand", "low", "high", "default"):
        child = getattr(clone, attribute, None)
        if isinstance(child, Expression):
            setattr(
                clone, attribute, _rewrite_post_aggregate(child, group_names, call_names)
            )
    operands = getattr(clone, "operands", None)
    if operands:
        clone.operands = tuple(
            _rewrite_post_aggregate(operand, group_names, call_names)
            for operand in operands
        )
    branches = getattr(clone, "branches", None)
    if branches:
        clone.branches = tuple(
            (
                _rewrite_post_aggregate(condition, group_names, call_names),
                _rewrite_post_aggregate(value, group_names, call_names),
            )
            for condition, value in branches
        )
    return clone


def plan_query(sql: str, catalog: Catalog, name: str = "query") -> Plan:
    """Parse and plan ``sql`` against ``catalog``."""
    return Planner(catalog).plan(parse(sql), name)


def run_query(sql: str, catalog: Catalog):
    """Parse, plan and execute ``sql``; returns the result rows."""
    from repro.engine.executor import execute

    return execute(plan_query(sql, catalog)).rows
