"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    select    := SELECT [DISTINCT] items FROM source (, source | JOIN source ON expr)*
                 [WHERE expr] [GROUP BY expr (, expr)*] [HAVING expr]
                 [ORDER BY term (, term)*] [LIMIT n [OFFSET n]]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive [comparison | BETWEEN | IN | LIKE | IS [NOT] NULL]
    additive  := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary     := - unary | primary
    primary   := literal | column | aggregate | CASE ... END | ( expr )
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.expressions import (
    And,
    Arithmetic,
    Between,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.engine.operators.aggregate import AggregateKind
from repro.errors import ParseError
from repro.sql.ast import (
    AggregateCall,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = {
    "count": AggregateKind.COUNT,
    "sum": AggregateKind.SUM,
    "avg": AggregateKind.AVG,
    "min": AggregateKind.MIN,
    "max": AggregateKind.MAX,
}


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_select(top_level=True)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ----------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.END:
            self._position += 1
        return token

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError("expected %s, got %r" % (name.upper(), token.value),
                             token.position)
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise ParseError("expected %r, got %r" % (symbol, token.value),
                             token.position)
        return self._advance()

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self._peek().is_symbol(*symbols):
            return self._advance()
        return None

    # -- statement --------------------------------------------------------------

    def parse_select(self, top_level: bool = False) -> SelectStatement:
        self._expect_keyword("select")
        statement = SelectStatement()
        statement.distinct = self._accept_keyword("distinct") is not None
        statement.items = self._parse_select_items()
        self._expect_keyword("from")
        self._parse_from(statement)
        if self._accept_keyword("where"):
            condition = self.parse_expression()
            # JOIN ... ON conditions may already be folded into `where`.
            statement.where = (
                condition
                if statement.where is None
                else And(statement.where, condition)
            )
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            statement.group_by.append(self.parse_expression())
            while self._accept_symbol(","):
                statement.group_by.append(self.parse_expression())
        if self._accept_keyword("having"):
            statement.having = self.parse_expression()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            statement.order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                statement.order_by.append(self._parse_order_item())
        if self._accept_keyword("limit"):
            statement.limit = self._parse_integer()
            if self._accept_keyword("offset"):
                statement.offset = self._parse_integer()
        if top_level:
            trailing = self._peek()
            if trailing.type is not TokenType.END:
                raise ParseError(
                    "unexpected trailing input %r" % (trailing.value,),
                    trailing.position,
                )
        return statement

    def _parse_select_items(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._accept_symbol("*"):
            return SelectItem(ColumnRef("*"))
        expression = self.parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._parse_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return SelectItem(expression, alias)

    def _parse_from(self, statement: SelectStatement) -> None:
        statement.tables.append(self._parse_table_ref())
        while True:
            if self._accept_symbol(","):
                statement.tables.append(self._parse_table_ref())
                continue
            joined = self._accept_keyword("join")
            if joined is None and self._accept_keyword("inner"):
                self._expect_keyword("join")
                joined = True
            if joined:
                statement.tables.append(self._parse_table_ref())
                self._expect_keyword("on")
                condition = self.parse_expression()
                statement.where = (
                    condition
                    if statement.where is None
                    else And(statement.where, condition)
                )
                continue
            break

    def _parse_table_ref(self) -> TableRef:
        name = self._parse_identifier()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._parse_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expression, descending)

    def _parse_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError("expected identifier, got %r" % (token.value,),
                             token.position)
        return self._advance().value

    def _parse_integer(self) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise ParseError("expected integer, got %r" % (token.value,),
                             token.position)
        self._advance()
        return int(token.value)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        operands = [left]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept_keyword("and"):
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else And(*operands)

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            return Comparison(op, left, self._parse_additive())
        if token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high)
        negated = False
        if token.is_keyword("not"):
            # lookahead for NOT IN / NOT LIKE / NOT BETWEEN
            next_token = self._tokens[self._position + 1]
            if next_token.is_keyword("in", "like", "between"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("in"):
            self._advance()
            self._expect_symbol("(")
            values = [self._parse_literal_value()]
            while self._accept_symbol(","):
                values.append(self._parse_literal_value())
            self._expect_symbol(")")
            expression: Expression = InList(left, values)
            return Not(expression) if negated else expression
        if token.is_keyword("like"):
            self._advance()
            pattern = self._peek()
            if pattern.type is not TokenType.STRING:
                raise ParseError("LIKE needs a string pattern", pattern.position)
            self._advance()
            expression = Like(left, pattern.value)
            return Not(expression) if negated else expression
        if token.is_keyword("between") and negated:
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Not(Between(left, low, high))
        if token.is_keyword("is"):
            self._advance()
            is_negated = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_symbol("+", "-")
            if token is None:
                return left
            left = Arithmetic(token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._accept_symbol("*", "/", "%")
            if token is None:
                return left
            left = Arithmetic(token.value, left, self._parse_unary())

    def _parse_unary(self) -> Expression:
        if self._accept_symbol("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return Arithmetic("-", Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(float(token.value) if "." in token.value else int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("count"):
            self._advance()
            self._expect_symbol("(")
            if self._accept_symbol("*"):
                self._expect_symbol(")")
                return AggregateCall(AggregateKind.COUNT_STAR, None)
            argument = self.parse_expression()
            self._expect_symbol(")")
            return AggregateCall(AggregateKind.COUNT, argument)
        if token.is_keyword("sum", "avg", "min", "max"):
            self._advance()
            self._expect_symbol("(")
            argument = self.parse_expression()
            self._expect_symbol(")")
            return AggregateCall(_AGGREGATE_KEYWORDS[token.value], argument)
        if token.is_symbol("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column()
        raise ParseError("unexpected token %r" % (token.value,), token.position)

    def _parse_column(self) -> ColumnRef:
        name = self._parse_identifier()
        if self._accept_symbol("."):
            name = "%s.%s" % (name, self._parse_identifier())
        return ColumnRef(name)

    def _parse_case(self) -> Expression:
        self._expect_keyword("case")
        branches = []
        while self._accept_keyword("when"):
            condition = self.parse_expression()
            self._expect_keyword("then")
            value = self.parse_expression()
            branches.append((condition, value))
        default: Optional[Expression] = None
        if self._accept_keyword("else"):
            default = self.parse_expression()
        self._expect_keyword("end")
        if not branches:
            raise ParseError("CASE needs at least one WHEN", self._peek().position)
        return Case(branches, default)

    def _parse_literal_value(self) -> object:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.is_keyword("null"):
            self._advance()
            return None
        raise ParseError("expected literal in IN list", token.position)
