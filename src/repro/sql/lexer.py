"""SQL lexer: a small hand-written tokenizer for the supported subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "offset", "as", "and", "or", "not", "between", "in", "like",
    "is", "null", "asc", "desc", "case", "when", "then", "else", "end",
    "join", "inner", "on", "count", "sum", "avg", "min", "max", "union",
    "all", "true", "false",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "+", "-",
           "*", "/", "%", ".")


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value in symbols

    def __repr__(self) -> str:
        return "Token(%s, %r)" % (self.type.value, self.value)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on illegal characters."""
    tokens: List[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            end = text.find("\n", i)
            i = length if end == -1 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            start = i
            saw_dot = False
            while i < length and (text[i].isdigit() or (text[i] == "." and not saw_dot)):
                if text[i] == ".":
                    # Only part of the number when followed by a digit.
                    if i + 1 >= length or not text[i + 1].isdigit():
                        break
                    saw_dot = True
                i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: List[str] = []
            while True:
                if i >= length:
                    raise ParseError("unterminated string literal", start)
                if text[i] == "'":
                    if text[i : i + 2] == "''":  # escaped quote
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise ParseError("unexpected character %r" % (ch,), i)
    tokens.append(Token(TokenType.END, "", length))
    return tokens
