"""Server metrics primitives: nearest-rank percentile, latency reservoir."""

import pytest

from repro.server.metrics import LatencyReservoir, ServerMetrics, percentile


class TestPercentile:
    def test_empty_population_is_none(self):
        assert percentile([], 0.5) is None

    def test_p50_of_two_is_the_lower(self):
        # The regression: int(0.5 * 2) picked index 1 — the *max* — as the
        # median of a two-element population.
        assert percentile([1.0, 2.0], 0.50) == 1.0

    def test_p50_of_three_is_the_middle(self):
        assert percentile([3.0, 1.0, 2.0], 0.50) == 2.0

    def test_p50_of_four_is_the_second(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.50) == 2.0

    def test_p99_of_1_to_100(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.99) == 99.0

    def test_p100_is_the_max(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 1.0) == 100.0

    def test_p0_is_the_min(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_singleton(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([9.0, 1.0], 0.5) == 1.0

    def test_nearest_rank_definition(self):
        # Smallest value with >= fraction of the population at or below it.
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.20) == 1.0
        assert percentile(values, 0.21) == 2.0
        assert percentile(values, 0.80) == 4.0
        assert percentile(values, 0.81) == 5.0


class TestLatencyReservoir:
    def test_quantiles_over_small_population(self):
        reservoir = LatencyReservoir()
        for value in (0.1, 0.2, 0.3):
            reservoir.record(value)
        quantiles = reservoir.quantiles()
        assert quantiles["count"] == 3
        assert quantiles["p50_seconds"] == pytest.approx(0.2)
        assert quantiles["p99_seconds"] == pytest.approx(0.3)

    def test_p50_of_two_after_fix(self):
        reservoir = LatencyReservoir()
        reservoir.record(1.0)
        reservoir.record(2.0)
        assert reservoir.quantiles()["p50_seconds"] == 1.0

    def test_bounded_capacity(self):
        reservoir = LatencyReservoir(capacity=10)
        for i in range(100):
            reservoir.record(float(i))
        assert reservoir.count == 100
        assert len(reservoir._values) == 10


class TestServerMetricsLatency:
    def test_snapshot_percentiles(self):
        metrics = ServerMetrics(clock=lambda: 0.0)
        metrics.record_submitted("t")
        metrics.record_dispatched("t")
        metrics.record_completed("t", "succeeded", latency_seconds=1.0)
        metrics.record_submitted("t")
        metrics.record_dispatched("t")
        metrics.record_completed("t", "succeeded", latency_seconds=2.0)
        latency = metrics.snapshot()["latency"]
        assert latency["count"] == 2
        assert latency["p50_seconds"] == 1.0
        assert latency["p99_seconds"] == 2.0
