"""The server's core measurement guarantee, over the wire.

A trace streamed through HTTP admission → fair scheduler → worker pool →
WebSocket must be **bit-identical** to a solo single-threaded
:class:`ProgressRunner` run of the same query: the network tier changes
scheduling and transport, never measurements.  JSON carries IEEE doubles
exactly (``repr`` round trip), so the comparison is on exact floats, on
both execution backends.
"""

from __future__ import annotations

import pytest

from repro.core import ProgressRunner, standard_toolkit
from repro.options import ExecutionOptions
from repro.server import ReproServer, ServerClient, ServerConfig
from repro.server.bridge import sample_to_dict
from repro.stats import StatisticsManager
from repro.workloads import generate_tpch
from repro.workloads.tpch import build_query

TARGET_SAMPLES = 25
QUERIES = [1, 6]


@pytest.fixture(scope="module")
def db():
    database = generate_tpch(scale=0.0004, skew=2.0, seed=7)
    StatisticsManager(database.catalog).analyze_all()
    return database


def solo_trace_frames(db, number, *, engine):
    """A solo run's sealed trace, projected exactly like a WS end frame."""
    report = ProgressRunner(
        build_query(db, number),
        standard_toolkit(),
        db.catalog,
        target_samples=TARGET_SAMPLES,
        engine=engine,
    ).run()
    return report.total, [
        sample_to_dict(sample) for sample in report.trace.samples
    ]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_ws_trace_bit_identical_to_solo_run(db, backend):
    config = ServerConfig(options=ExecutionOptions(
        backend=backend, max_workers=2, queue_depth=16,
    ))
    server = ReproServer(db.catalog, config=config)
    with server.running():
        client = ServerClient(server.config.host, server.port)
        records = {}
        for number in QUERIES:
            # TPC-H builders produce plan objects, so go through the
            # in-process admission path exactly as the CLI does.
            records[number] = server.submit_local(
                "identity",
                (lambda db=db, number=number: build_query(db, number)),
                name="Q%d" % number,
                target_samples=TARGET_SAMPLES,
            )
        engine = server.config.options.engine
        for number, scheduled in records.items():
            # Stream over the real WebSocket (replay + live).
            frames = client.stream_events(scheduled.query_id)
            end = frames[-1]
            assert end["event"] == "end"
            assert end["state"] == "done"
            solo_total, solo_frames = solo_trace_frames(
                db, number, engine=engine,
            )
            assert end["total"] == solo_total
            assert end["trace"] == solo_frames
            # The live sample cadence matches the sealed trace sample for
            # sample — same curr, same estimator answers bit for bit —
            # with truth absent live (single-pass) and labeled sealed.
            live = [frame for frame in frames if frame["event"] == "sample"]
            assert len(live) == len(solo_frames)
            for live_frame, sealed in zip(live, solo_frames):
                assert live_frame["actual"] is None
                assert live_frame["curr"] == sealed["curr"]
                assert live_frame["estimates"] == sealed["estimates"]


def _measurement_view(frame):
    """The backend-independent projection of one WS frame.

    Wall-clock fields (elapsed/ETA/rates) legitimately differ run to run,
    and plan-node labels carry a process-global construction counter — so
    compare every *measurement*: curr, bounds, estimator answers, totals,
    the sealed trace, states.
    """
    keep = ("event", "curr", "actual", "lower_bound", "upper_bound",
            "estimates", "total", "state", "trace", "tenant", "id")
    return {key: frame[key] for key in keep if key in frame}


def test_ws_trace_identical_across_backends(db):
    """The same query streams the same frames on thread and process pools."""
    traces = {}
    for backend in ("thread", "process"):
        server = ReproServer(db.catalog, config=ServerConfig(
            options=ExecutionOptions(backend=backend, max_workers=1),
        ))
        with server.running():
            client = ServerClient(server.config.host, server.port)
            record = client.submit(
                "SELECT COUNT(*) FROM lineitem", tenant="x",
                target_samples=TARGET_SAMPLES,
            )
            frames = client.stream_events(record["id"])
            traces[backend] = [_measurement_view(f) for f in frames]
    assert traces["thread"] == traces["process"]
