"""The HTTP surface: admission, status, cancel, throttling, metrics.

One module-scoped server on the thread backend serves most tests; the
throttle tests get a dedicated server with a one-slot quota and a large
table so the backlog is observable.
"""

from __future__ import annotations

import time

import pytest

from repro.options import ExecutionOptions
from repro.server import (
    ReproServer,
    ServerClient,
    ServerClientError,
    ServerConfig,
    TenantQuota,
)
from repro.stats import StatisticsManager
from repro.storage import Table, schema_of
from repro.workloads import generate_tpch


@pytest.fixture(scope="module")
def db():
    database = generate_tpch(scale=0.0004, skew=2.0, seed=7)
    database.catalog.add_table(Table(
        "big",
        schema_of("big", "x:int", "g:int"),
        [(i, i % 13) for i in range(30000)],
    ))
    StatisticsManager(database.catalog).analyze_all()
    return database


@pytest.fixture(scope="module")
def server(db):
    instance = ReproServer(db.catalog, config=ServerConfig(
        options=ExecutionOptions(backend="thread", max_workers=2,
                                 queue_depth=32),
    ))
    with instance.running():
        yield instance


@pytest.fixture(scope="module")
def client(server):
    return ServerClient(server.config.host, server.port)


BIG_SQL = "SELECT g, COUNT(*), SUM(x) FROM big GROUP BY g"


class TestHealthAndRouting:
    def test_healthz(self, client):
        record = client.healthz()
        assert record["ok"] is True
        assert record["loop"] in ("asyncio", "uvloop")

    def test_unknown_route_is_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert "no route" in payload["error"]

    def test_unknown_method_is_405(self, client):
        status, _payload = client.request("PUT", "/queries")
        assert status == 405

    def test_unknown_query_is_404(self, client):
        status, _payload = client.request("GET", "/queries/q-999999")
        assert status == 404
        status, _payload = client.request("DELETE", "/queries/q-999999")
        assert status == 404


class TestAdmission:
    def test_submit_executes_and_reports(self, client):
        record = client.submit(
            "SELECT COUNT(*) FROM lineitem",
            tenant="t-http", name="count-li", target_samples=10,
        )
        assert record["id"].startswith("q-")
        assert record["query"] == "count-li"
        assert record["tenant"] == "t-http"
        assert record["events_path"].endswith("/events")
        frames = client.stream_events(record["id"])
        events = [frame["event"] for frame in frames]
        assert events[0] == "queued"
        assert events[-1] == "end"
        assert set(events[1:-1]) == {"sample"}
        end = frames[-1]
        assert end["state"] == "done"
        assert end["total"] > 0
        assert len(end["trace"]) == len(events) - 2
        # Single-pass protocol: live samples are unlabeled; the sealed
        # trace in the terminal frame carries the back-filled truth.
        for frame in frames[1:-1]:
            assert frame["actual"] is None
        for sample in end["trace"]:
            assert sample["actual"] is not None
        status = client.status(record["id"])
        assert status["state"] == "done"
        assert status["done"] is True

    def test_listing_contains_submitted_queries(self, client):
        record = client.submit(
            "SELECT COUNT(*) FROM region", tenant="t-list",
            name="list-me", target_samples=5,
        )
        names = {entry["query"] for entry in client.queries()}
        assert "list-me" in names
        client.stream_events(record["id"])

    def test_body_must_be_json(self, client):
        conn_status, payload = client.request("POST", "/queries")
        assert conn_status == 400
        assert "sql" in payload["error"]

    def test_sql_required(self, client):
        status, payload = client.request("POST", "/queries",
                                         {"tenant": "x"})
        assert status == 400
        assert "sql" in payload["error"]

    def test_invalid_sql_fails_the_query(self, client):
        # Planning happens at dispatch (POST stays fast), so bad SQL is
        # admitted and then surfaces as a failed query with the error on
        # the stream's terminal frame.
        record = client.submit("FROBNICATE THE LINEITEMS",
                               tenant="t-bad")
        frames = client.stream_events(record["id"])
        assert [frame["event"] for frame in frames] == ["queued", "end"]
        assert frames[-1]["state"] == "failed"
        assert frames[-1]["error"]
        status = client.status(record["id"])
        assert status["state"] == "failed"
        assert "error" in status

    def test_websocket_upgrade_required_on_events(self, client, server):
        record = client.submit("SELECT COUNT(*) FROM region",
                               tenant="t-up", target_samples=5)
        status, payload = client.request(
            "GET", "/queries/%s/events" % record["id"],
        )
        assert status == 400
        assert "WebSocket" in payload["error"]
        client.stream_events(record["id"])


class TestCancel:
    def test_cancel_running_query(self, client):
        record = client.submit(BIG_SQL, tenant="t-cancel",
                               target_samples=200)
        # Wait until the first live sample proves it is on a worker.
        while True:
            status = client.status(record["id"])
            if status.get("progress") is not None or status["done"]:
                break
            time.sleep(0.002)
        outcome = client.cancel(record["id"])
        assert outcome["id"] == record["id"]
        frames = client.stream_events(record["id"])
        assert frames[-1]["event"] == "end"
        assert frames[-1]["state"] in ("cancelled", "done")


class TestThrottle:
    def test_tenant_quota_yields_429(self, db):
        config = ServerConfig(
            options=ExecutionOptions(backend="thread", max_workers=1),
            default_quota=TenantQuota(max_pending=1, max_inflight=1),
        )
        instance = ReproServer(db.catalog, config=config)
        with instance.running():
            client = ServerClient(instance.config.host, instance.port)
            first = client.submit(BIG_SQL, tenant="noisy",
                                  target_samples=200)
            backlog = []
            throttled = None
            for _ in range(4):
                try:
                    backlog.append(client.submit(
                        BIG_SQL, tenant="noisy", target_samples=200,
                    ))
                except ServerClientError as exc:
                    throttled = exc
                    break
            assert throttled is not None
            assert throttled.status == 429
            assert throttled.payload["tenant"] == "noisy"
            assert throttled.payload["max_pending"] == 1
            # Another tenant still gets in while noisy is throttled.
            other = client.submit("SELECT COUNT(*) FROM region",
                                  tenant="quiet", target_samples=5)
            frames = client.stream_events(other["id"])
            assert frames[-1]["state"] == "done"
            metrics = client.metrics()
            assert metrics["queries"]["throttled"] >= 1
            assert metrics["tenants"]["noisy"]["throttled"] >= 1
            client.cancel(first["id"])
            for record in backlog:
                client.cancel(record["id"])


class TestMetrics:
    def test_snapshot_shape(self, client, server):
        record = client.submit("SELECT COUNT(*) FROM nation",
                               tenant="t-metrics", target_samples=5)
        client.stream_events(record["id"])
        metrics = client.metrics()
        assert metrics["uptime_seconds"] >= 0
        assert metrics["http_requests"] > 0
        assert metrics["queries"]["submitted"] >= 1
        assert metrics["queries"]["completed"].get("done", 0) >= 1
        assert metrics["ticks"] > 0
        assert "service_pending" in metrics["queue_depths"]
        latency = metrics["latency"]
        assert latency["count"] >= 1
        assert latency["p50_seconds"] <= latency["p99_seconds"]
        tenant = metrics["tenants"]["t-metrics"]
        assert tenant["submitted"] >= 1
        assert tenant["completed"].get("done", 0) >= 1
        assert tenant["ticks"] > 0
        assert tenant["ticks_per_second"] is None or \
            tenant["ticks_per_second"] >= 0

    def test_ws_connection_counters(self, client, server):
        before = client.metrics()["ws_connections"]
        record = client.submit("SELECT COUNT(*) FROM region",
                               tenant="t-ws", target_samples=5)
        client.stream_events(record["id"])
        # The server records the close after the client sees the close
        # frame — allow it a beat to finish its side of the teardown.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            after = client.metrics()["ws_connections"]
            if after["closed"] >= before["closed"] + 1:
                break
            time.sleep(0.01)
        assert after["opened"] >= before["opened"] + 1
        assert after["closed"] >= before["closed"] + 1
        assert after["open"] >= 0
